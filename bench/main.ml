(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, preceded by Bechamel CPU-time micro-benchmarks (the
   paper's §5 reports "several dozen milliseconds" per construction on
   random graphs with |V|=50, |E|=1000, |N|=5).

   One Bechamel kernel is registered per table/figure workload; the full
   table regeneration then follows, printing measured values next to the
   published ones.

   Environment:
     REPRO_QUICK=1   smaller workloads / subset of circuits (CI-friendly)

   Run with: dune exec bench/main.exe
   Smoke:    dune exec bench/main.exe -- --smoke
             (targeted-Dijkstra A/B on one small circuit only; asserts the
             routed trees are identical and the targeted mode settles fewer
             nodes — wired into the test suite via a runtest alias) *)

module G = Fr_graph
module C = Fr_core
module F = Fr_fpga
open Bechamel
open Toolkit

let quick = Sys.getenv_opt "REPRO_QUICK" <> None

let smoke = Array.exists (( = ) "--smoke") Sys.argv

(* Baseline search configuration for every non-A/B section: --no-astar /
   --heap argv win, then FR_SMOKE_ASTAR (0 disables) / FR_SMOKE_HEAP, then
   the library defaults (A* on, bucket queue).  The dedicated A/B section
   below sweeps all four combinations regardless of these. *)
let astar_default =
  if Array.exists (( = ) "--no-astar") Sys.argv then false
  else match Sys.getenv_opt "FR_SMOKE_ASTAR" with Some ("0" | "false") -> false | _ -> true

let heap_default =
  let rec from_argv = function
    | "--heap" :: v :: _ -> Some v
    | _ :: rest -> from_argv rest
    | [] -> None
  in
  let v =
    match from_argv (Array.to_list Sys.argv) with
    | Some v -> Some v
    | None -> Sys.getenv_opt "FR_SMOKE_HEAP"
  in
  match v with
  | None -> G.Pq.Bucket
  | Some s -> (
      match G.Pq.impl_of_string s with
      | Some impl -> impl
      | None -> failwith "bad --heap / FR_SMOKE_HEAP value (expected binary or bucket)")

let config_with ?alg ?max_passes ?mode () =
  F.Router.config_with ?alg ?max_passes ?mode ~astar:astar_default ~heap:heap_default ()

(* Worker-domain count for the parallel-router section: --domains N wins,
   then FR_SMOKE_DOMAINS (how CI forces the 4-domain smoke), then 2 — the
   cheapest count that still exercises the pool on every dev run. *)
let domains =
  let rec from_argv = function
    | "--domains" :: v :: _ -> Some v
    | _ :: rest -> from_argv rest
    | [] -> None
  in
  let v =
    match from_argv (Array.to_list Sys.argv) with
    | Some v -> Some v
    | None -> Sys.getenv_opt "FR_SMOKE_DOMAINS"
  in
  match Option.map int_of_string v with
  | Some n when n >= 1 -> n
  | Some _ | None -> 2
  | exception Failure _ -> failwith "bad --domains / FR_SMOKE_DOMAINS value"

let section title =
  Printf.printf "\n%s\n%s\n\n%!" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* The paper's CPU-time instance: random graphs |V|=50, |E|=1000, |N|=5. *)
let cpu_time_instance seed =
  let rng = Fr_util.Rng.make seed in
  let g = G.Random_graph.connected rng ~n:50 ~m:1000 ~wmin:0.5 ~wmax:3. in
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:5) in
  (g, net)

let algorithm_tests =
  let g, net = cpu_time_instance 42 in
  List.map
    (fun (alg : C.Routing_alg.t) ->
      Test.make ~name:alg.C.Routing_alg.name
        (Staged.stage (fun () ->
             (* A fresh cache per run: the paper times the construction
                including its shortest-path computations. *)
             let cache = G.Dist_cache.create g in
             ignore (alg.C.Routing_alg.solve cache ~net))))
    C.Routing_alg.all

(* One kernel per table/figure workload. *)
let table1_kernel () =
  let rng = Fr_util.Rng.make 5 in
  let grid = Fr_exp.Congestion.congested_grid rng ~k:10 in
  let g = grid.G.Grid.graph in
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:5) in
  let cache = G.Dist_cache.create g in
  List.iter (fun (a : C.Routing_alg.t) -> ignore (a.C.Routing_alg.solve cache ~net)) C.Routing_alg.all

let router_kernel alg () =
  let spec = Option.get (F.Circuits.find_spec "term1") in
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:10) in
  let config = config_with ~alg ~max_passes:3 () in
  ignore (F.Router.route ~config rrg circuit)

let fig10_kernel () =
  let inst = C.Worst_case.pfa_graph ~k:8 in
  let cache = G.Dist_cache.create inst.C.Worst_case.graph in
  ignore (C.Pfa.solve cache ~net:inst.C.Worst_case.net)

let fig14_kernel () =
  let inst = C.Worst_case.idom_graph ~levels:4 in
  let cache = G.Dist_cache.create inst.C.Worst_case.graph in
  ignore (C.Idom.solve cache ~net:inst.C.Worst_case.net)

let workload_tests =
  [
    Test.make ~name:"table1:one-net-all-algs" (Staged.stage table1_kernel);
    Test.make ~name:"table2/3:router-term1-IKMB" (Staged.stage (router_kernel C.Routing_alg.ikmb));
    Test.make ~name:"table4:router-term1-PFA" (Staged.stage (router_kernel C.Routing_alg.pfa));
    Test.make ~name:"table5:router-term1-IDOM" (Staged.stage (router_kernel C.Routing_alg.idom));
    Test.make ~name:"fig10:pfa-worst-case" (Staged.stage fig10_kernel);
    Test.make ~name:"fig14:idom-worst-case" (Staged.stage fig14_kernel);
  ]

let run_bechamel name tests ~quota_s =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name tests) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let t =
    Fr_util.Tab.create ~title:(name ^ " (monotonic clock)")
      ~header:[ "benchmark"; "time/run"; "r2" ]
  in
  List.iter
    (fun (k, v) ->
      let est =
        match Analyze.OLS.estimates v with
        | Some (e :: _) ->
            if e > 1e9 then Printf.sprintf "%.2f s" (e /. 1e9)
            else if e > 1e6 then Printf.sprintf "%.2f ms" (e /. 1e6)
            else if e > 1e3 then Printf.sprintf "%.2f us" (e /. 1e3)
            else Printf.sprintf "%.0f ns" e
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square v with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Fr_util.Tab.add_row t [ k; est; r2 ])
    rows;
  Fr_util.Tab.print t

(* ------------------------------------------------------------------ *)
(* Targeted-Dijkstra A/B (settled nodes, full vs targeted)             *)
(* ------------------------------------------------------------------ *)

let route_instrumented ~config ~targeted ~channel_width spec =
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width) in
  let config = { config with F.Router.targeted_dijkstra = targeted } in
  let t0 = Unix.gettimeofday () in
  let r = F.Router.route ~config rrg circuit in
  (r, Unix.gettimeofday () -. t0)

(* IKMB's Δ-scan reads member-to-candidate distances for every candidate,
   so target-bounding cannot shrink its searches much; the point-to-point
   strategies (KMB's terminal pairs, the two-pin baseline's single sinks)
   are where the searches stop early. *)
let ab_strategies max_passes =
  [
    ("IKMB", config_with ~alg:C.Routing_alg.ikmb ~max_passes ());
    ("KMB", config_with ~alg:C.Routing_alg.kmb ~max_passes ());
    ( "2pin",
      {
        (config_with ~max_passes ()) with
        F.Router.strategy = F.Router.Two_pin_decomposition;
      } );
  ]

(* Routed trees as a canonical (net name, sorted edge list) association —
   the bit-identity witness between the two modes. *)
let canonical_trees stats =
  List.map
    (fun r ->
      (r.F.Router.net.F.Netlist.net_name, List.sort compare r.F.Router.tree.G.Tree.edges))
    stats.F.Router.routed
  |> List.sort compare

let settled_nodes_section ~specs ~max_passes ~channel_width () =
  section "Targeted Dijkstra A/B (same trees, fewer settled nodes)";
  let t =
    Fr_util.Tab.create
      ~title:
        (Printf.sprintf "router work, full vs targeted (W=%d, max %d passes)" channel_width
           max_passes)
      ~header:
        [ "circuit"; "settled full"; "settled targ"; "ratio"; "runs full"; "runs targ";
          "full s"; "targ s"; "trees" ]
  in
  let all_identical = ref true and any_halved = ref false in
  List.iter
    (fun spec ->
      List.iter
        (fun (strat_name, config) ->
          let name = spec.F.Circuits.circuit ^ "/" ^ strat_name in
          let full, full_s = route_instrumented ~config ~targeted:false ~channel_width spec in
          let targ, targ_s = route_instrumented ~config ~targeted:true ~channel_width spec in
          match (full, targ) with
          | Ok sf, Ok st ->
              let identical = canonical_trees sf = canonical_trees st in
              if not identical then all_identical := false;
              let ratio =
                float_of_int sf.F.Router.settled_nodes
                /. float_of_int (max 1 st.F.Router.settled_nodes)
              in
              if ratio >= 2. then any_halved := true;
              Fr_util.Tab.add_row t
                [ name;
                  string_of_int sf.F.Router.settled_nodes;
                  string_of_int st.F.Router.settled_nodes;
                  Printf.sprintf "%.1fx" ratio;
                  string_of_int sf.F.Router.dijkstra_runs;
                  string_of_int st.F.Router.dijkstra_runs;
                  Printf.sprintf "%.2f" full_s;
                  Printf.sprintf "%.2f" targ_s;
                  (if identical then "identical" else "DIFFER") ]
          | Error _, Error _ ->
              Fr_util.Tab.add_row t
                [ name; "-"; "-"; "-"; "-"; "-"; Printf.sprintf "%.2f" full_s;
                  Printf.sprintf "%.2f" targ_s; "unroutable" ]
          | _ ->
              (* One mode routed and the other did not: a determinism bug. *)
              all_identical := false;
              Fr_util.Tab.add_row t
                [ name; "-"; "-"; "-"; "-"; "-"; Printf.sprintf "%.2f" full_s;
                  Printf.sprintf "%.2f" targ_s; "DIVERGED" ])
        (ab_strategies max_passes))
    specs;
  Fr_util.Tab.print t;
  (!all_identical, !any_halved)

(* ------------------------------------------------------------------ *)
(* Parallel router (1 vs N domains: bit-identity + speedup)            *)
(* ------------------------------------------------------------------ *)

let route_domains ~config ~channel_width ~domains spec =
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width) in
  let t0 = Unix.gettimeofday () in
  let r = F.Router.route ~config ~domains rrg circuit in
  (r, Unix.gettimeofday () -. t0)

(* Everything the batched pipeline promises to keep invariant across
   domain counts.  The Dijkstra work counters are deliberately absent:
   per-domain caches shard lookups differently, so runs/settled may vary
   even though every solve returns the same tree. *)
let quality_fingerprint (s : F.Router.stats) =
  ( s.F.Router.passes,
    s.F.Router.total_wirelength,
    s.F.Router.total_max_path,
    s.F.Router.peak_occupancy,
    s.F.Router.par_batches,
    s.F.Router.par_conflicts )

(* Wall time for the speedup column: best of [reps] back-to-back routes,
   which filters scheduler noise without bechamel's full protocol. *)
let best_time ~reps f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    let r, s = f () in
    if s < !best then best := s;
    result := Some r
  done;
  (Option.get !result, !best)

let parallel_section ~specs ~max_passes ~channel_width ~domains ~reps () =
  section (Printf.sprintf "Parallel router (1 vs %d domains, same trees)" domains);
  (* Routing solves allocate heavily (per-search arrays, candidate lists),
     and every minor collection is a stop-the-world sync across domains; a
     larger minor heap cuts the sync rate and is the standard multicore
     tuning.  Applied to both sides of the comparison, restored after. *)
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let t =
    Fr_util.Tab.create
      ~title:
        (Printf.sprintf "serial vs parallel routing wave (W=%d, max %d passes, IKMB)"
           channel_width max_passes)
      ~header:
        [ "circuit"; "serial s"; "par s"; "speedup"; "batches"; "conflicts"; "trees" ]
  in
  let config = config_with ~alg:C.Routing_alg.ikmb ~max_passes () in
  let all_identical = ref true and worst_speedup = ref infinity in
  List.iter
    (fun spec ->
      let name = spec.F.Circuits.circuit in
      let serial, serial_s =
        best_time ~reps (fun () -> route_domains ~config ~channel_width ~domains:1 spec)
      in
      let par, par_s =
        best_time ~reps (fun () -> route_domains ~config ~channel_width ~domains spec)
      in
      match (serial, par) with
      | Ok ss, Ok sp ->
          let identical =
            canonical_trees ss = canonical_trees sp
            && quality_fingerprint ss = quality_fingerprint sp
          in
          if not identical then all_identical := false;
          let speedup = serial_s /. par_s in
          if speedup < !worst_speedup then worst_speedup := speedup;
          Fr_util.Tab.add_row t
            [ name;
              Printf.sprintf "%.3f" serial_s;
              Printf.sprintf "%.3f" par_s;
              Printf.sprintf "%.2fx" speedup;
              string_of_int sp.F.Router.par_batches;
              string_of_int sp.F.Router.par_conflicts;
              (if identical then "identical" else "DIFFER") ]
      | Error _, Error _ ->
          Fr_util.Tab.add_row t
            [ name; Printf.sprintf "%.3f" serial_s; Printf.sprintf "%.3f" par_s; "-"; "-";
              "-"; "unroutable" ]
      | _ ->
          (* One domain count routed and the other did not: the pipeline's
             determinism guarantee is broken. *)
          all_identical := false;
          Fr_util.Tab.add_row t
            [ name; Printf.sprintf "%.3f" serial_s; Printf.sprintf "%.3f" par_s; "-"; "-";
              "-"; "DIVERGED" ])
    specs;
  Gc.set gc0;
  Fr_util.Tab.print t;
  let cores = Domain.recommended_domain_count () in
  if cores < domains then
    Printf.printf
      "(%d hardware core%s available for %d domains: wall-time speedup is not \
       expected on this machine, only bit-identity)\n%!"
      cores
      (if cores = 1 then "" else "s")
      domains;
  (!all_identical, !worst_speedup, cores >= domains)

(* ------------------------------------------------------------------ *)
(* Negotiated congestion A/B (waves vs negotiated) + BENCH_pr6.json    *)
(* ------------------------------------------------------------------ *)

(* Negotiated convergence means the routed trees are pairwise
   node-disjoint — the zero-overuse certificate, checked here from the
   outside rather than trusted from the router. *)
let trees_disjoint g stats =
  let seen = Hashtbl.create 4096 in
  List.for_all
    (fun r ->
      List.for_all
        (fun v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.replace seen v ();
            true
          end)
        (G.Tree.nodes g r.F.Router.tree))
    stats.F.Router.routed

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One mode's measurements at a fixed width, as both a table row and a
   machine-readable JSON object. *)
let mode_json ~stats ~wall_s extras =
  let fields =
    [
      ("iterations", string_of_int stats.F.Router.passes);
      ("wirelength", Printf.sprintf "%.1f" stats.F.Router.total_wirelength);
      ("max_path", Printf.sprintf "%.1f" stats.F.Router.total_max_path);
      ("settled_nodes", string_of_int stats.F.Router.settled_nodes);
      ("wall_s", Printf.sprintf "%.3f" wall_s);
    ]
    @ extras
  in
  "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields) ^ "}"

let write_bench_json ~path ~circuits_json =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"bench\": \"pr6_negotiated_ab\", \"domains\": %d, \"quick\": %b, \"circuits\": [%s]}\n"
    domains quick
    (String.concat ", " circuits_json);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" path

(* The A/B runs at each circuit's published (= batched-wave) minimum
   width: negotiated converging there is exactly the "channel width <= the
   waves router's" claim, without paying for a second bisection sweep on
   every smoke.  [sweep] adds the real per-mode minimum-width search (full
   bench only). *)
let negotiated_section ~specs ~domains ~sweep () =
  section "Negotiated congestion A/B (waves vs PathFinder pricing, same circuits)";
  let t =
    Fr_util.Tab.create ~title:"waves vs negotiated at the waves minimum width"
      ~header:
        [ "circuit"; "mode"; "W"; "iters"; "wirelength"; "max path"; "settled"; "wall s";
          "checks" ]
  in
  let all_ok = ref true in
  let circuits_json = ref [] in
  List.iter
    (fun spec ->
      let name = spec.F.Circuits.circuit in
      let width = Option.get spec.F.Circuits.published.F.Circuits.ours_ikmb in
      let waves_cfg = config_with ~alg:C.Routing_alg.ikmb () in
      let neg_cfg = config_with ~alg:C.Routing_alg.ikmb ~mode:F.Router.Negotiated () in
      let route_mode config d =
        let circuit = F.Circuits.generate spec in
        let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:width) in
        let t0 = Unix.gettimeofday () in
        let r = F.Router.route ~config ~domains:d rrg circuit in
        (rrg, r, Unix.gettimeofday () -. t0)
      in
      let _, waves_r, waves_s = route_mode waves_cfg 1 in
      let neg_rrg, neg_r, neg_s = route_mode neg_cfg 1 in
      let _, neg_par_r, _ = route_mode neg_cfg domains in
      match (waves_r, neg_r, neg_par_r) with
      | Ok ws, Ok ns, Ok nps ->
          let disjoint = trees_disjoint neg_rrg.F.Rrg.graph ns in
          let par_identical = canonical_trees ns = canonical_trees nps in
          if not (disjoint && par_identical) then all_ok := false;
          let sweep_result config =
            if not sweep then None
            else
              F.Router.min_channel_width ~config
                ~arch_of_width:(fun w -> F.Circuits.arch_for spec ~channel_width:w)
                ~circuit:(F.Circuits.generate spec) ~start:width ()
          in
          let min_w_waves = sweep_result waves_cfg and min_w_neg = sweep_result neg_cfg in
          let min_note label = function
            | Some (w, _) -> Printf.sprintf "; min W %d (%s)" w label
            | None -> ""
          in
          Fr_util.Tab.add_row t
            [ name; "waves"; string_of_int width; string_of_int ws.F.Router.passes;
              Printf.sprintf "%.0f" ws.F.Router.total_wirelength;
              Printf.sprintf "%.0f" ws.F.Router.total_max_path;
              string_of_int ws.F.Router.settled_nodes;
              Printf.sprintf "%.3f" waves_s;
              "baseline" ^ min_note "waves" min_w_waves ];
          Fr_util.Tab.add_row t
            [ name; "negotiated"; string_of_int width; string_of_int ns.F.Router.passes;
              Printf.sprintf "%.0f" ns.F.Router.total_wirelength;
              Printf.sprintf "%.0f" ns.F.Router.total_max_path;
              string_of_int ns.F.Router.settled_nodes;
              Printf.sprintf "%.3f" neg_s;
              (if disjoint then "disjoint" else "OVERUSED")
              ^ (if par_identical then Printf.sprintf "; domains 1=%d" domains
                 else "; domains DIFFER")
              ^ min_note "neg" min_w_neg ];
          let sweep_json = function
            | Some (w, _) -> [ ("min_width", string_of_int w) ]
            | None -> []
          in
          circuits_json :=
            Printf.sprintf
              "{\"circuit\": \"%s\", \"width\": %d, \"waves\": %s, \"negotiated\": %s}"
              (json_escape name) width
              (mode_json ~stats:ws ~wall_s:waves_s (sweep_json min_w_waves))
              (mode_json ~stats:ns ~wall_s:neg_s
                 ([
                    ("overuse_free", string_of_bool disjoint);
                    ( Printf.sprintf "identical_domains_1_vs_%d" domains,
                      string_of_bool par_identical );
                  ]
                 @ sweep_json min_w_neg))
            :: !circuits_json
      | _ ->
          all_ok := false;
          let show label = function
            | Ok _ -> ()
            | Error f ->
                Fr_util.Tab.add_row t
                  [ name; label; string_of_int width;
                    string_of_int f.F.Router.passes_tried; "-"; "-"; "-"; "-"; "FAILED" ]
          in
          show "waves" waves_r;
          show "negotiated" neg_r;
          show "negotiated/par" neg_par_r)
    specs;
  Fr_util.Tab.print t;
  write_bench_json ~path:"BENCH_pr6.json" ~circuits_json:(List.rev !circuits_json);
  !all_ok

(* ------------------------------------------------------------------ *)
(* Goal-directed search A/B (A* on/off x heap impl) + BENCH_pr7.json   *)
(* ------------------------------------------------------------------ *)

(* The four search configurations of one routing cell.  The settled-node
   count is a pure function of the frontier's pop order, which both heap
   implementations share exactly — so the heap axis only moves wall time
   while the A* axis moves the counts; trees are bit-identical across all
   four (canonical-parent relaxation, see Fr_graph.Dijkstra). *)
let pr7_variants base =
  [
    ("astar+bucket", { base with F.Router.astar = true; heap = G.Pq.Bucket });
    ("astar+binary", { base with F.Router.astar = true; heap = G.Pq.Binary });
    ("off+bucket", { base with F.Router.astar = false; heap = G.Pq.Bucket });
    ("off+binary", { base with F.Router.astar = false; heap = G.Pq.Binary });
  ]

(* Cell flags: [guaranteed] marks cells where every targeted query's
   targets all have zero future cost (KMB's terminal pairs, the two-pin
   baseline's single sinks), which carries the provable guarantee
   settled(on) <= settled(off); [want2x] marks the pure point-to-point
   cell where goal-direction is at its sharpest and the smoke demands a
   >= 2x settled-node cut.  KMB's per-net heuristic is flattened by the
   net's other terminals (the bound is a min over all of them), so it
   reduces but less; IKMB's Δ-scan targets thousands of Steiner
   candidates, so its searches must settle them all regardless of
   goal-direction — both are measured for the record, not held to 2x. *)
let pr7_cells ~max_passes ~neg_circuits name =
  [
    ("waves/IKMB", false, false, Some (config_with ~alg:C.Routing_alg.ikmb ~max_passes ()));
    ("waves/KMB", true, false, Some (config_with ~alg:C.Routing_alg.kmb ~max_passes ()));
    ( "waves/2pin",
      true,
      true,
      Some
        {
          (config_with ~max_passes ()) with
          F.Router.strategy = F.Router.Two_pin_decomposition;
        } );
    ( "negotiated/IKMB",
      false,
      false,
      (* Negotiated convergence takes tens of pricing iterations per
         variant, so the smoke bounds this cell to a subset of circuits;
         the full bench sweeps it everywhere. *)
      if List.mem name neg_circuits then
        Some (config_with ~alg:C.Routing_alg.ikmb ~mode:F.Router.Negotiated ~max_passes ())
      else None );
  ]

let astar_section ~specs ~max_passes ~channel_width ~neg_circuits () =
  section "Goal-directed search A/B (A* on/off x heap impl, same trees)";
  let t =
    Fr_util.Tab.create
      ~title:
        (Printf.sprintf "A* and heap A/B (W=%d, max %d passes)" channel_width max_passes)
      ~header:
        [ "cell"; "settled A*"; "settled off"; "ratio"; "h-evals"; "bucket s"; "binary s";
          "off s"; "trees" ]
  in
  let all_identical = ref true and reduced = ref true in
  let worst_2x_ratio = ref infinity in
  let quality = ref [] and circuits_json = ref [] in
  List.iter
    (fun spec ->
      let name = spec.F.Circuits.circuit in
      let cells_json = ref [] and domains_ok = ref true in
      List.iter
        (fun (cell_name, guaranteed, want2x, base) ->
          match base with
          | None -> ()
          | Some base ->
          let row_name = name ^ "/" ^ cell_name in
          let runs =
            List.map
              (fun (vname, cfg) ->
                let circuit = F.Circuits.generate spec in
                let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width) in
                let t0 = Unix.gettimeofday () in
                let r = F.Router.route ~config:cfg rrg circuit in
                (vname, r, Unix.gettimeofday () -. t0))
              (pr7_variants base)
          in
          match runs with
          | [ (_, Ok ab, s_ab); (_, Ok abin, s_abin); (_, Ok ob, s_ob); (_, Ok obin, s_obin) ]
            ->
              let stats = [ ab; abin; ob; obin ] in
              let tree0 = canonical_trees ab in
              let identical = List.for_all (fun s -> canonical_trees s = tree0) stats in
              if not identical then all_identical := false;
              let on = ab.F.Router.settled_nodes and off = ob.F.Router.settled_nodes in
              if guaranteed && on > off then reduced := false;
              if want2x then begin
                let r = float_of_int off /. float_of_int (max 1 on) in
                if r < !worst_2x_ratio then worst_2x_ratio := r
              end;
              if cell_name = "waves/IKMB" then
                quality :=
                  (name, ab.F.Router.total_wirelength, ab.F.Router.total_max_path)
                  :: !quality;
              Fr_util.Tab.add_row t
                [ row_name;
                  string_of_int on;
                  string_of_int off;
                  Printf.sprintf "%.1fx" (float_of_int off /. float_of_int (max 1 on));
                  string_of_int ab.F.Router.future_cost_evals;
                  Printf.sprintf "%.2f" s_ab;
                  Printf.sprintf "%.2f" s_abin;
                  Printf.sprintf "%.2f" s_ob;
                  (if identical then "identical" else "DIFFER") ];
              cells_json :=
                Printf.sprintf "{\"cell\": \"%s\", \"trees_identical\": %b, \"variants\": {%s}}"
                  (json_escape cell_name) identical
                  (String.concat ", "
                     (List.map2
                        (fun (vname, _) (s, wall_s) ->
                          Printf.sprintf "%S: %s" vname
                            (mode_json ~stats:s ~wall_s
                               [
                                 ("dijkstra_runs", string_of_int s.F.Router.dijkstra_runs);
                                 ( "future_cost_evals",
                                   string_of_int s.F.Router.future_cost_evals );
                                 ("heap", Printf.sprintf "%S" s.F.Router.heap_impl);
                               ]))
                        (pr7_variants base)
                        [ (ab, s_ab); (abin, s_abin); (ob, s_ob); (obin, s_obin) ]))
                :: !cells_json
          | _ ->
              all_identical := false;
              Fr_util.Tab.add_row t
                [ row_name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "FAILED" ])
        (pr7_cells ~max_passes ~neg_circuits name);
      (* Cross-domain identity at the default search configuration (the
         acceptance pin: --domains 1/2/4 route the same trees). *)
      let dom_cfg = config_with ~alg:C.Routing_alg.ikmb ~max_passes () in
      let dom_cfg = { dom_cfg with F.Router.astar = true; heap = G.Pq.Bucket } in
      let dom_runs =
        List.map
          (fun d ->
            match route_domains ~config:dom_cfg ~channel_width ~domains:d spec with
            | Ok s, _ -> Some (canonical_trees s)
            | Error _, _ -> None)
          [ 1; 2; 4 ]
      in
      (match dom_runs with
      | [ Some a; Some b; Some c ] -> if not (a = b && b = c) then domains_ok := false
      | _ -> domains_ok := false);
      if not !domains_ok then all_identical := false;
      circuits_json :=
        Printf.sprintf
          "{\"circuit\": \"%s\", \"width\": %d, \"domains_identical_1_2_4\": %b, \
           \"cells\": [%s]}"
          (json_escape name) channel_width !domains_ok
          (String.concat ", " (List.rev !cells_json))
        :: !circuits_json)
    specs;
  Fr_util.Tab.print t;
  let oc = open_out "BENCH_pr7.json" in
  Printf.fprintf oc "{\"bench\": \"pr7_astar_heap_ab\", \"quick\": %b, \"circuits\": [%s]}\n"
    quick
    (String.concat ", " (List.rev !circuits_json));
  close_out oc;
  Printf.printf "(wrote BENCH_pr7.json)\n%!";
  (!all_identical, !reduced, !worst_2x_ratio, !quality)

(* Journal-overlay accounting, at each circuit's published minimum channel
   width so rip-up passes actually happen.  The restore work is the journal
   entries undone; the old scheme scanned the full O(V+E) snapshot on every
   restore regardless of how little the failed pass had touched. *)
let journal_section ~max_passes () =
  section "Gstate journal (pass restore cost vs full snapshot)";
  let t =
    Fr_util.Tab.create ~title:"undo-journal counters at minimum routable width"
      ~header:
        [ "circuit"; "W"; "passes"; "V+E"; "mutations"; "rollbacks"; "restored";
          "old cost"; "ratio" ]
  in
  let all_cheaper = ref true in
  List.iter
    (fun spec ->
      let width =
        Option.get spec.F.Circuits.published.F.Circuits.ours_ikmb
      in
      let circuit = F.Circuits.generate spec in
      let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:width) in
      let g = rrg.F.Rrg.graph in
      let snapshot_cost = G.Gstate.num_nodes g + G.Gstate.num_edges g in
      match F.Router.route ~config:(config_with ~max_passes ()) rrg circuit with
      | Ok s ->
          (* total entries undone across all rollbacks vs the full-snapshot
             scans the old restore would have performed *)
          let restored = G.Gstate.rollback_entries g in
          let old_cost = s.F.Router.rollbacks * snapshot_cost in
          if restored >= old_cost then all_cheaper := false;
          Fr_util.Tab.add_row t
            [ spec.F.Circuits.circuit;
              string_of_int width;
              string_of_int s.F.Router.passes;
              string_of_int snapshot_cost;
              string_of_int s.F.Router.mutations;
              string_of_int s.F.Router.rollbacks;
              string_of_int restored;
              string_of_int old_cost;
              Printf.sprintf "%.2fx" (float_of_int restored /. float_of_int (max 1 old_cost)) ]
      | Error _ ->
          all_cheaper := false;
          Fr_util.Tab.add_row t
            [ spec.F.Circuits.circuit; string_of_int width; "-"; string_of_int snapshot_cost;
              "-"; "-"; "-"; "-"; "unroutable" ])
    [ Option.get (F.Circuits.find_spec "term1"); Option.get (F.Circuits.find_spec "apex7") ];
  Fr_util.Tab.print t;
  !all_cheaper

(* ------------------------------------------------------------------ *)
(* Incremental (ECO) re-routing + serve daemon -> BENCH_pr9.json       *)
(* ------------------------------------------------------------------ *)

let die msg =
  prerr_endline msg;
  exit 1

let canonical_routed routed =
  List.map
    (fun r ->
      (r.F.Router.net.F.Netlist.net_name, List.sort compare r.F.Router.tree.G.Tree.edges))
    routed
  |> List.sort compare

(* What the ECO differential contract pins beyond the trees themselves.
   The parallel-accounting counters (par_batches/par_conflicts) are
   per-request in an ECO session — a kept prefix's batches never re-run —
   so they are exactly what incrementality is allowed to change. *)
let eco_quality (s : F.Router.stats) =
  (s.F.Router.passes, s.F.Router.total_wirelength, s.F.Router.total_max_path,
   s.F.Router.peak_occupancy)

(* The scripted delta sequence: a removal, an addition, a terminal change
   (retime), and a mixed request.  Edits target nets near the END of the
   net order, where the waves schedule keeps an unchanged batch prefix —
   the locality incremental re-routing exists to exploit; negotiated mode
   reuses by terminal memo instead, so edit position is immaterial there. *)
let eco_script (c : F.Netlist.circuit) =
  let nets = Array.of_list c.F.Netlist.nets in
  let n = Array.length nets in
  if n < 4 then die "eco bench: circuit too small for the delta script";
  let a = nets.(n - 1) and b = nets.(n - 2) and m = nets.(n - 3) in
  let rotate (net : F.Netlist.net) =
    match List.rev (F.Netlist.net_pins net) with
    | last :: rest_rev ->
        F.Router.Eco.Retime_net (net.F.Netlist.net_name, last, List.rev rest_rev)
    | [] -> die "eco bench: net with no pins"
  in
  let fresh =
    F.Netlist.make_net
      ~name:(a.F.Netlist.net_name ^ "_eco")
      ~source:a.F.Netlist.source ~sinks:a.F.Netlist.sinks
  in
  [
    ("remove", [ F.Router.Eco.Remove_net a.F.Netlist.net_name ]);
    ("add", [ F.Router.Eco.Add_net fresh ]);
    ("retime", [ rotate b ]);
    ( "mixed",
      [
        F.Router.Eco.Remove_net m.F.Netlist.net_name;
        F.Router.Eco.Retime_net (b.F.Netlist.net_name, b.F.Netlist.source, b.F.Netlist.sinks);
      ] );
  ]

let eco_section ~specs ~modes ~domain_counts ~max_passes () =
  section "Incremental (ECO) re-routing (differential vs from-scratch)";
  let t =
    Fr_util.Tab.create
      ~title:
        (Printf.sprintf "ECO apply vs from-scratch route (W=14, domains %s)"
           (String.concat "/" (List.map string_of_int domain_counts)))
      ~header:
        [ "circuit/mode/step"; "total"; "ripped"; "reused"; "eco settled"; "scratch settled";
          "eco s"; "scratch s"; "trees" ]
  in
  let all_identical = ref true and all_partial = ref true in
  let circuits_json = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun mode ->
          let mode_name =
            match mode with F.Router.Waves -> "waves" | F.Router.Negotiated -> "negotiated"
          in
          let tag = spec.F.Circuits.circuit ^ "/" ^ mode_name in
          let config = config_with ~alg:C.Routing_alg.ikmb ~max_passes ~mode () in
          let mk_rrg () = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:14) in
          let circuit0 = F.Circuits.generate spec in
          let sessions =
            List.map
              (fun d ->
                match F.Router.Eco.create ~config ~domains:d (mk_rrg ()) circuit0 with
                | Ok (e, es) -> (d, e, es)
                | Error _ -> die (Printf.sprintf "eco bench: %s did not route at W=14" tag))
              domain_counts
          in
          let scratch circuit =
            let rrg = mk_rrg () in
            let t0 = Unix.gettimeofday () in
            match F.Router.route ~config ~domains:1 rrg circuit with
            | Ok s -> (s, Unix.gettimeofday () -. t0)
            | Error _ ->
                die (Printf.sprintf "eco bench: scratch %s did not route at W=14" tag)
          in
          let steps_json = ref [] in
          (* One step's cross-check: every session (all domain counts) must
             hold a routing bit-identical to the from-scratch route of its
             current netlist, with the same quality fingerprint. *)
          let check step_name (es0 : F.Router.Eco.eco_stats) ~eco_s =
            let _, e0, _ = List.hd sessions in
            let sc, sc_s = scratch (F.Router.Eco.circuit e0) in
            let want = canonical_routed sc.F.Router.routed in
            let identical =
              List.for_all
                (fun (_, e, _) -> canonical_routed (F.Router.Eco.routed e) = want)
                sessions
              && eco_quality es0.F.Router.Eco.stats = eco_quality sc
            in
            if not identical then all_identical := false;
            let total = es0.F.Router.Eco.nets_total
            and ripped = es0.F.Router.Eco.nets_ripped
            and reused = es0.F.Router.Eco.nets_reused in
            Fr_util.Tab.add_row t
              [ tag ^ "/" ^ step_name;
                string_of_int total;
                string_of_int ripped;
                string_of_int reused;
                string_of_int es0.F.Router.Eco.stats.F.Router.settled_nodes;
                string_of_int sc.F.Router.settled_nodes;
                Printf.sprintf "%.3f" eco_s;
                Printf.sprintf "%.3f" sc_s;
                (if identical then "identical" else "DIFFER") ];
            steps_json :=
              Printf.sprintf
                "{\"step\": \"%s\", \"nets_total\": %d, \"nets_ripped\": %d, \
                 \"nets_reused\": %d, \"eco_settled\": %d, \"scratch_settled\": %d, \
                 \"eco_s\": %.3f, \"scratch_s\": %.3f, \"identical\": %b}"
                (json_escape step_name) total ripped reused
                es0.F.Router.Eco.stats.F.Router.settled_nodes sc.F.Router.settled_nodes eco_s
                sc_s identical
              :: !steps_json;
            (ripped, total)
          in
          let _, _, es_create = List.hd sessions in
          ignore (check "create" es_create ~eco_s:0.0);
          (* Apply the script; at least one step per session must rip
             strictly fewer nets than the netlist holds — the entire point
             of the incremental path. *)
          let some_partial = ref false in
          List.iter
            (fun (step_name, deltas) ->
              let applied =
                List.map
                  (fun (d, e, _) ->
                    let t0 = Unix.gettimeofday () in
                    match F.Router.Eco.apply e deltas with
                    | Ok es -> (d, es, Unix.gettimeofday () -. t0)
                    | Error _ ->
                        die
                          (Printf.sprintf "eco bench: %s/%s did not route at W=14" tag
                             step_name))
                  sessions
              in
              let _, es0, eco_s = List.hd applied in
              (* Rip-up accounting is part of the deterministic schedule,
                 so it must agree across domain counts. *)
              List.iter
                (fun (d, es, _) ->
                  if
                    es.F.Router.Eco.nets_ripped <> es0.F.Router.Eco.nets_ripped
                    || es.F.Router.Eco.nets_reused <> es0.F.Router.Eco.nets_reused
                  then
                    die
                      (Printf.sprintf
                         "eco bench: %s/%s rip-up accounting differs between domains %d and %d"
                         tag step_name (let d0, _, _ = List.hd sessions in d0) d))
                applied;
              let ripped, total = check step_name es0 ~eco_s in
              if ripped < total then some_partial := true)
            (eco_script circuit0);
          if not !some_partial then all_partial := false;
          List.iter (fun (_, e, _) -> F.Router.Eco.close e) sessions;
          circuits_json :=
            Printf.sprintf "{\"circuit\": \"%s\", \"mode\": \"%s\", \"steps\": [%s]}"
              (json_escape spec.F.Circuits.circuit) mode_name
              (String.concat ", " (List.rev !steps_json))
            :: !circuits_json)
        modes)
    specs;
  Fr_util.Tab.print t;
  (!all_identical, !all_partial, List.rev !circuits_json)

(* ---------------- serve daemon (socket) ---------------- *)

module Serve = Fr_serve

(* A small fixed circuit so thousands of socket round-trips stay cheap;
   each bench client owns one net and toggles its terminal order, so the
   interleaving of concurrent clients never changes the final netlist. *)
let serve_circuit_text =
  String.concat "\n"
    [
      "circuit eco_serve 6 6";
      "net a 0,0,E,0 2,3,W,0";
      "net b 1,1,N,0 3,4,S,0 0,4,S,1";
      "net c 3,0,N,0 1,2,S,0";
      "net d 5,5,W,0 4,1,E,0";
      "";
    ]

let serve_request client obj =
  match Serve.Client.request client obj with
  | Ok resp -> resp
  | Error e -> die (Printf.sprintf "serve bench: protocol failure: %s" e)

let serve_expect_ok client obj =
  let resp = serve_request client obj in
  match Serve.Json.member "ok" resp with
  | Some (Serve.Json.Bool true) -> resp
  | _ -> die (Printf.sprintf "serve bench: request failed: %s" (Serve.Json.to_string resp))

let serve_retime_req name pins ~rotated =
  let pin_strs = List.map F.Netlist.pin_to_string pins in
  let source, sinks =
    match (pin_strs, List.rev pin_strs) with
    | p0 :: rest, last :: rest_rev ->
        if rotated then (last, List.rev rest_rev) else (p0, rest)
    | _ -> die "serve bench: net with no pins"
  in
  Serve.Json.Obj
    [
      ("cmd", Serve.Json.Str "eco");
      ( "deltas",
        Serve.Json.Arr
          [
            Serve.Json.Obj
              [
                ("op", Serve.Json.Str "retime");
                ("name", Serve.Json.Str name);
                ("source", Serve.Json.Str source);
                ("sinks", Serve.Json.Arr (List.map (fun s -> Serve.Json.Str s) sinks));
              ];
          ] );
    ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let serve_section ~queries ~clients () =
  section "Serve daemon (concurrent ECO clients over a Unix socket)";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fr_serve_bench_%d.sock" (Unix.getpid ()))
  in
  let server = Serve.Server.create ~socket in
  let server_thread = Thread.create Serve.Server.serve_forever server in
  let circuit =
    match F.Netlist.of_string serve_circuit_text with
    | Ok c -> c
    | Error e -> die ("serve bench: bad fixture circuit: " ^ e)
  in
  let nets = Array.of_list circuit.F.Netlist.nets in
  let main_client = Serve.Client.connect ~socket in
  let route_req =
    Serve.Json.Obj
      [
        ("cmd", Serve.Json.Str "route");
        ("circuit", Serve.Json.Str serve_circuit_text);
        ("width", Serve.Json.of_int 6);
        ("mode", Serve.Json.Str "waves");
      ]
  in
  let digest_of resp =
    match Option.bind (Serve.Json.member "digest" resp) Serve.Json.str with
    | Some d -> d
    | None -> die "serve bench: response carries no digest"
  in
  let first = serve_expect_ok main_client route_req in
  let digest0 = digest_of first in
  (* Each client: its own connection, its own net, an even number of
     toggles (so every client ends on the original terminal order). *)
  let per_client = max 2 (queries / clients / 2 * 2) in
  let latencies = Array.make (clients * per_client) 0. in
  let t0 = Unix.gettimeofday () in
  let worker k =
    let c = Serve.Client.connect ~socket in
    let net = nets.(k mod Array.length nets) in
    let name = net.F.Netlist.net_name and pins = F.Netlist.net_pins net in
    for j = 0 to per_client - 1 do
      let req = serve_retime_req name pins ~rotated:(j mod 2 = 0) in
      let q0 = Unix.gettimeofday () in
      ignore (serve_expect_ok c req);
      latencies.((k * per_client) + j) <- Unix.gettimeofday () -. q0
    done;
    Serve.Client.close c
  in
  let threads = List.init clients (fun k -> Thread.create worker k) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let total = clients * per_client in
  (* Every client ended on its net's original orientation, so the session
     must be back at the initial netlist: its digest must equal both the
     initial route's and a fresh from-scratch session's — the ECO-vs-
     scratch identity, checked end to end through the socket. *)
  let stats_resp = serve_expect_ok main_client (Serve.Json.Obj [ ("cmd", Serve.Json.Str "stats") ]) in
  let digest_after = digest_of stats_resp in
  let rescratch = serve_expect_ok main_client route_req in
  let digest_scratch = digest_of rescratch in
  let identity = digest_after = digest0 && digest_after = digest_scratch in
  ignore (serve_expect_ok main_client (Serve.Json.Obj [ ("cmd", Serve.Json.Str "shutdown") ]));
  Serve.Client.close main_client;
  Thread.join server_thread;
  let socket_gone = not (Sys.file_exists socket) in
  Array.sort compare latencies;
  let ms p = percentile latencies p *. 1000. in
  let throughput = float_of_int total /. wall_s in
  Printf.printf
    "%d ECO queries over %d concurrent clients in %.2fs: %.0f req/s, latency p50 %.2fms \
     p90 %.2fms p99 %.2fms; eco-vs-scratch digests %s; socket %s\n%!"
    total clients wall_s throughput (ms 0.50) (ms 0.90) (ms 0.99)
    (if identity then "identical" else "DIFFER")
    (if socket_gone then "removed" else "LEFT BEHIND");
  let json =
    Printf.sprintf
      "{\"queries\": %d, \"clients\": %d, \"wall_s\": %.3f, \"throughput_rps\": %.1f, \
       \"p50_ms\": %.3f, \"p90_ms\": %.3f, \"p99_ms\": %.3f, \
       \"eco_vs_scratch_identical\": %b, \"clean_shutdown\": %b}"
      total clients wall_s throughput (ms 0.50) (ms 0.90) (ms 0.99) identity socket_gone
  in
  (identity && socket_gone, json)

let write_pr9_json ~eco_json ~serve_json =
  let oc = open_out "BENCH_pr9.json" in
  Printf.fprintf oc
    "{\"bench\": \"pr9_eco_serve\", \"domains\": %d, \"quick\": %b, \"eco\": [%s], \
     \"serve\": %s}\n"
    domains quick (String.concat ", " eco_json) serve_json;
  close_out oc;
  Printf.printf "(wrote BENCH_pr9.json)\n%!"

let smoke_main () =
  let specs =
    List.map (fun c -> Option.get (F.Circuits.find_spec c)) [ "term1"; "apex7" ]
  in
  let identical, halved =
    settled_nodes_section ~specs ~max_passes:3 ~channel_width:14 ()
  in
  if not identical then begin
    prerr_endline "SMOKE FAIL: targeted and full routes differ (or did not route)";
    exit 1
  end;
  if not halved then begin
    prerr_endline "SMOKE FAIL: targeted mode settled less than 2x fewer nodes";
    exit 1
  end;
  let par_identical, speedup, enough_cores =
    parallel_section ~specs ~max_passes:3 ~channel_width:14 ~domains ~reps:2 ()
  in
  if not par_identical then begin
    prerr_endline
      (Printf.sprintf
         "SMOKE FAIL: %d-domain route differs from the serial route (trees or stats)"
         domains);
    exit 1
  end;
  (* Identity is a hard guarantee; wall-time gain depends on the hardware
     the smoke happens to run on, so a short machine demotes the speedup
     expectation to a warning instead of flaking. *)
  if enough_cores && speedup < 1.5 then
    Printf.printf "smoke WARNING: %d-domain speedup only %.2fx (expected >= 1.5x)\n%!"
      domains speedup;
  let journal_cheaper = journal_section ~max_passes:20 () in
  if not journal_cheaper then begin
    prerr_endline "SMOKE FAIL: journal restore cost not below full-snapshot scans";
    exit 1
  end;
  let neg_ok = negotiated_section ~specs ~domains ~sweep:false () in
  if not neg_ok then begin
    prerr_endline
      "SMOKE FAIL: negotiated mode broke a guarantee (convergence at the waves width, \
       tree disjointness, or cross-domain identity)";
    exit 1
  end;
  let astar_identical, astar_reduced, point_to_point_ratio, quality =
    astar_section ~specs ~max_passes:3 ~channel_width:14 ~neg_circuits:[ "term1" ] ()
  in
  if not astar_identical then begin
    prerr_endline
      "SMOKE FAIL: A*/heap A/B broke bit-identity (across astar on/off, heap impls, or \
       domains 1/2/4)";
    exit 1
  end;
  if not astar_reduced then begin
    prerr_endline
      "SMOKE FAIL: goal-direction settled MORE nodes on a guaranteed (point-to-point) cell";
    exit 1
  end;
  if point_to_point_ratio < 2. then begin
    Printf.eprintf
      "SMOKE FAIL: goal-direction only cut settled nodes %.2fx on the point-to-point cells \
       (expected >= 2x)\n"
      point_to_point_ratio;
    exit 1
  end;
  (* Routing-quality pin at the W=14 smoke cell (IKMB, Waves): the
     canonical-parent relaxation landed with goal-direction makes these a
     pure graph property, so any drift is a real behavior change. *)
  let golden = [ ("term1", (767., 649.)); ("apex7", (1083., 925.)) ] in
  List.iter
    (fun (name, wl, mp) ->
      match List.assoc_opt name golden with
      | Some (gwl, gmp) when gwl = wl && gmp = mp -> ()
      | Some (gwl, gmp) ->
          Printf.eprintf
            "SMOKE FAIL: %s quality drifted: wirelength %.0f (pinned %.0f), max path %.0f \
             (pinned %.0f)\n"
            name wl gwl mp gmp;
          exit 1
      | None -> ())
    quality;
  (* ECO differential: the scripted delta sequences on term1 and apex7,
     both modes, domains 1/2/4, each step bit-identical to from-scratch.
     REPRO_QUICK keeps apex7 to waves mode to bound CI time; the full
     smoke runs the whole matrix. *)
  let eco_cases =
    List.concat_map
      (fun spec ->
        let modes =
          if quick && spec.F.Circuits.circuit = "apex7" then [ F.Router.Waves ]
          else [ F.Router.Waves; F.Router.Negotiated ]
        in
        [ (spec, modes) ])
      specs
  in
  let eco_results =
    List.map
      (fun (spec, modes) ->
        eco_section ~specs:[ spec ] ~modes ~domain_counts:[ 1; 2; 4 ] ~max_passes:8 ())
      eco_cases
  in
  let eco_identical = List.for_all (fun (i, _, _) -> i) eco_results in
  let eco_partial = List.for_all (fun (_, p, _) -> p) eco_results in
  let eco_json = List.concat_map (fun (_, _, j) -> j) eco_results in
  if not eco_identical then begin
    prerr_endline
      "SMOKE FAIL: an ECO apply diverged from the from-scratch route of the edited netlist";
    exit 1
  end;
  if not eco_partial then begin
    prerr_endline
      "SMOKE FAIL: no ECO step ripped up strictly fewer nets than the netlist holds \
       (incremental path never engaged)";
    exit 1
  end;
  let serve_ok, serve_json =
    serve_section ~queries:(if quick then 200 else 2000) ~clients:4 ()
  in
  if not serve_ok then begin
    prerr_endline
      "SMOKE FAIL: serve daemon broke eco-vs-scratch digest identity or left its socket \
       behind";
    exit 1
  end;
  write_pr9_json ~eco_json ~serve_json;
  Printf.printf
    "smoke OK: trees identical (targeted A/B, %d-domain parallel at %.2fx wall ratio, A* \
     on/off x heap impls, domains 1/2/4), targeted settles >= 2x fewer nodes, \
     goal-direction cuts point-to-point settling %.1fx (>= 2x) with pinned routing \
     quality, journal restore work below full-snapshot scans, negotiated mode converges \
     overuse-free at the waves widths, ECO applies bit-identical to from-scratch with \
     partial rip-up, serve daemon round-trips concurrent ECO clients\n%!"
    domains speedup point_to_point_ratio

(* ------------------------------------------------------------------ *)
(* Full table / figure regeneration                                    *)
(* ------------------------------------------------------------------ *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "(section took %.1fs)\n%!" (Unix.gettimeofday () -. t0);
  r

let subset_3000 () =
  if quick then List.filter (fun s -> s.F.Circuits.circuit = "busc") F.Circuits.specs_3000
  else F.Circuits.specs_3000

let subset_4000 () =
  if quick then
    List.filter
      (fun s -> List.mem s.F.Circuits.circuit [ "term1"; "9symml"; "apex7" ])
      F.Circuits.specs_4000
  else F.Circuits.specs_4000

let () =
  if smoke then begin
    smoke_main ();
    exit 0
  end;
  Printf.printf "Reproduction benches for Alexander-Robins, DAC 1995%s\n%!"
    (if quick then " [REPRO_QUICK]" else "");

  section "CPU-time micro-benchmarks (paper: 'several dozen ms' on |V|=50, |E|=1000, |N|=5)";
  run_bechamel "algorithms" algorithm_tests ~quota_s:(if quick then 0.2 else 0.5);

  section "Per-table/figure workload kernels";
  run_bechamel "workloads" workload_tests ~quota_s:(if quick then 0.5 else 1.0);

  let ab_specs =
    List.filter
      (fun s ->
        List.mem s.F.Circuits.circuit (if quick then [ "term1" ] else [ "term1"; "9symml"; "apex7" ]))
      F.Circuits.specs_4000
  in
  ignore
    (wall (fun () ->
         settled_nodes_section ~specs:ab_specs ~max_passes:(if quick then 3 else 8)
           ~channel_width:14 ()));

  ignore
    (wall (fun () ->
         parallel_section ~specs:ab_specs ~max_passes:(if quick then 3 else 8)
           ~channel_width:14 ~domains ~reps:(if quick then 2 else 3) ()));

  let neg_specs =
    List.map (fun c -> Option.get (F.Circuits.find_spec c)) [ "term1"; "apex7" ]
  in
  ignore (wall (fun () -> negotiated_section ~specs:neg_specs ~domains ~sweep:(not quick) ()));

  ignore
    (wall (fun () ->
         astar_section ~specs:neg_specs ~max_passes:(if quick then 3 else 8) ~channel_width:14
           ~neg_circuits:[ "term1"; "apex7" ] ()));

  (let eco_identical, eco_partial, eco_json =
     wall (fun () ->
         eco_section ~specs:neg_specs
           ~modes:[ F.Router.Waves; F.Router.Negotiated ]
           ~domain_counts:[ 1; domains ] ~max_passes:8 ())
   in
   let serve_ok, serve_json =
     wall (fun () -> serve_section ~queries:(if quick then 500 else 4000) ~clients:4 ())
   in
   if not (eco_identical && eco_partial && serve_ok) then
     prerr_endline "WARNING: ECO/serve section failed a guarantee (see above)";
   write_pr9_json ~eco_json ~serve_json);

  let nets_per_config = if quick then 10 else 50 in
  let max_passes = if quick then 8 else 20 in
  let config = config_with ~max_passes () in

  section "Table 1 (grid congestion study)";
  wall (fun () ->
      Fr_util.Tab.print (Fr_exp.Table1.to_table (Fr_exp.Table1.run ~nets_per_config ())));

  section "Table 2 (3000-series channel widths vs CGE)";
  let rows2 = wall (fun () -> Fr_exp.Router_tables.table2 ~config ~specs:(subset_3000 ()) ()) in
  Fr_util.Tab.print (Fr_exp.Router_tables.table2_to_table rows2);

  section "Table 3 (4000-series channel widths vs SEGA/GBP)";
  let rows3 = wall (fun () -> Fr_exp.Router_tables.table3 ~config ~specs:(subset_4000 ()) ()) in
  Fr_util.Tab.print (Fr_exp.Router_tables.table3_to_table rows3);

  section "Table 4 (channel width by algorithm)";
  let rows4 =
    wall (fun () ->
        Fr_exp.Router_tables.table4 ~specs:(subset_4000 ()) ~max_passes ~reuse_ikmb:rows3 ())
  in
  Fr_util.Tab.print (Fr_exp.Router_tables.table4_to_table rows4);

  section "Table 5 (wirelength vs pathlength at equal width)";
  let rows5 = wall (fun () -> Fr_exp.Router_tables.table5 ~max_passes rows4) in
  Fr_util.Tab.print (Fr_exp.Router_tables.table5_to_table rows5);

  section "Baseline (two-pin decomposition, the CGE/SEGA/GBP strategy)";
  let baseline_specs =
    (* The live baseline is our own addition; keep it to the smaller half
       of the 4000-series set to bound the run time. *)
    if quick then subset_4000 ()
    else
      List.filter
        (fun s ->
          List.mem s.F.Circuits.circuit [ "term1"; "9symml"; "apex7"; "example2"; "alu2" ])
        F.Circuits.specs_4000
  in
  let rowsb = wall (fun () -> Fr_exp.Router_tables.baseline ~specs:baseline_specs ~max_passes ()) in
  Fr_util.Tab.print (Fr_exp.Router_tables.baseline_to_table rowsb);

  section "Figures";
  print_endline (Fr_exp.Figures.fig3 ());
  print_endline (Fr_exp.Figures.fig4 ());
  print_endline (Fr_exp.Figures.fig6 ());
  print_endline (Fr_exp.Figures.fig10 ());
  print_endline (Fr_exp.Figures.fig11 ());
  print_endline (Fr_exp.Figures.fig13 ());
  print_endline (Fr_exp.Figures.fig14 ());
  print_endline (Fr_exp.Figures.fig16 ~channel_width:8 ());
  print_endline "Done."
