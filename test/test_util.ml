(* Unit and property tests for the fr_util substrate. *)

module Vec = Fr_util.Vec
module Rng = Fr_util.Rng
module Stats = Fr_util.Stats
module Tab = Fr_util.Tab

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 0;
  Alcotest.(check int) "set 7" 0 (Vec.get v 7)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Vec.set: index out of bounds")
    (fun () -> Vec.set v 3 0)

let test_vec_conversions () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4; 1; 5 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Vec.to_array v);
  Vec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.length v);
  Alcotest.(check (array int)) "empty to_array" [||] (Vec.to_array v)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_rng_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.of_name "busc" and d = Rng.of_name "busc" in
  Alcotest.(check int) "name-derived determinism" (Rng.int c 1_000_000) (Rng.int d 1_000_000)

let test_rng_sample_distinct () =
  let rng = Rng.make 7 in
  let s = Rng.sample_distinct rng 10 100 in
  Alcotest.(check int) "size" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 100)) s;
  (* Dense case takes the shuffle path. *)
  let s2 = Rng.sample_distinct rng 9 10 in
  Alcotest.(check int) "dense distinct" 9 (List.length (List.sort_uniq compare s2))

let test_rng_int_in () =
  let rng = Rng.make 3 in
  for _ = 1 to 200 do
    let x = Rng.int_in rng 2 5 in
    Alcotest.(check bool) "bounds" true (x >= 2 && x <= 5)
  done

let test_stats_basic () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean []);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "sum" 6. (Stats.sum [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean_arr" 2. (Stats.mean_arr [| 1.; 2.; 3. |])

let test_stats_percent () =
  Alcotest.(check (float 1e-9)) "percent +" 25. (Stats.percent_vs 5. 4.);
  Alcotest.(check (float 1e-9)) "percent -" (-20.) (Stats.percent_vs 4. 5.);
  Alcotest.(check (float 1e-9)) "percent zero ref" 0. (Stats.percent_vs 4. 0.)

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev constant" 0. (Stats.stddev [ 2.; 2.; 2. ]);
  Alcotest.(check (float 1e-9)) "stddev pair" 1. (Stats.stddev [ 1.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0. (Stats.stddev [ 5. ])

let test_tab_render () =
  let t = Tab.create ~title:"T" ~header:[ "name"; "v" ] in
  Tab.add_row t [ "a"; "1" ];
  Tab.add_separator t;
  Tab.add_row t [ "bb" ];
  Tab.add_note t "note";
  let s = Tab.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "row a" true (has "a ");
  Alcotest.(check bool) "note" true (has "note");
  Alcotest.(check bool) "padded short row" true (has "bb")

let test_tab_fmt () =
  Alcotest.(check string) "fmt_f" "3.14" (Tab.fmt_f 3.14159);
  Alcotest.(check string) "fmt_signed pos" "+1.50" (Tab.fmt_signed 1.5);
  Alcotest.(check string) "fmt_signed neg" "-1.50" (Tab.fmt_signed (-1.5))

(* Property: sample_distinct always returns k distinct in-range values. *)
let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_distinct distinct and in range" ~count:100
    QCheck.(pair (int_range 0 30) (int_range 30 200))
    (fun (k, n) ->
      let rng = Rng.make (k + (1000 * n)) in
      let s = Rng.sample_distinct rng k n in
      List.length s = k
      && List.length (List.sort_uniq compare s) = k
      && List.for_all (fun x -> x >= 0 && x < n) s)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(array_of_size (QCheck.Gen.int_range 0 50) small_int)
    (fun a ->
      let rng = Rng.make (Array.length a) in
      let b = Array.copy a in
      Rng.shuffle rng b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let () =
  Alcotest.run "fr_util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "sample_distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percent" `Quick test_stats_percent;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
        ] );
      ( "tab",
        [
          Alcotest.test_case "render" `Quick test_tab_render;
          Alcotest.test_case "fmt" `Quick test_tab_fmt;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sample_distinct;
          QCheck_alcotest.to_alcotest prop_shuffle_permutation;
        ] );
    ]
