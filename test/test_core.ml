(* Unit, integration, and property tests for the paper's core algorithms. *)

module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng

let cache_of g = G.Dist_cache.create g

(* The 3-terminal "star vs triangle" instance with unique shortest paths:
   terminals A,B,C pairwise joined by weight-1.9 edges, and a Steiner hub s
   joined to each by weight-1 edges.  KMB alone returns the 3.8 triangle
   path; IKMB/ZEL/IZEL find the optimal 3.0 star. *)
let star_triangle () =
  let g = G.Wgraph.create 4 in
  let a = 0 and b = 1 and c = 2 and s = 3 in
  ignore (G.Wgraph.add_edge g a b 1.9);
  ignore (G.Wgraph.add_edge g b c 1.9);
  ignore (G.Wgraph.add_edge g a c 1.9);
  ignore (G.Wgraph.add_edge g a s 1.);
  ignore (G.Wgraph.add_edge g b s 1.);
  ignore (G.Wgraph.add_edge g c s 1.);
  (G.Gstate.of_builder g, [ a; b; c ], s)

(* Source A with sinks B and C, both at distance 2: either directly (2.0)
   or through the shared Steiner node m (1+1).  DOM pays 4, IDOM/PFA fold
   through m and pay 3. *)
let shared_hub () =
  let g = G.Wgraph.create 4 in
  let a = 0 and b = 1 and c = 2 and m = 3 in
  ignore (G.Wgraph.add_edge g a b 2.);
  ignore (G.Wgraph.add_edge g a c 2.);
  ignore (G.Wgraph.add_edge g a m 1.);
  ignore (G.Wgraph.add_edge g m b 1.);
  ignore (G.Wgraph.add_edge g m c 1.);
  (G.Gstate.of_builder g, C.Net.make ~source:a ~sinks:[ b; c ], m)

let random_instance seed ~n ~m ~k =
  let rng = Rng.make seed in
  let g = G.Random_graph.connected rng ~n ~m ~wmin:0.5 ~wmax:3. in
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k) in
  (g, net)

(* ------------------------------------------------------------------ *)
(* Net                                                                *)
(* ------------------------------------------------------------------ *)

let test_net_make () =
  let n = C.Net.make ~source:3 ~sinks:[ 1; 2; 1; 3 ] in
  Alcotest.(check (list int)) "dedup, source removed" [ 1; 2 ] n.C.Net.sinks;
  Alcotest.(check (list int)) "terminals" [ 3; 1; 2 ] (C.Net.terminals n);
  Alcotest.(check int) "size" 3 (C.Net.size n)

let test_net_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Net.of_terminals: empty net") (fun () ->
      ignore (C.Net.of_terminals []));
  Alcotest.check_raises "negative" (Invalid_argument "Net.make: negative node id") (fun () ->
      ignore (C.Net.make ~source:0 ~sinks:[ -1 ]))

(* ------------------------------------------------------------------ *)
(* KMB                                                                *)
(* ------------------------------------------------------------------ *)

let test_kmb_two_pins_is_shortest_path () =
  let g, _, _ = star_triangle () in
  let cache = cache_of g in
  let t = C.Kmb.solve cache ~terminals:[ 0; 1 ] in
  Alcotest.(check (float 1e-9)) "shortest path" 1.9 (G.Tree.cost g t)

let test_kmb_star_triangle () =
  let g, terminals, _ = star_triangle () in
  let cache = cache_of g in
  let t = C.Kmb.solve cache ~terminals in
  Alcotest.(check (float 1e-9)) "KMB stays on the triangle" 3.8 (G.Tree.cost g t);
  Alcotest.(check bool) "valid tree" true (G.Tree.is_tree g t);
  Alcotest.(check bool) "spans" true (G.Tree.spans g t terminals)

let test_kmb_single_terminal () =
  let g, _, _ = star_triangle () in
  let cache = cache_of g in
  let t = C.Kmb.solve cache ~terminals:[ 2 ] in
  Alcotest.(check int) "empty tree" 0 (List.length t.G.Tree.edges)

let test_kmb_unroutable () =
  let g = G.Wgraph.create 3 in
  ignore (G.Wgraph.add_edge g 0 1 1.);
  let g = G.Gstate.of_builder g in
  let cache = cache_of g in
  Alcotest.check_raises "disconnected" (C.Routing_err.Unroutable "KMB") (fun () ->
      ignore (C.Kmb.solve cache ~terminals:[ 0; 2 ]))

(* ------------------------------------------------------------------ *)
(* ZEL                                                                *)
(* ------------------------------------------------------------------ *)

let test_zel_star_triangle () =
  let g, terminals, _ = star_triangle () in
  let cache = cache_of g in
  let t = C.Zel.solve cache ~terminals in
  Alcotest.(check (float 1e-9)) "ZEL contracts the triple to the hub" 3. (G.Tree.cost g t)

let test_zel_memo_reuse () =
  let g, terminals, _ = star_triangle () in
  let cache = cache_of g in
  let memo = C.Zel.create_memo () in
  let c1 = C.Zel.cost ~memo cache ~terminals in
  let c2 = C.Zel.cost ~memo cache ~terminals in
  Alcotest.(check (float 1e-9)) "memoized result identical" c1 c2

let test_zel_small_nets_fall_back_to_kmb () =
  let g, _, _ = star_triangle () in
  let cache = cache_of g in
  let z = C.Zel.cost cache ~terminals:[ 0; 1 ] in
  let k = C.Kmb.cost cache ~terminals:[ 0; 1 ] in
  Alcotest.(check (float 1e-9)) "2-pin identical" k z

(* ------------------------------------------------------------------ *)
(* IGMST                                                              *)
(* ------------------------------------------------------------------ *)

let test_ikmb_improves_star_triangle () =
  let g, terminals, s = star_triangle () in
  let cache = cache_of g in
  let steiner = C.Igmst.steiner_nodes C.Igmst.kmb cache ~terminals in
  Alcotest.(check (list int)) "hub selected" [ s ] steiner;
  let t = C.Igmst.ikmb cache ~terminals in
  Alcotest.(check (float 1e-9)) "optimal" 3. (G.Tree.cost g t)

let test_izel_star_triangle () =
  let g, terminals, _ = star_triangle () in
  let cache = cache_of g in
  let t = C.Igmst.izel cache ~terminals in
  Alcotest.(check (float 1e-9)) "optimal" 3. (G.Tree.cost g t)

let test_igmst_candidate_restriction () =
  let g, terminals, s = star_triangle () in
  let cache = cache_of g in
  (* Forbidding the hub forces IKMB back to the KMB solution. *)
  let t = C.Igmst.ikmb ~candidates:[] cache ~terminals in
  Alcotest.(check (float 1e-9)) "no candidates -> KMB" 3.8 (G.Tree.cost g t);
  let t' = C.Igmst.ikmb ~candidates:[ s ] cache ~terminals in
  Alcotest.(check (float 1e-9)) "hub candidate suffices" 3. (G.Tree.cost g t')

let prop_ikmb_never_worse_than_kmb =
  QCheck.Test.make ~name:"cost(IKMB) <= cost(KMB)" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:30 ~m:70 ~k:5 in
      let cache = cache_of g in
      let terminals = C.Net.terminals net in
      let k = C.Kmb.cost cache ~terminals in
      let ik = G.Tree.cost g (C.Igmst.ikmb cache ~terminals) in
      ik <= k +. 1e-6)

let prop_izel_never_worse_than_zel =
  QCheck.Test.make ~name:"cost(IZEL) <= cost(ZEL)" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:20 ~m:45 ~k:4 in
      let cache = cache_of g in
      let terminals = C.Net.terminals net in
      let z = C.Zel.cost cache ~terminals in
      let iz = G.Tree.cost g (C.Igmst.izel cache ~terminals) in
      iz <= z +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Exact                                                              *)
(* ------------------------------------------------------------------ *)

let test_exact_star_triangle () =
  let g, terminals, _ = star_triangle () in
  let t = C.Exact.steiner g ~terminals in
  Alcotest.(check (float 1e-9)) "optimum is the star" 3. (G.Tree.cost g t);
  Alcotest.(check bool) "valid" true (G.Tree.is_tree g t && G.Tree.spans g t terminals)

let test_exact_two_pins () =
  let g, _, _ = star_triangle () in
  let t = C.Exact.steiner g ~terminals:[ 0; 1 ] in
  Alcotest.(check (float 1e-9)) "shortest path" 1.9 (G.Tree.cost g t)

let test_exact_guard () =
  let g = G.Wgraph.create 20 in
  for i = 0 to 18 do
    ignore (G.Wgraph.add_edge g i (i + 1) 1.)
  done;
  let g = G.Gstate.of_builder g in
  Alcotest.check_raises "too many terminals"
    (Invalid_argument "Exact.steiner: too many terminals") (fun () ->
      ignore (C.Exact.steiner g ~terminals:(List.init 13 (fun i -> i))))

let prop_exact_lower_bounds_heuristics =
  QCheck.Test.make ~name:"Exact <= KMB <= 2*Exact and Exact <= ZEL" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:18 ~m:40 ~k:4 in
      let cache = cache_of g in
      let terminals = C.Net.terminals net in
      let opt = C.Exact.steiner_cost g ~terminals in
      let k = C.Kmb.cost cache ~terminals in
      let z = C.Zel.cost cache ~terminals in
      opt <= k +. 1e-6 && k <= (2. *. opt) +. 1e-6 && opt <= z +. 1e-6)

let prop_exact_spans_and_is_tree =
  QCheck.Test.make ~name:"Exact returns spanning trees" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:15 ~m:35 ~k:5 in
      let terminals = C.Net.terminals net in
      let t = C.Exact.steiner g ~terminals in
      G.Tree.is_tree g t && G.Tree.spans g t terminals)

(* ------------------------------------------------------------------ *)
(* Dominance                                                          *)
(* ------------------------------------------------------------------ *)

let test_dominance_basics () =
  let g, net, m = shared_hub () in
  let cache = cache_of g in
  let source = net.C.Net.source in
  Alcotest.(check bool) "B dominates m" true
    (C.Dominance.dominates cache ~source ~p:1 ~s:m);
  Alcotest.(check bool) "B dominates source" true
    (C.Dominance.dominates cache ~source ~p:1 ~s:source);
  Alcotest.(check bool) "B does not dominate C" false
    (C.Dominance.dominates cache ~source ~p:1 ~s:2)

let test_max_dom () =
  let g, net, m = shared_hub () in
  let cache = cache_of g in
  let source = net.C.Net.source in
  ignore g;
  match C.Dominance.max_dom cache ~source ~p:1 ~q:2 with
  | Some (node, d) ->
      Alcotest.(check int) "maxdom is the hub" m node;
      Alcotest.(check (float 1e-9)) "at distance 1" 1. d
  | None -> Alcotest.fail "max_dom returned None"

let test_nearest_dominated () =
  let g, net, m = shared_hub () in
  let cache = cache_of g in
  let source = net.C.Net.source in
  ignore g;
  (match C.Dominance.nearest_dominated cache ~source ~members:[ source; 1; 2; m ] ~p:1 with
  | Some (s, d) ->
      Alcotest.(check int) "parent is hub" m s;
      Alcotest.(check (float 1e-9)) "dist 1" 1. d
  | None -> Alcotest.fail "no parent");
  Alcotest.(check bool) "source has no parent" true
    (C.Dominance.nearest_dominated cache ~source ~members:[ source; 1 ] ~p:source = None)

(* ------------------------------------------------------------------ *)
(* Arborescence algorithms                                            *)
(* ------------------------------------------------------------------ *)

let test_djka_valid () =
  let g, net, _ = shared_hub () in
  let cache = cache_of g in
  let t = C.Djka.solve cache ~net in
  Alcotest.(check bool) "arborescence" true (C.Eval.is_arborescence cache ~net ~tree:t);
  Alcotest.(check bool) "valid" true (C.Eval.check cache ~net ~tree:t = Ok ())

let test_dom_pays_without_folding () =
  let g, net, _ = shared_hub () in
  let cache = cache_of g in
  Alcotest.(check (float 1e-9)) "distance-graph cost 4" 4.
    (C.Dom.distance_graph_cost cache ~source:net.C.Net.source ~sinks:net.C.Net.sinks);
  let t = C.Dom.solve cache ~net in
  Alcotest.(check bool) "arborescence" true (C.Eval.is_arborescence cache ~net ~tree:t);
  Alcotest.(check (float 1e-9)) "embedded cost 4" 4. (G.Tree.cost g t)

let test_pfa_folds_shared_hub () =
  let g, net, m = shared_hub () in
  let cache = cache_of g in
  let steiner = C.Pfa.steiner_nodes cache ~net in
  Alcotest.(check (list int)) "merge point is hub" [ m ] steiner;
  let t = C.Pfa.solve cache ~net in
  Alcotest.(check (float 1e-9)) "folded cost 3" 3. (G.Tree.cost g t);
  Alcotest.(check bool) "arborescence" true (C.Eval.is_arborescence cache ~net ~tree:t)

let test_idom_folds_shared_hub () =
  let g, net, m = shared_hub () in
  let cache = cache_of g in
  let s = C.Idom.steiner_nodes cache ~net in
  Alcotest.(check (list int)) "steiner = hub" [ m ] s;
  let t = C.Idom.solve cache ~net in
  Alcotest.(check (float 1e-9)) "folded cost 3" 3. (G.Tree.cost g t);
  let trace = C.Idom.distance_graph_cost_trace cache ~net in
  Alcotest.(check (list (float 1e-9))) "trace 4 -> 3" [ 4.; 3. ] trace

let test_idom_candidate_restriction () =
  let g, net, m = shared_hub () in
  let cache = cache_of g in
  let t = C.Idom.solve ~candidates:[] cache ~net in
  Alcotest.(check (float 1e-9)) "no candidates -> DOM" 4. (G.Tree.cost g t);
  let t' = C.Idom.solve ~candidates:[ m ] cache ~net in
  Alcotest.(check (float 1e-9)) "hub suffices" 3. (G.Tree.cost g t')

let test_arborescence_single_sink () =
  let g, _, _ = shared_hub () in
  let cache = cache_of g in
  let net = C.Net.make ~source:0 ~sinks:[ 1 ] in
  List.iter
    (fun alg ->
      let t = alg.C.Routing_alg.solve cache ~net in
      Alcotest.(check (float 1e-9)) (alg.C.Routing_alg.name ^ " 2-pin = shortest path") 2.
        (G.Tree.cost g t))
    C.Routing_alg.arborescence_algs

let test_unroutable_arborescence () =
  let g = G.Wgraph.create 3 in
  ignore (G.Wgraph.add_edge g 0 1 1.);
  let g = G.Gstate.of_builder g in
  let cache = cache_of g in
  let net = C.Net.make ~source:0 ~sinks:[ 2 ] in
  List.iter
    (fun alg ->
      match alg.C.Routing_alg.solve cache ~net with
      | exception C.Routing_err.Unroutable _ -> ()
      | _ -> Alcotest.fail (alg.C.Routing_alg.name ^ " should fail"))
    C.Routing_alg.arborescence_algs

(* Every algorithm yields a valid spanning tree; arborescence algorithms
   additionally preserve every sink's graph distance (the GSA property). *)
let prop_all_algorithms_valid =
  QCheck.Test.make ~name:"all 8 algorithms: valid trees; GSA property holds" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let cache = cache_of g in
      List.for_all
        (fun alg ->
          let t = alg.C.Routing_alg.solve cache ~net in
          let valid = C.Eval.check cache ~net ~tree:t = Ok () in
          let arb_ok =
            match alg.C.Routing_alg.kind with
            | C.Routing_alg.Steiner -> true
            | C.Routing_alg.Arborescence -> C.Eval.is_arborescence cache ~net ~tree:t
          in
          valid && arb_ok)
        C.Routing_alg.all)

(* Targeted (partial, resumable) distance queries must not change any
   construction: a targeted cache and a full-settle cache yield the exact
   same tree for every algorithm, with and without a candidate bound. *)
let prop_targeted_cache_identical_trees =
  QCheck.Test.make ~name:"all 8 algorithms: targeted cache = full cache" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let candidates =
        List.filteri (fun i _ -> i mod 2 = 0) (List.init (G.Gstate.num_nodes g) Fun.id)
      in
      let edges t = List.sort compare t.G.Tree.edges in
      List.for_all
        (fun alg ->
          let solve cache ?candidates () = alg.C.Routing_alg.solve ?candidates cache ~net in
          let t_full = solve (G.Dist_cache.create ~targeted:false g) () in
          let t_targ = solve (G.Dist_cache.create g) () in
          let c_full = solve (G.Dist_cache.create ~targeted:false g) ~candidates () in
          let c_targ = solve (G.Dist_cache.create g) ~candidates () in
          edges t_full = edges t_targ && edges c_full = edges c_targ)
        C.Routing_alg.all)

(* A tight LRU bound forces evictions mid-construction; results must not
   change (evicted sources are just recomputed). *)
let prop_tiny_cache_identical_trees =
  QCheck.Test.make ~name:"capacity-2 cache = unbounded cache" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:20 ~m:50 ~k:4 in
      let edges t = List.sort compare t.G.Tree.edges in
      List.for_all
        (fun alg ->
          let big = alg.C.Routing_alg.solve (G.Dist_cache.create g) ~net in
          let tiny = alg.C.Routing_alg.solve (G.Dist_cache.create ~capacity:2 g) ~net in
          edges big = edges tiny)
        C.Routing_alg.all)

let prop_idom_trace_decreasing =
  QCheck.Test.make ~name:"IDOM distance-graph cost strictly decreases" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let cache = cache_of g in
      let trace = C.Idom.distance_graph_cost_trace cache ~net in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> b < a +. 1e-9 && decreasing rest
        | _ -> true
      in
      decreasing trace)

let prop_steiner_cheaper_or_equal_arborescence_on_avg =
  (* Not a pointwise theorem, but the sum over a batch must respect the
     wirelength-vs-pathlength tradeoff direction: DJKA uses at least as
     much wire as IKMB overall. *)
  QCheck.Test.make ~name:"sum cost(DJKA) >= sum cost(IKMB) over a batch" ~count:1
    QCheck.(int_range 1 1)
    (fun _ ->
      let total_djka = ref 0. and total_ikmb = ref 0. in
      for seed = 0 to 19 do
        let g, net = random_instance seed ~n:30 ~m:70 ~k:5 in
        let cache = cache_of g in
        let terminals = C.Net.terminals net in
        total_djka := !total_djka +. G.Tree.cost g (C.Djka.solve cache ~net);
        total_ikmb := !total_ikmb +. G.Tree.cost g (C.Igmst.ikmb cache ~terminals)
      done;
      !total_djka >= !total_ikmb)

(* ------------------------------------------------------------------ *)
(* Robustness / edge cases                                            *)
(* ------------------------------------------------------------------ *)

let prop_kmb_order_independent =
  QCheck.Test.make ~name:"KMB cost independent of terminal order" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let cache = cache_of g in
      let terminals = C.Net.terminals net in
      let rng = Rng.make (seed + 1) in
      let shuffled = Array.of_list terminals in
      Rng.shuffle rng shuffled;
      let c1 = C.Kmb.cost cache ~terminals in
      let c2 = C.Kmb.cost cache ~terminals:(Array.to_list shuffled) in
      Float.abs (c1 -. c2) < 1e-9)

let test_parallel_edges_use_cheaper () =
  let g = G.Wgraph.create 2 in
  ignore (G.Wgraph.add_edge g 0 1 5.);
  let cheap = G.Wgraph.add_edge g 0 1 1. in
  let g = G.Gstate.of_builder g in
  let cache = cache_of g in
  let t = C.Kmb.solve cache ~terminals:[ 0; 1 ] in
  Alcotest.(check (float 1e-9)) "cheaper parallel edge" 1. (G.Tree.cost g t);
  Alcotest.(check bool) "uses the cheap edge" true (t.G.Tree.edges = [ cheap ])

let test_net_all_sinks_equal_source () =
  let n = C.Net.make ~source:3 ~sinks:[ 3; 3 ] in
  Alcotest.(check (list int)) "degenerate net" [] n.C.Net.sinks;
  let g, _, _ = star_triangle () in
  let cache = cache_of g in
  (* A net with no sinks routes as the empty tree. *)
  let t = C.Djka.solve cache ~net:(C.Net.make ~source:0 ~sinks:[]) in
  Alcotest.(check int) "empty" 0 (List.length t.G.Tree.edges)

let test_exact_same_component_of_disconnected_graph () =
  let g = G.Wgraph.create 5 in
  ignore (G.Wgraph.add_edge g 0 1 1.);
  ignore (G.Wgraph.add_edge g 1 2 1.);
  ignore (G.Wgraph.add_edge g 3 4 1.);
  let g = G.Gstate.of_builder g in
  let t = C.Exact.steiner g ~terminals:[ 0; 2 ] in
  Alcotest.(check (float 1e-9)) "routes within the component" 2. (G.Tree.cost g t)

let test_algorithms_respect_disabled_nodes () =
  (* Disabling the hub forces every algorithm onto direct edges. *)
  let g, net, m = shared_hub () in
  G.Gstate.disable_node g m;
  let cache = cache_of g in
  List.iter
    (fun (alg : C.Routing_alg.t) ->
      let tree = alg.C.Routing_alg.solve cache ~net in
      Alcotest.(check (float 1e-9)) (alg.C.Routing_alg.name ^ " avoids hub") 4.
        (G.Tree.cost g tree))
    C.Routing_alg.all

(* ------------------------------------------------------------------ *)
(* Eval                                                               *)
(* ------------------------------------------------------------------ *)

let test_eval_metrics () =
  let g, net, _ = shared_hub () in
  let cache = cache_of g in
  let t = C.Pfa.solve cache ~net in
  let m = C.Eval.metrics cache ~net ~tree:t in
  Alcotest.(check (float 1e-9)) "cost" 3. m.C.Eval.cost;
  Alcotest.(check (float 1e-9)) "max path" 2. m.C.Eval.max_path;
  Alcotest.(check (float 1e-9)) "opt max path" 2. m.C.Eval.opt_max_path;
  Alcotest.(check bool) "arborescence" true m.C.Eval.arborescence

let test_eval_detects_non_spanning () =
  let g, net, _ = shared_hub () in
  let cache = cache_of g in
  Alcotest.(check bool) "empty tree does not span" true
    (C.Eval.check cache ~net ~tree:G.Tree.empty <> Ok ())

let test_eval_detects_disabled_use () =
  let g, net, _ = shared_hub () in
  let cache = cache_of g in
  let t = C.Pfa.solve cache ~net in
  List.iter (fun e -> G.Gstate.disable_edge g e) t.G.Tree.edges;
  Alcotest.(check bool) "disabled edges rejected" true
    (C.Eval.check cache ~net ~tree:t = Error "tree uses disabled resources")

(* ------------------------------------------------------------------ *)
(* Routing_alg registry                                               *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  Alcotest.(check int) "eight algorithms" 8 (List.length C.Routing_alg.all);
  Alcotest.(check (list string)) "paper order"
    [ "KMB"; "ZEL"; "IKMB"; "IZEL"; "DJKA"; "DOM"; "PFA"; "IDOM" ]
    (List.map (fun a -> a.C.Routing_alg.name) C.Routing_alg.all);
  Alcotest.(check bool) "lookup case-insensitive" true
    (match C.Routing_alg.by_name "ikmb" with Some a -> a.C.Routing_alg.name = "IKMB" | None -> false);
  Alcotest.(check bool) "unknown" true (C.Routing_alg.by_name "nope" = None);
  Alcotest.(check int) "4 steiner" 4 (List.length C.Routing_alg.steiner_algs);
  Alcotest.(check int) "4 arborescence" 4 (List.length C.Routing_alg.arborescence_algs)

let () =
  Alcotest.run "fr_core"
    [
      ( "net",
        [
          Alcotest.test_case "make" `Quick test_net_make;
          Alcotest.test_case "rejects" `Quick test_net_rejects;
        ] );
      ( "kmb",
        [
          Alcotest.test_case "2-pin shortest path" `Quick test_kmb_two_pins_is_shortest_path;
          Alcotest.test_case "star-triangle suboptimal" `Quick test_kmb_star_triangle;
          Alcotest.test_case "single terminal" `Quick test_kmb_single_terminal;
          Alcotest.test_case "unroutable" `Quick test_kmb_unroutable;
        ] );
      ( "zel",
        [
          Alcotest.test_case "star-triangle optimal" `Quick test_zel_star_triangle;
          Alcotest.test_case "memo reuse" `Quick test_zel_memo_reuse;
          Alcotest.test_case "small nets = KMB" `Quick test_zel_small_nets_fall_back_to_kmb;
        ] );
      ( "igmst",
        [
          Alcotest.test_case "IKMB improves (Fig 6)" `Quick test_ikmb_improves_star_triangle;
          Alcotest.test_case "IZEL optimal" `Quick test_izel_star_triangle;
          Alcotest.test_case "candidate restriction" `Quick test_igmst_candidate_restriction;
          QCheck_alcotest.to_alcotest prop_ikmb_never_worse_than_kmb;
          QCheck_alcotest.to_alcotest prop_izel_never_worse_than_zel;
        ] );
      ( "exact",
        [
          Alcotest.test_case "star-triangle" `Quick test_exact_star_triangle;
          Alcotest.test_case "2-pin" `Quick test_exact_two_pins;
          Alcotest.test_case "terminal guard" `Quick test_exact_guard;
          QCheck_alcotest.to_alcotest prop_exact_lower_bounds_heuristics;
          QCheck_alcotest.to_alcotest prop_exact_spans_and_is_tree;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "dominates" `Quick test_dominance_basics;
          Alcotest.test_case "max_dom" `Quick test_max_dom;
          Alcotest.test_case "nearest_dominated" `Quick test_nearest_dominated;
        ] );
      ( "arborescence",
        [
          Alcotest.test_case "DJKA valid" `Quick test_djka_valid;
          Alcotest.test_case "DOM no folding" `Quick test_dom_pays_without_folding;
          Alcotest.test_case "PFA folds (Fig 9)" `Quick test_pfa_folds_shared_hub;
          Alcotest.test_case "IDOM folds (Fig 13)" `Quick test_idom_folds_shared_hub;
          Alcotest.test_case "IDOM candidate restriction" `Quick test_idom_candidate_restriction;
          Alcotest.test_case "2-pin nets" `Quick test_arborescence_single_sink;
          Alcotest.test_case "unroutable" `Quick test_unroutable_arborescence;
          QCheck_alcotest.to_alcotest prop_all_algorithms_valid;
          QCheck_alcotest.to_alcotest prop_targeted_cache_identical_trees;
          QCheck_alcotest.to_alcotest prop_tiny_cache_identical_trees;
          QCheck_alcotest.to_alcotest prop_idom_trace_decreasing;
          QCheck_alcotest.to_alcotest prop_steiner_cheaper_or_equal_arborescence_on_avg;
        ] );
      ( "robustness",
        [
          QCheck_alcotest.to_alcotest prop_kmb_order_independent;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges_use_cheaper;
          Alcotest.test_case "degenerate nets" `Quick test_net_all_sinks_equal_source;
          Alcotest.test_case "exact within component" `Quick
            test_exact_same_component_of_disconnected_graph;
          Alcotest.test_case "disabled nodes respected" `Quick
            test_algorithms_respect_disabled_nodes;
        ] );
      ( "eval",
        [
          Alcotest.test_case "metrics" `Quick test_eval_metrics;
          Alcotest.test_case "non-spanning" `Quick test_eval_detects_non_spanning;
          Alcotest.test_case "disabled resources" `Quick test_eval_detects_disabled_use;
        ] );
      ("registry", [ Alcotest.test_case "all/by_name" `Quick test_registry ]);
    ]
