(* Unit, integration, and property tests for the fr_graph substrate. *)

module G = Fr_graph
module Rng = Fr_util.Rng

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

(* A small diamond: 0-1 (1.), 0-2 (2.), 1-3 (2.), 2-3 (1.), 1-2 (0.5) *)
let diamond () =
  let b = G.Wgraph.create 4 in
  let e01 = G.Wgraph.add_edge b 0 1 1. in
  let e02 = G.Wgraph.add_edge b 0 2 2. in
  let e13 = G.Wgraph.add_edge b 1 3 2. in
  let e23 = G.Wgraph.add_edge b 2 3 1. in
  let e12 = G.Wgraph.add_edge b 1 2 0.5 in
  (G.Gstate.of_builder b, e01, e02, e13, e23, e12)

(* Build-and-freeze in one go: [graph n [(u, v, w); ...]]. *)
let graph n edges =
  let b = G.Wgraph.create n in
  List.iter (fun (u, v, w) -> ignore (G.Wgraph.add_edge b u v w)) edges;
  G.Gstate.of_builder b

(* Floyd–Warshall reference for cross-checking Dijkstra. *)
let floyd_warshall g =
  let n = G.Gstate.num_nodes g in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  G.Gstate.iter_edges g (fun _ u v w ->
      if w < d.(u).(v) then begin
        d.(u).(v) <- w;
        d.(v).(u) <- w
      end);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) +. d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) +. d.(k).(j)
      done
    done
  done;
  d

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = G.Heap.create () in
  List.iter (fun (p, x) -> G.Heap.push h p x) [ (3., 3); (1., 1); (2., 2); (0.5, 0) ];
  let order = ref [] in
  let rec drain () =
    match G.Heap.pop_min h with
    | None -> ()
    | Some (_, x) ->
        order := x :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 0; 1; 2; 3 ] (List.rev !order)

let test_heap_empty () =
  let h = G.Heap.create () in
  Alcotest.(check bool) "empty" true (G.Heap.is_empty h);
  Alcotest.(check bool) "pop empty" true (G.Heap.pop_min h = None);
  G.Heap.push h 1. 1;
  Alcotest.(check bool) "peek" true (G.Heap.peek_min h = Some (1., 1));
  Alcotest.(check int) "size" 1 (G.Heap.size h);
  G.Heap.clear h;
  Alcotest.(check bool) "cleared" true (G.Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun ps ->
      let h = G.Heap.create () in
      List.iteri (fun i p -> G.Heap.push h p i) ps;
      let rec drain acc =
        match G.Heap.pop_min h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare ps)

(* Interleaved pushes and pops tracked against a sorted-list model: every
   pop must return the model's minimum, in any operation order. *)
let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap interleaved push/pop matches model" ~count:200
    QCheck.(list (pair bool (float_bound_inclusive 1000.)))
    (fun ops ->
      let h = G.Heap.create ~capacity:2 () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i (is_pop, p) ->
          if is_pop then
            match (G.Heap.pop_min h, !model) with
            | None, [] -> ()
            | Some (got, _), m :: rest when got = m -> model := rest
            | _ -> ok := false
          else begin
            G.Heap.push h p i;
            model := List.sort compare (p :: !model)
          end)
        ops;
      !ok && G.Heap.size h = List.length !model)

let test_heap_growth () =
  (* Push far past the initial capacity; order and payloads must survive
     every reallocation. *)
  let h = G.Heap.create ~capacity:2 () in
  for i = 99 downto 0 do
    G.Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "size after growth" 100 (G.Heap.size h);
  for i = 0 to 99 do
    match G.Heap.pop_min h with
    | Some (p, x) when p = float_of_int i && x = i -> ()
    | _ -> Alcotest.fail (Printf.sprintf "wrong pop %d after growth" i)
  done;
  Alcotest.(check bool) "drained" true (G.Heap.is_empty h)

let test_heap_clear_retains_capacity () =
  let h = G.Heap.create ~capacity:2 () in
  for i = 0 to 99 do
    G.Heap.push h (float_of_int i) i
  done;
  let cap = G.Heap.capacity h in
  Alcotest.(check bool) "grew" true (cap >= 100);
  G.Heap.clear h;
  Alcotest.(check int) "capacity retained" cap (G.Heap.capacity h);
  Alcotest.(check bool) "emptied" true (G.Heap.is_empty h);
  (* Refilling to the same size must not reallocate. *)
  for i = 0 to 99 do
    G.Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "no realloc on refill" cap (G.Heap.capacity h);
  Alcotest.(check bool) "still ordered" true (G.Heap.pop_min h = Some (0., 0))

(* ------------------------------------------------------------------ *)
(* Pq (pluggable frontier: binary heap vs bucket queue)               *)
(* ------------------------------------------------------------------ *)

let test_pq_order () =
  (* Both implementations: strict (prio, tie, seq) pop order. *)
  List.iter
    (fun impl ->
      let q = G.Pq.create ~delta:0.5 impl in
      G.Pq.push q ~prio:2. ~tie:1. 10;
      G.Pq.push q ~prio:2. ~tie:0.5 11;
      G.Pq.push q ~prio:0.25 ~tie:0. 12;
      G.Pq.push q ~prio:2. ~tie:0.5 13;
      (* 12 first (smallest prio); then prio-2 entries by tie, then seq. *)
      let rec drain acc =
        match G.Pq.pop_min q with None -> List.rev acc | Some (_, x) -> drain (x :: acc)
      in
      Alcotest.(check (list int))
        (G.Pq.impl_name impl ^ " order")
        [ 12; 11; 13; 10 ] (drain []))
    [ G.Pq.Binary; G.Pq.Bucket ]

let test_pq_bucket_rejects () =
  let q = G.Pq.create G.Pq.Bucket in
  let bad = Invalid_argument "Pq.push: bucket queue requires a finite non-negative priority" in
  Alcotest.check_raises "negative" bad (fun () -> G.Pq.push q ~prio:(-1.) ~tie:0. 0);
  Alcotest.check_raises "infinite" bad (fun () -> G.Pq.push q ~prio:infinity ~tie:0. 0);
  Alcotest.check_raises "nan" bad (fun () -> G.Pq.push q ~prio:nan ~tie:0. 0);
  Alcotest.check_raises "bad delta" (Invalid_argument "Pq.create: delta must be positive")
    (fun () -> ignore (G.Pq.create ~delta:0. G.Pq.Bucket))

let test_pq_bucket_window_growth () =
  (* Scrambled priorities spanning far more buckets than the initial ring:
     forces the re-indexing growth path; order must survive. *)
  let q = G.Pq.create ~capacity:4 ~delta:0.5 G.Pq.Bucket in
  for i = 0 to 63 do
    G.Pq.push q ~prio:(float_of_int (97 * i mod 64)) ~tie:0. i
  done;
  let last = ref (-1.) in
  let ok = ref true in
  let count = ref 0 in
  let rec drain () =
    match G.Pq.pop_min q with
    | None -> ()
    | Some (p, _) ->
        if p < !last then ok := false;
        last := p;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "nondecreasing through growth" true !ok;
  Alcotest.(check int) "all popped" 64 !count

let test_pq_clear_reuse () =
  List.iter
    (fun impl ->
      let q = G.Pq.create ~capacity:2 ~delta:0.5 impl in
      for i = 0 to 99 do
        G.Pq.push q ~prio:(float_of_int i) ~tie:0. i
      done;
      G.Pq.clear q;
      Alcotest.(check bool) (G.Pq.impl_name impl ^ " empty") true (G.Pq.is_empty q);
      Alcotest.(check int) (G.Pq.impl_name impl ^ " size 0") 0 (G.Pq.size q);
      (* Reuse in a disjoint priority range: a retained ring must re-home
         its live window, a retained heap just refills. *)
      G.Pq.push q ~prio:1000.5 ~tie:0. 7;
      G.Pq.push q ~prio:999. ~tie:0. 8;
      Alcotest.(check bool)
        (G.Pq.impl_name impl ^ " min after reuse")
        true
        (G.Pq.pop_min q = Some (999., 8));
      Alcotest.(check bool) (G.Pq.impl_name impl ^ " next") true (G.Pq.pop_min q = Some (1000.5, 7)))
    [ G.Pq.Binary; G.Pq.Bucket ]

(* The two implementations must be observationally identical: same pushes,
   same pops, entry for entry — including duplicate payloads and full
   (prio, tie) collisions resolved by push order.  Workloads are monotone
   (never push below the last popped priority), like Dijkstra under a
   consistent heuristic; half the priorities are quantized to the bucket
   width so exact ties actually occur. *)
let prop_pq_equivalence =
  QCheck.Test.make ~name:"bucket/binary identical pop sequences" ~count:150
    QCheck.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, di) ->
      let rng = Rng.make seed in
      let delta = [| 0.1; 0.25; 0.5; 2.0 |].(di) in
      let bu = G.Pq.create ~capacity:2 ~delta G.Pq.Bucket in
      let bi = G.Pq.create ~capacity:2 G.Pq.Binary in
      let floor = ref 0. in
      for i = 0 to 299 do
        if Rng.int rng 3 < 2 || G.Pq.is_empty bi then begin
          let p = !floor +. Rng.float rng 10. in
          let prio =
            if Rng.bool rng then float_of_int (int_of_float (p /. delta)) *. delta else p
          in
          let tie = float_of_int (Rng.int rng 3) in
          G.Pq.push bu ~prio ~tie (i mod 5);
          G.Pq.push bi ~prio ~tie (i mod 5)
        end
        else begin
          let a = G.Pq.pop_min bu and b = G.Pq.pop_min bi in
          if a <> b then QCheck.Test.fail_reportf "pop mismatch at step %d" i;
          match a with Some (p, _) -> floor := p | None -> ()
        end
      done;
      if G.Pq.size bu <> G.Pq.size bi then QCheck.Test.fail_report "size mismatch";
      let rec drain () =
        match (G.Pq.pop_min bu, G.Pq.pop_min bi) with
        | None, None -> ()
        | a, b when a = b -> drain ()
        | _ -> QCheck.Test.fail_report "drain mismatch"
      in
      drain ();
      true)

(* ------------------------------------------------------------------ *)
(* Dsu                                                                *)
(* ------------------------------------------------------------------ *)

let test_dsu () =
  let d = G.Dsu.create 5 in
  Alcotest.(check int) "initial classes" 5 (G.Dsu.count d);
  Alcotest.(check bool) "union 0 1" true (G.Dsu.union d 0 1);
  Alcotest.(check bool) "union again" false (G.Dsu.union d 0 1);
  Alcotest.(check bool) "same" true (G.Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (G.Dsu.same d 0 2);
  ignore (G.Dsu.union d 2 3);
  ignore (G.Dsu.union d 1 3);
  Alcotest.(check bool) "transitively same" true (G.Dsu.same d 0 2);
  Alcotest.(check int) "classes" 2 (G.Dsu.count d)

(* ------------------------------------------------------------------ *)
(* Wgraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_wgraph_basic () =
  let g, e01, _, _, _, _ = diamond () in
  Alcotest.(check int) "nodes" 4 (G.Gstate.num_nodes g);
  Alcotest.(check int) "edges" 5 (G.Gstate.num_edges g);
  Alcotest.(check (float 1e-9)) "weight" 1. (G.Gstate.weight g e01);
  Alcotest.(check bool) "endpoints" true (G.Gstate.endpoints g e01 = (0, 1));
  Alcotest.(check int) "other_end" 1 (G.Gstate.other_end g e01 0);
  Alcotest.(check int) "degree 1" 3 (G.Gstate.degree g 1)

let test_wgraph_rejects () =
  let g = G.Wgraph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Wgraph.add_edge: self-loop") (fun () ->
      ignore (G.Wgraph.add_edge g 1 1 1.));
  Alcotest.check_raises "out of range" (Invalid_argument "Wgraph.add_edge: node out of range")
    (fun () -> ignore (G.Wgraph.add_edge g 0 7 1.));
  Alcotest.check_raises "negative weight" (Invalid_argument "Wgraph.add_edge: negative weight")
    (fun () -> ignore (G.Wgraph.add_edge g 0 1 (-1.)))

let test_wgraph_disable () =
  let g, e01, e02, _, _, _ = diamond () in
  G.Gstate.disable_edge g e01;
  Alcotest.(check bool) "disabled" false (G.Gstate.edge_enabled g e01);
  Alcotest.(check int) "degree drops" 1 (G.Gstate.fold_adj g 0 (fun d _ _ _ -> d + 1) 0);
  G.Gstate.enable_edge g e01;
  Alcotest.(check int) "degree restored" 2 (G.Gstate.fold_adj g 0 (fun d _ _ _ -> d + 1) 0);
  G.Gstate.disable_node g 2;
  Alcotest.(check bool) "edge to disabled node hidden" true
    (G.Gstate.fold_adj g 0 (fun acc e _ _ -> acc && e <> e02) true);
  G.Gstate.enable_node g 2;
  Alcotest.(check int) "node restored" 2 (G.Gstate.degree g 0)

let test_wgraph_version_and_weights () =
  let g, e01, _, _, _, _ = diamond () in
  let v0 = G.Gstate.version g in
  G.Gstate.add_weight g e01 0.5;
  Alcotest.(check (float 1e-9)) "incremented" 1.5 (G.Gstate.weight g e01);
  Alcotest.(check bool) "version bumped" true (G.Gstate.version g > v0)

let test_wgraph_find_edge () =
  let g, _, _, _, _, e12 = diamond () in
  Alcotest.(check bool) "find parallel-min" true (G.Gstate.find_edge g 1 2 = Some e12);
  Alcotest.(check bool) "absent" true (G.Gstate.find_edge g 0 3 = None);
  (* parallel edge with smaller weight wins (fresh graph: edges are frozen) *)
  let g' = graph 3 [ (0, 1, 1.); (1, 2, 0.5); (1, 2, 0.25) ] in
  Alcotest.(check bool) "prefers lighter parallel" true (G.Gstate.find_edge g' 1 2 = Some 2)

let test_wgraph_copy () =
  let g, e01, _, _, _, _ = diamond () in
  G.Gstate.disable_edge g e01;
  G.Gstate.disable_node g 3;
  let g' = G.Gstate.copy g in
  Alcotest.(check bool) "copied disable state" false (G.Gstate.edge_enabled g' e01);
  Alcotest.(check bool) "copied node state" false (G.Gstate.node_enabled g' 3);
  G.Gstate.enable_edge g' e01;
  Alcotest.(check bool) "independent" false (G.Gstate.edge_enabled g e01)

let test_mean_edge_weight () =
  let b = G.Wgraph.create 3 in
  ignore (G.Wgraph.add_edge b 0 1 1.);
  let e = G.Wgraph.add_edge b 1 2 3. in
  let g = G.Gstate.of_builder b in
  Alcotest.(check (float 1e-9)) "mean" 2. (G.Gstate.mean_edge_weight g);
  G.Gstate.disable_edge g e;
  Alcotest.(check (float 1e-9)) "mean after disable" 1. (G.Gstate.mean_edge_weight g)

(* ------------------------------------------------------------------ *)
(* Dijkstra                                                           *)
(* ------------------------------------------------------------------ *)

let test_dijkstra_diamond () =
  let g, _, _, _, _, _ = diamond () in
  let r = G.Dijkstra.run g ~src:0 in
  Alcotest.(check (float 1e-9)) "d0" 0. (G.Dijkstra.dist r 0);
  Alcotest.(check (float 1e-9)) "d1" 1. (G.Dijkstra.dist r 1);
  Alcotest.(check (float 1e-9)) "d2" 1.5 (G.Dijkstra.dist r 2);
  Alcotest.(check (float 1e-9)) "d3" 2.5 (G.Dijkstra.dist r 3);
  let path = G.Dijkstra.path_nodes r 3 in
  Alcotest.(check (list int)) "path via 1,2" [ 0; 1; 2; 3 ] path

let test_dijkstra_disabled_detour () =
  let g, _, _, _, _, e12 = diamond () in
  G.Gstate.disable_edge g e12;
  let r = G.Dijkstra.run g ~src:0 in
  Alcotest.(check (float 1e-9)) "d3 detours" 3. (G.Dijkstra.dist r 3)

let test_dijkstra_unreachable () =
  let g = graph 3 [ (0, 1, 1.) ] in
  let r = G.Dijkstra.run g ~src:0 in
  Alcotest.(check bool) "unreachable" false (G.Dijkstra.reachable r 2);
  Alcotest.check_raises "path to unreachable"
    (Invalid_argument "Dijkstra.path_edges: unreachable node") (fun () ->
      ignore (G.Dijkstra.path_edges r 2))

let test_dijkstra_restrict () =
  let g, _, _, _, _, _ = diamond () in
  (* Forbid node 1: route to 3 must go 0-2-3. *)
  let r = G.Dijkstra.run ~restrict:(fun v -> v <> 1) g ~src:0 in
  Alcotest.(check (float 1e-9)) "restricted d3" 3. (G.Dijkstra.dist r 3);
  Alcotest.(check (list int)) "restricted path" [ 0; 2; 3 ] (G.Dijkstra.path_nodes r 3)

let test_dijkstra_edge_ok () =
  let g, e01, _, _, _, _ = diamond () in
  let r = G.Dijkstra.run ~edge_ok:(fun e -> e <> e01) g ~src:0 in
  Alcotest.(check (float 1e-9)) "without 0-1 edge" 2. (G.Dijkstra.dist r 2)

let test_dijkstra_spt_edges () =
  let g, _, _, _, _, _ = diamond () in
  let r = G.Dijkstra.run g ~src:0 in
  Alcotest.(check int) "spt has n-1 edges" 3 (List.length (G.Dijkstra.spt_edges r))

let prop_dijkstra_matches_floyd_warshall =
  QCheck.Test.make ~name:"Dijkstra = Floyd-Warshall on random graphs" ~count:50
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let g = G.Random_graph.connected rng ~n ~m:(2 * n) ~wmin:0.5 ~wmax:4. in
      let fw = floyd_warshall g in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = G.Dijkstra.run g ~src:s in
        for v = 0 to n - 1 do
          if Float.abs (G.Dijkstra.dist r v -. fw.(s).(v)) > 1e-6 then ok := false
        done
      done;
      !ok)

let prop_dijkstra_path_cost_consistent =
  QCheck.Test.make ~name:"path edge weights sum to dist" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.make seed in
      let g = G.Random_graph.connected rng ~n:30 ~m:80 ~wmin:0.1 ~wmax:5. in
      let r = G.Dijkstra.run g ~src:0 in
      let ok = ref true in
      for v = 0 to 29 do
        let edges = G.Dijkstra.path_edges r v in
        let total = List.fold_left (fun acc e -> acc +. G.Gstate.weight g e) 0. edges in
        if Float.abs (total -. G.Dijkstra.dist r v) > 1e-6 then ok := false
      done;
      !ok)

(* Goal-direction with an admissible + consistent heuristic must change
   only the amount of work, never the answer.  The landmark heuristic
   [h(v) = scale * dist(v, t)] with scale in [0, 1] is exact-to-scaled and
   therefore both admissible and consistent; canonical parent selection
   makes even the shortest-path tree bit-identical to the plain run. *)
let prop_astar_matches_plain =
  QCheck.Test.make ~name:"goal-directed = plain (dist, parents, settled work)" ~count:60
    QCheck.(pair (int_range 3 30) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let g = G.Random_graph.connected rng ~n ~m:(3 * n) ~wmin:0.2 ~wmax:5. in
      let t = n - 1 in
      let back = G.Dijkstra.run g ~src:t in
      let scale = [| 1.0; 0.6; 0.0 |].(seed mod 3) in
      let h = G.Dijkstra.heuristic (fun v -> scale *. G.Dijkstra.dist back v) in
      let plain = G.Dijkstra.run ~targets:[ t ] g ~src:0 in
      let astar =
        G.Dijkstra.run ~targets:[ t ] ~future_cost:h ~heap:G.Pq.Bucket ~delta:0.25 g ~src:0
      in
      if G.Dijkstra.settled_count astar > G.Dijkstra.settled_count plain then
        QCheck.Test.fail_report "goal-direction settled more nodes than plain";
      if not (G.Dijkstra.future_cost_evals astar > 0) then
        QCheck.Test.fail_report "no heuristic evaluations recorded";
      if G.Dijkstra.future_cost_evals plain <> 0 then
        QCheck.Test.fail_report "plain run evaluated a heuristic";
      (* Resuming a goal-directed frontier to completion must land on the
         exact state a plain full run produces. *)
      G.Dijkstra.extend_all plain;
      G.Dijkstra.extend_all astar;
      for v = 0 to n - 1 do
        if G.Dijkstra.dist plain v <> G.Dijkstra.dist astar v then
          QCheck.Test.fail_reportf "dist mismatch at %d" v;
        if plain.G.Dijkstra.parent_edge.(v) <> astar.G.Dijkstra.parent_edge.(v) then
          QCheck.Test.fail_reportf "parent mismatch at %d" v
      done;
      true)

(* ------------------------------------------------------------------ *)
(* Mst                                                                *)
(* ------------------------------------------------------------------ *)

let test_prim_dense_triangle () =
  let w = [| [| 0.; 1.; 3. |]; [| 1.; 0.; 1.5 |]; [| 3.; 1.5; 0. |] |] in
  let edges, cost = G.Mst.prim_dense ~n:3 ~weight:(fun i j -> w.(i).(j)) in
  Alcotest.(check (float 1e-9)) "cost" 2.5 cost;
  Alcotest.(check int) "edge count" 2 (List.length edges)

let test_prim_dense_trivial () =
  Alcotest.(check bool) "n=0" true (G.Mst.prim_dense ~n:0 ~weight:(fun _ _ -> 1.) = ([], 0.));
  Alcotest.(check bool) "n=1" true (G.Mst.prim_dense ~n:1 ~weight:(fun _ _ -> 1.) = ([], 0.))

let test_prim_dense_disconnected () =
  let weight i j = if (i < 2) = (j < 2) then 1. else infinity in
  let _, cost = G.Mst.prim_dense ~n:4 ~weight in
  Alcotest.(check (float 1e-9)) "disconnected cost" infinity cost

let test_kruskal_basic () =
  let edges = [ (10, 20, 1., 0); (20, 30, 2., 1); (10, 30, 2.5, 2) ] in
  let chosen, cost = G.Mst.kruskal ~nodes:[ 10; 20; 30 ] ~edges in
  Alcotest.(check (float 1e-9)) "cost" 3. cost;
  Alcotest.(check int) "chosen" 2 (List.length chosen)

let test_kruskal_disconnected () =
  let _, cost = G.Mst.kruskal ~nodes:[ 1; 2; 3 ] ~edges:[ (1, 2, 1., 0) ] in
  Alcotest.(check (float 1e-9)) "forest cost" infinity cost

let prop_prim_matches_kruskal =
  QCheck.Test.make ~name:"Prim = Kruskal cost on random dense graphs" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.make seed in
      let n = 2 + Rng.int rng 12 in
      let w = Array.make_matrix n n 0. in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let x = 0.1 +. Rng.float rng 9.9 in
          w.(i).(j) <- x;
          w.(j).(i) <- x
        done
      done;
      let _, pc = G.Mst.prim_dense ~n ~weight:(fun i j -> w.(i).(j)) in
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          edges := (i, j, w.(i).(j), List.length !edges) :: !edges
        done
      done;
      let _, kc = G.Mst.kruskal ~nodes:(List.init n (fun i -> i)) ~edges:!edges in
      Float.abs (pc -. kc) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Tree                                                               *)
(* ------------------------------------------------------------------ *)

let test_tree_metrics () =
  let g, e01, _, _, e23, e12 = diamond () in
  let t = G.Tree.of_edges [ e01; e12; e23 ] in
  Alcotest.(check (float 1e-9)) "cost" 2.5 (G.Tree.cost g t);
  Alcotest.(check bool) "is tree" true (G.Tree.is_tree g t);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (G.Tree.nodes g t);
  Alcotest.(check bool) "spans" true (G.Tree.spans g t [ 0; 3 ]);
  Alcotest.(check (float 1e-9)) "path length" 2.5 (G.Tree.path_length g t ~src:0 ~dst:3);
  Alcotest.(check (float 1e-9)) "max path" 2.5 (G.Tree.max_path_length g t ~src:0 ~sinks:[ 1; 3 ])

let test_tree_cycle_detection () =
  let g, e01, e02, _, _, e12 = diamond () in
  let t = G.Tree.of_edges [ e01; e02; e12 ] in
  Alcotest.(check bool) "cycle is not a tree" false (G.Tree.is_tree g t)

let test_tree_disconnected () =
  let g = graph 4 [ (0, 1, 1.); (2, 3, 1.) ] in
  let a = 0 and b = 1 in
  let t = G.Tree.of_edges [ a; b ] in
  Alcotest.(check bool) "forest is not a tree" false (G.Tree.is_tree g t)

let test_tree_prune () =
  let g, e01, _, e13, e23, e12 = diamond () in
  (* Path 0-1, 1-2, 2-3 plus spur 1-3: not a tree; use tree 0-1,1-2,2-3. *)
  ignore e13;
  let t = G.Tree.of_edges [ e01; e12; e23 ] in
  let pruned = G.Tree.prune g t ~keep:[ 0; 2 ] in
  (* 3 is a leaf not kept: e23 goes; then 2 is kept. *)
  Alcotest.(check int) "pruned size" 2 (List.length pruned.G.Tree.edges);
  Alcotest.(check bool) "still spans" true (G.Tree.spans g pruned [ 0; 2 ])

let test_tree_prune_cascade () =
  (* A path 0-1-2-3 keeping only 0: everything prunes away. *)
  let g = graph 4 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.) ] in
  let t = G.Tree.of_edges [ 0; 1; 2 ] in
  let pruned = G.Tree.prune g t ~keep:[ 0 ] in
  Alcotest.(check int) "fully pruned" 0 (List.length pruned.G.Tree.edges)

let test_tree_empty () =
  let g = graph 2 [] in
  Alcotest.(check bool) "empty is tree" true (G.Tree.is_tree g G.Tree.empty);
  Alcotest.(check bool) "single terminal spanned" true (G.Tree.spans g G.Tree.empty [ 1 ]);
  Alcotest.(check (float 1e-9)) "empty cost" 0. (G.Tree.cost g G.Tree.empty)

(* ------------------------------------------------------------------ *)
(* Grid                                                               *)
(* ------------------------------------------------------------------ *)

let test_grid_structure () =
  let gr = G.Grid.create ~width:4 ~height:3 () in
  Alcotest.(check int) "nodes" 12 (G.Gstate.num_nodes gr.G.Grid.graph);
  (* edges: 3*3 horizontal rows? horizontal: (4-1)*3 = 9, vertical: 4*2 = 8 *)
  Alcotest.(check int) "edges" 17 (G.Gstate.num_edges gr.G.Grid.graph);
  let n = G.Grid.node gr ~x:2 ~y:1 in
  Alcotest.(check bool) "coords roundtrip" true (G.Grid.coords gr n = (2, 1));
  Alcotest.(check int) "manhattan" 3
    (G.Grid.manhattan gr (G.Grid.node gr ~x:0 ~y:0) (G.Grid.node gr ~x:2 ~y:1))

let test_grid_distances_rectilinear () =
  (* Fig 3a: before any routing, graph distance = rectilinear distance. *)
  let gr = G.Grid.create ~width:6 ~height:6 () in
  let src = G.Grid.node gr ~x:1 ~y:2 in
  let r = G.Dijkstra.run gr.G.Grid.graph ~src in
  let ok = ref true in
  for v = 0 to 35 do
    if Float.abs (G.Dijkstra.dist r v -. float_of_int (G.Grid.manhattan gr src v)) > 1e-9 then
      ok := false
  done;
  Alcotest.(check bool) "all distances rectilinear" true !ok

let test_grid_edge_lookup () =
  let gr = G.Grid.create ~width:3 ~height:3 () in
  let e = G.Grid.horizontal_edge gr ~x:0 ~y:0 in
  let u, v = G.Gstate.endpoints gr.G.Grid.graph e in
  Alcotest.(check bool) "horizontal endpoints" true
    ((u, v) = (G.Grid.node gr ~x:0 ~y:0, G.Grid.node gr ~x:1 ~y:0));
  let e' = G.Grid.vertical_edge gr ~x:2 ~y:1 in
  let u', v' = G.Gstate.endpoints gr.G.Grid.graph e' in
  Alcotest.(check bool) "vertical endpoints" true
    ((u', v') = (G.Grid.node gr ~x:2 ~y:1, G.Grid.node gr ~x:2 ~y:2))

let test_grid_bad_args () =
  Alcotest.check_raises "empty grid" (Invalid_argument "Grid.create: empty grid") (fun () ->
      ignore (G.Grid.create ~width:0 ~height:3 ()));
  let gr = G.Grid.create ~width:2 ~height:2 () in
  Alcotest.check_raises "node out of range" (Invalid_argument "Grid.node: out of range")
    (fun () -> ignore (G.Grid.node gr ~x:2 ~y:0))

(* ------------------------------------------------------------------ *)
(* Random_graph                                                       *)
(* ------------------------------------------------------------------ *)

let test_random_graph_connected () =
  let rng = Rng.make 11 in
  let g = G.Random_graph.connected rng ~n:40 ~m:100 ~wmin:1. ~wmax:2. in
  let r = G.Dijkstra.run g ~src:0 in
  let all_reachable = ref true in
  for v = 0 to 39 do
    if not (G.Dijkstra.reachable r v) then all_reachable := false
  done;
  Alcotest.(check bool) "connected" true !all_reachable;
  Alcotest.(check bool) "edge count ~m" true (G.Gstate.num_edges g >= 39)

let test_random_net () =
  let rng = Rng.make 12 in
  let g = G.Random_graph.connected rng ~n:20 ~m:40 ~wmin:1. ~wmax:1. in
  let net = G.Random_graph.random_net rng g ~k:5 in
  Alcotest.(check int) "net size" 5 (List.length net);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare net))

(* ------------------------------------------------------------------ *)
(* Dist_cache                                                         *)
(* ------------------------------------------------------------------ *)

let test_dist_cache_memoizes () =
  let g, _, _, _, _, _ = diamond () in
  let c = G.Dist_cache.create g in
  ignore (G.Dist_cache.dist c ~src:0 ~dst:3);
  ignore (G.Dist_cache.dist c ~src:0 ~dst:1);
  Alcotest.(check int) "one run" 1 (G.Dist_cache.runs c);
  ignore (G.Dist_cache.dist c ~src:1 ~dst:3);
  Alcotest.(check int) "two runs" 2 (G.Dist_cache.runs c)

let test_dist_cache_invalidation () =
  let g, e01, _, _, _, _ = diamond () in
  let c = G.Dist_cache.create g in
  let d0 = G.Dist_cache.dist c ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "before" 1. d0;
  G.Gstate.set_weight g e01 10.;
  let d1 = G.Dist_cache.dist c ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "after (via 2)" 2.5 d1

let test_dist_cache_sym () =
  let g, _, _, _, _, _ = diamond () in
  let c = G.Dist_cache.create g in
  ignore (G.Dist_cache.result c ~src:3);
  Alcotest.(check bool) "cached side" true (G.Dist_cache.cached c 3);
  let d = G.Dist_cache.dist_sym c 0 3 in
  Alcotest.(check (float 1e-9)) "sym dist" 2.5 d;
  (* Served from node 3's result: still a single run. *)
  Alcotest.(check int) "no extra run" 1 (G.Dist_cache.runs c);
  let p = G.Dist_cache.path_edges_sym c 0 3 in
  let total = List.fold_left (fun acc e -> acc +. G.Gstate.weight g e) 0. p in
  Alcotest.(check (float 1e-9)) "sym path cost" 2.5 total

(* Targeted runs and resumed partial runs must agree with a full run
   everywhere: settled prefixes of Dijkstra are final. *)
let prop_targeted_equals_full =
  QCheck.Test.make ~name:"targeted/resumed Dijkstra = full run" ~count:60
    QCheck.(pair (int_range 3 30) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let g = G.Random_graph.connected rng ~n ~m:(3 * n) ~wmin:0.2 ~wmax:5. in
      let full = G.Dijkstra.run g ~src:0 in
      let some_targets = [ n - 1; n / 2 ] in
      let r = G.Dijkstra.run ~targets:some_targets g ~src:0 in
      List.iter
        (fun t ->
          if not (G.Dijkstra.is_settled r t) then
            QCheck.Test.fail_reportf "target %d not settled" t)
        some_targets;
      if G.Dijkstra.settled_count r > G.Dijkstra.settled_count full then
        QCheck.Test.fail_report "targeted settled more than full";
      (* Resume towards every node, in two steps, then compare everywhere. *)
      G.Dijkstra.extend r ~targets:[ 1; n - 2 ];
      G.Dijkstra.extend_all r;
      for v = 0 to n - 1 do
        if G.Dijkstra.dist full v <> G.Dijkstra.dist r v then
          QCheck.Test.fail_reportf "dist mismatch at %d" v;
        let cost edges = List.fold_left (fun a e -> a +. G.Gstate.weight g e) 0. edges in
        let pf = cost (G.Dijkstra.path_edges full v) and pr = cost (G.Dijkstra.path_edges r v) in
        if Float.abs (pf -. pr) > 1e-9 then QCheck.Test.fail_reportf "path mismatch at %d" v
      done;
      true)

(* On-demand accessors transparently extend a partial result. *)
let test_dijkstra_lazy_extension () =
  let rng = Rng.make 77 in
  let g = G.Random_graph.connected rng ~n:40 ~m:120 ~wmin:0.5 ~wmax:3. in
  let full = G.Dijkstra.run g ~src:0 in
  let r = G.Dijkstra.run ~targets:[ 1 ] g ~src:0 in
  Alcotest.(check bool) "partial" true (G.Dijkstra.settled_count r <= G.Dijkstra.settled_count full);
  (* dist on an unsettled node resumes the search rather than lying. *)
  Alcotest.(check (float 1e-9)) "lazy dist" (G.Dijkstra.dist full 39) (G.Dijkstra.dist r 39);
  Alcotest.(check bool) "now settled" true (G.Dijkstra.is_settled r 39);
  G.Dijkstra.extend_all r;
  Alcotest.(check bool) "complete" true (G.Dijkstra.complete r);
  Alcotest.(check int) "same settled" (G.Dijkstra.settled_count full) (G.Dijkstra.settled_count r)

let test_dijkstra_stale_resume_rejected () =
  let g, e01, _, _, _, _ = diamond () in
  let r = G.Dijkstra.run ~targets:[ 1 ] g ~src:0 in
  G.Gstate.set_weight g e01 10.;
  Alcotest.check_raises "stale resume"
    (Invalid_argument "Dijkstra.extend: graph mutated since the run started") (fun () ->
      G.Dijkstra.extend r ~targets:[ 3 ])

(* LRU eviction and graph mutations must never surface stale distances. *)
let prop_cache_never_stale =
  QCheck.Test.make ~name:"LRU + version bumps never stale" ~count:40
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.make seed in
      let n = 25 in
      let g = G.Random_graph.connected rng ~n ~m:(3 * n) ~wmin:0.5 ~wmax:4. in
      let c = G.Dist_cache.create ~capacity:2 g in
      for step = 0 to 49 do
        (* Occasionally perturb a weight: bumps the version. *)
        if step mod 7 = 3 then begin
          let e = Rng.int rng (G.Gstate.num_edges g) in
          G.Gstate.set_weight g e (0.5 +. Rng.float rng 4.)
        end;
        let src = Rng.int rng n and dst = Rng.int rng n in
        let got = G.Dist_cache.dist c ~src ~dst in
        let want = G.Dijkstra.dist (G.Dijkstra.run g ~src) dst in
        if got <> want then
          QCheck.Test.fail_reportf "stale dist %d->%d at step %d" src dst step
      done;
      true)

let test_dist_cache_lru_eviction () =
  let g, _, _, _, _, _ = diamond () in
  let c = G.Dist_cache.create ~capacity:2 g in
  ignore (G.Dist_cache.result c ~src:0);
  ignore (G.Dist_cache.result c ~src:1);
  Alcotest.(check int) "no eviction yet" 0 (G.Dist_cache.evictions c);
  ignore (G.Dist_cache.result c ~src:0);
  (* 1 is now least-recently used; inserting 2 evicts it, not 0. *)
  ignore (G.Dist_cache.result c ~src:2);
  Alcotest.(check int) "one eviction" 1 (G.Dist_cache.evictions c);
  Alcotest.(check bool) "0 survives" true (G.Dist_cache.cached c 0);
  Alcotest.(check bool) "1 evicted" false (G.Dist_cache.cached c 1);
  (* Re-querying the evicted source recomputes correctly. *)
  Alcotest.(check (float 1e-9)) "recomputed" 1.5 (G.Dist_cache.dist c ~src:1 ~dst:3);
  (* Lifetime settled-node counter includes evicted entries' work. *)
  Alcotest.(check bool) "settled counter grows" true (G.Dist_cache.settled_nodes c >= 8)

let test_dist_cache_targeted_counters () =
  let g, _, _, _, _, _ = diamond () in
  (* Targeted: a near target settles a prefix; full mode settles all 4. *)
  let ct = G.Dist_cache.create g in
  ignore (G.Dist_cache.dist ct ~src:0 ~dst:1);
  let partial = G.Dist_cache.settled_nodes ct in
  Alcotest.(check bool) "partial settle" true (partial < 4);
  let cf = G.Dist_cache.create ~targeted:false g in
  ignore (G.Dist_cache.dist cf ~src:0 ~dst:1);
  Alcotest.(check int) "full settle" 4 (G.Dist_cache.settled_nodes cf);
  (* Hits and misses are tracked per query. *)
  Alcotest.(check int) "miss" 1 (G.Dist_cache.misses ct);
  ignore (G.Dist_cache.dist ct ~src:0 ~dst:3);
  Alcotest.(check int) "hit on resume" 1 (G.Dist_cache.hits ct);
  Alcotest.(check int) "still one run" 1 (G.Dist_cache.runs ct);
  (* The resumed entry's extra settling is accounted for. *)
  Alcotest.(check int) "resumed settle" 4 (G.Dist_cache.settled_nodes ct);
  (* Explicit invalidation drops entries but keeps lifetime counters. *)
  G.Dist_cache.invalidate ct;
  Alcotest.(check bool) "dropped" false (G.Dist_cache.cached ct 0);
  Alcotest.(check int) "counters survive" 4 (G.Dist_cache.settled_nodes ct)

(* Entries are keyed by (source, heuristic identity): a frontier opened
   under one heuristic is never resumed under another, and complete
   lookups are always plain. *)
let test_dist_cache_heuristic_keying () =
  let g, _, _, _, _, _ = diamond () in
  let c = G.Dist_cache.create g in
  let h1 = G.Dijkstra.heuristic (fun _ -> 0.) in
  G.Dist_cache.set_future_cost c (Some h1);
  ignore (G.Dist_cache.result_for c ~src:0 ~targets:[ 3 ]);
  Alcotest.(check bool) "h1 entry live" true (G.Dist_cache.cached c 0);
  Alcotest.(check int) "one run" 1 (G.Dist_cache.runs c);
  Alcotest.(check bool) "heuristic evaluated" true (G.Dist_cache.future_cost_evals c > 0);
  (* Same source, no heuristic: a different key, so not cached. *)
  G.Dist_cache.set_future_cost c None;
  Alcotest.(check bool) "plain key absent" false (G.Dist_cache.cached c 0);
  ignore (G.Dist_cache.result_for c ~src:0 ~targets:[ 3 ]);
  Alcotest.(check int) "plain lookup reran" 2 (G.Dist_cache.runs c);
  (* Re-installing h1 finds the original entry again and resumes it. *)
  G.Dist_cache.set_future_cost c (Some h1);
  Alcotest.(check bool) "h1 entry survives" true (G.Dist_cache.cached c 0);
  ignore (G.Dist_cache.result_for c ~src:0 ~targets:[ 1 ]);
  Alcotest.(check int) "no rerun under h1" 2 (G.Dist_cache.runs c);
  (* A distinct heuristic object is a distinct key, even for the same
     source and the same underlying function. *)
  let h2 = G.Dijkstra.heuristic (fun _ -> 0.) in
  G.Dist_cache.set_future_cost c (Some h2);
  Alcotest.(check bool) "h2 key absent" false (G.Dist_cache.cached c 0);
  (* Complete lookups bypass goal-direction entirely. *)
  let r = G.Dist_cache.result c ~src:2 in
  Alcotest.(check bool) "complete" true (G.Dijkstra.complete r);
  Alcotest.(check int) "complete lookup is plain" 0 (G.Dijkstra.future_cost_evals r)

(* ------------------------------------------------------------------ *)
(* Gstate journal                                                     *)
(* ------------------------------------------------------------------ *)

let test_gstate_checkpoint_basics () =
  let g = graph 3 [ (0, 1, 1.); (1, 2, 2.) ] in
  let v0 = G.Gstate.version g in
  (* No-op mutations (same value) write no journal entry and bump nothing. *)
  G.Gstate.set_weight g 0 1.;
  G.Gstate.enable_node g 1;
  G.Gstate.enable_edge g 0;
  Alcotest.(check int) "no-op keeps version" v0 (G.Gstate.version g);
  Alcotest.(check int) "no-op keeps journal empty" 0 (G.Gstate.journal_depth g);
  let cp0 = G.Gstate.checkpoint g in
  G.Gstate.set_weight g 0 5.;
  G.Gstate.disable_node g 2;
  let cp1 = G.Gstate.checkpoint g in
  G.Gstate.disable_edge g 1;
  Alcotest.(check int) "journal grows per mutation" 3 (G.Gstate.journal_depth g);
  G.Gstate.rollback g cp1;
  Alcotest.(check bool) "inner rollback re-enables edge" true (G.Gstate.edge_enabled g 1);
  Alcotest.(check (float 1e-9)) "outer span untouched" 5. (G.Gstate.weight g 0);
  G.Gstate.rollback g cp0;
  Alcotest.(check (float 1e-9)) "weight restored" 1. (G.Gstate.weight g 0);
  Alcotest.(check bool) "node restored" true (G.Gstate.node_enabled g 2);
  Alcotest.(check int) "journal drained" 0 (G.Gstate.journal_depth g);
  (* cp1 now points past the journal end: stale checkpoints are rejected. *)
  Alcotest.check_raises "stale checkpoint"
    (Invalid_argument "Gstate.rollback: invalid checkpoint") (fun () ->
      G.Gstate.rollback g cp1);
  (* commit keeps the new state but truncates the undo entries. *)
  let cp2 = G.Gstate.checkpoint g in
  G.Gstate.set_weight g 1 9.;
  G.Gstate.commit g cp2;
  Alcotest.(check (float 1e-9)) "committed weight sticks" 9. (G.Gstate.weight g 1);
  Alcotest.(check int) "commit truncates journal" 0 (G.Gstate.journal_depth g);
  Alcotest.(check bool) "counters tracked" true
    (G.Gstate.mutations g >= 4 && G.Gstate.rollbacks g = 2 && G.Gstate.peak_journal_depth g >= 3)

(* Random mutation sequences around a checkpoint: rollback must restore the
   exact observable state at the checkpoint, and the version counter must
   never decrease. *)
let prop_gstate_rollback_restores =
  QCheck.Test.make ~name:"Gstate rollback restores checkpoint state" ~count:100
    QCheck.(triple (int_range 0 1000) (int_range 0 30) (int_range 0 30))
    (fun (seed, n_before, n_after) ->
      let rng = Rng.make seed in
      let g = G.Random_graph.connected rng ~n:12 ~m:30 ~wmin:0.5 ~wmax:4. in
      let ne = G.Gstate.num_edges g and nn = G.Gstate.num_nodes g in
      let mutate () =
        match Rng.int rng 6 with
        | 0 -> G.Gstate.set_weight g (Rng.int rng ne) (Rng.float rng 5.)
        | 1 -> G.Gstate.add_weight g (Rng.int rng ne) (Rng.float rng 2.)
        | 2 -> G.Gstate.disable_edge g (Rng.int rng ne)
        | 3 -> G.Gstate.enable_edge g (Rng.int rng ne)
        | 4 -> G.Gstate.disable_node g (Rng.int rng nn)
        | _ -> G.Gstate.enable_node g (Rng.int rng nn)
      in
      let snapshot () =
        ( Array.init ne (G.Gstate.weight g),
          Array.init nn (G.Gstate.node_enabled g),
          Array.init ne (G.Gstate.edge_enabled g) )
      in
      (* newest-first trace of every observed version *)
      let vers = ref [ G.Gstate.version g ] in
      let note () = vers := G.Gstate.version g :: !vers in
      for _ = 1 to n_before do
        mutate ();
        note ()
      done;
      let want = snapshot () in
      let cp = G.Gstate.checkpoint g in
      let depth_at_cp = G.Gstate.journal_depth g in
      for _ = 1 to n_after do
        mutate ();
        note ()
      done;
      G.Gstate.rollback g cp;
      note ();
      let restored = snapshot () = want in
      let depth_ok = G.Gstate.journal_depth g = depth_at_cp in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a >= b && monotone rest
        | _ -> true
      in
      (* the checkpoint survives a rollback: rolling back again is legal *)
      G.Gstate.rollback g cp;
      restored && depth_ok && monotone !vers && snapshot () = want)

(* Journal rollback across Cost_model.apply epoch boundaries: pricing
   writes are ordinary journaled mutations, so a checkpoint taken before a
   priced sequence restores the exact weight vector (and hence search
   results) no matter how many epochs the sequence crossed — and replaying
   the same sequence on a fresh graph reproduces the post-sequence weights
   bit-for-bit. *)
let prop_rollback_across_cost_epochs =
  QCheck.Test.make ~name:"rollback across Cost_model.apply epochs" ~count:50
    QCheck.(pair (int_range 0 1000) (int_range 1 12))
    (fun (seed, n_ops) ->
      let n = 15 in
      let build s =
        let rng = Rng.make s in
        G.Random_graph.connected rng ~n ~m:(3 * n) ~wmin:0.5 ~wmax:4.
      in
      let g = build seed in
      let ne = G.Gstate.num_edges g in
      (* Generate the op script as data so both runs see the same ops. *)
      let rng = Rng.make (seed + 7919) in
      let script =
        List.init n_ops (fun _ ->
            match Rng.int rng 3 with
            | 0 -> `Use (List.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng n))
            | 1 -> `Escalate
            | _ -> `Apply)
        @ [ `Apply ] (* always cross at least one epoch boundary *)
      in
      let run g =
        let cm = G.Cost_model.create g in
        List.iter
          (function
            | `Use nodes -> G.Cost_model.use_nodes cm nodes
            | `Escalate -> G.Cost_model.escalate cm
            | `Apply -> G.Cost_model.apply cm)
          script;
        cm
      in
      let acct cm =
        (Array.init n (G.Cost_model.usage cm), Array.init n (G.Cost_model.history cm))
      in
      let w0 = Array.init ne (G.Gstate.weight g) in
      let dist0 = Array.init n (G.Dijkstra.dist (G.Dijkstra.run g ~src:0)) in
      let cp = G.Gstate.checkpoint g in
      let depth0 = G.Gstate.journal_depth g in
      let cm = run g in
      let epochs = G.Cost_model.epoch cm in
      let w1 = Array.init ne (G.Gstate.weight g) in
      let acct1 = acct cm in
      G.Gstate.rollback g cp;
      let restored_w = Array.init ne (G.Gstate.weight g) = w0 in
      let restored_d = Array.init n (G.Dijkstra.dist (G.Dijkstra.run g ~src:0)) = dist0 in
      (* Rollback touches only the graph: the model's accounting is not
         journaled state and must be exactly what the sequence left. *)
      let acct_kept = acct cm = acct1 in
      let g2 = build seed in
      let cm2 = run g2 in
      let replayed = Array.init (G.Gstate.num_edges g2) (G.Gstate.weight g2) = w1 in
      let replayed_acct = acct cm2 = acct1 && G.Cost_model.epoch cm2 = epochs in
      epochs >= 1 && restored_w && restored_d && acct_kept
      && G.Gstate.journal_depth g = depth0
      && replayed && replayed_acct)

let () =
  Alcotest.run "fr_graph"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "empty/peek/clear" `Quick test_heap_empty;
          Alcotest.test_case "growth past capacity" `Quick test_heap_growth;
          Alcotest.test_case "clear retains capacity" `Quick test_heap_clear_retains_capacity;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_interleaved;
        ] );
      ( "pq",
        [
          Alcotest.test_case "strict (prio, tie, seq) order" `Quick test_pq_order;
          Alcotest.test_case "bucket rejects bad priorities" `Quick test_pq_bucket_rejects;
          Alcotest.test_case "bucket ring growth" `Quick test_pq_bucket_window_growth;
          Alcotest.test_case "clear retains capacity" `Quick test_pq_clear_reuse;
          QCheck_alcotest.to_alcotest prop_pq_equivalence;
        ] );
      ( "gstate",
        [
          Alcotest.test_case "checkpoint/rollback/commit" `Quick test_gstate_checkpoint_basics;
          QCheck_alcotest.to_alcotest prop_gstate_rollback_restores;
          QCheck_alcotest.to_alcotest prop_rollback_across_cost_epochs;
        ] );
      ("dsu", [ Alcotest.test_case "union/find" `Quick test_dsu ]);
      ( "wgraph",
        [
          Alcotest.test_case "basics" `Quick test_wgraph_basic;
          Alcotest.test_case "rejects bad edges" `Quick test_wgraph_rejects;
          Alcotest.test_case "disable/enable" `Quick test_wgraph_disable;
          Alcotest.test_case "versioning & weights" `Quick test_wgraph_version_and_weights;
          Alcotest.test_case "find_edge" `Quick test_wgraph_find_edge;
          Alcotest.test_case "copy" `Quick test_wgraph_copy;
          Alcotest.test_case "mean edge weight" `Quick test_mean_edge_weight;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "diamond" `Quick test_dijkstra_diamond;
          Alcotest.test_case "detour around disabled" `Quick test_dijkstra_disabled_detour;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "restrict" `Quick test_dijkstra_restrict;
          Alcotest.test_case "edge_ok" `Quick test_dijkstra_edge_ok;
          Alcotest.test_case "spt edges" `Quick test_dijkstra_spt_edges;
          Alcotest.test_case "lazy extension" `Quick test_dijkstra_lazy_extension;
          Alcotest.test_case "stale resume rejected" `Quick test_dijkstra_stale_resume_rejected;
          QCheck_alcotest.to_alcotest prop_dijkstra_matches_floyd_warshall;
          QCheck_alcotest.to_alcotest prop_dijkstra_path_cost_consistent;
          QCheck_alcotest.to_alcotest prop_targeted_equals_full;
          QCheck_alcotest.to_alcotest prop_astar_matches_plain;
        ] );
      ( "mst",
        [
          Alcotest.test_case "prim triangle" `Quick test_prim_dense_triangle;
          Alcotest.test_case "prim trivial" `Quick test_prim_dense_trivial;
          Alcotest.test_case "prim disconnected" `Quick test_prim_dense_disconnected;
          Alcotest.test_case "kruskal basic" `Quick test_kruskal_basic;
          Alcotest.test_case "kruskal disconnected" `Quick test_kruskal_disconnected;
          QCheck_alcotest.to_alcotest prop_prim_matches_kruskal;
        ] );
      ( "tree",
        [
          Alcotest.test_case "metrics" `Quick test_tree_metrics;
          Alcotest.test_case "cycle detection" `Quick test_tree_cycle_detection;
          Alcotest.test_case "disconnected" `Quick test_tree_disconnected;
          Alcotest.test_case "prune" `Quick test_tree_prune;
          Alcotest.test_case "prune cascade" `Quick test_tree_prune_cascade;
          Alcotest.test_case "empty tree" `Quick test_tree_empty;
        ] );
      ( "grid",
        [
          Alcotest.test_case "structure" `Quick test_grid_structure;
          Alcotest.test_case "rectilinear distances (Fig 3a)" `Quick
            test_grid_distances_rectilinear;
          Alcotest.test_case "edge lookup" `Quick test_grid_edge_lookup;
          Alcotest.test_case "bad args" `Quick test_grid_bad_args;
        ] );
      ( "random_graph",
        [
          Alcotest.test_case "connected" `Quick test_random_graph_connected;
          Alcotest.test_case "random net" `Quick test_random_net;
        ] );
      ( "dist_cache",
        [
          Alcotest.test_case "memoizes" `Quick test_dist_cache_memoizes;
          Alcotest.test_case "invalidation" `Quick test_dist_cache_invalidation;
          Alcotest.test_case "symmetric lookups" `Quick test_dist_cache_sym;
          Alcotest.test_case "LRU eviction" `Quick test_dist_cache_lru_eviction;
          Alcotest.test_case "targeted counters" `Quick test_dist_cache_targeted_counters;
          Alcotest.test_case "heuristic keying" `Quick test_dist_cache_heuristic_keying;
          QCheck_alcotest.to_alcotest prop_cache_never_stale;
        ] );
    ]
