(* Tests for tools/frdomcheck: the fixture workers flag (or stay clean)
   exactly as designed, the seeded race is reported with its full call
   chain, allowlisting by qualified name works, and the real tree proves
   race-free under the checked-in allowlist. *)

module C = Frdomcheck_lib.Check
module S = Frdomcheck_lib.Summary
module LL = Lintlib

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let fixtures_dir = "frdomcheck_fixtures"
let run_fixtures ?allowlist_path ?out_path () = C.run ?allowlist_path ?out_path ~dirs:[ fixtures_dir ] ()

let about name (f : LL.Finding.t) = contains ~sub:name f.LL.Finding.message

(* ------------------------------------------------------------------ *)
(* Fixture surface: what fires and what stays quiet                    *)
(* ------------------------------------------------------------------ *)

let test_roots () =
  let r = run_fixtures () in
  (* fx_safe and fx_bad spawn lambdas; fx_local and fx_higher are
     attribute-marked.  Nothing else may register. *)
  Alcotest.(check int) "four worker roots" 4 r.C.roots;
  Alcotest.(check bool) "fixpoint converges" true (r.C.rounds < 50)

let test_seeded_race_is_flagged () =
  let r = run_fixtures () in
  let hits = List.filter (about "Fx_bad") r.C.findings in
  Alcotest.(check int) "exactly one finding for the seeded race" 1 (List.length hits);
  let f = List.hd hits in
  Alcotest.(check string) "rule" S.rule_mutation f.LL.Finding.rule;
  Alcotest.(check bool)
    "names the mutated global" true
    (contains ~sub:"Frdom_fixtures.Fx_bad.table" f.LL.Finding.message);
  Alcotest.(check bool)
    "reports the call chain from the spawn site" true
    (contains ~sub:"call chain:" f.LL.Finding.message
    && contains ~sub:"<worker:" f.LL.Finding.message
    && contains ~sub:"Frdom_fixtures.Fx_bad.bump" f.LL.Finding.message)

let test_higher_order_is_conservative () =
  let r = run_fixtures () in
  let hits = List.filter (about "Fx_higher") r.C.findings in
  Alcotest.(check int) "exactly one finding for the opaque callback" 1 (List.length hits);
  let f = List.hd hits in
  Alcotest.(check string) "rule" S.rule_unknown_call f.LL.Finding.rule;
  Alcotest.(check bool)
    "names the worker and the untracked parameter" true
    (contains ~sub:"Frdom_fixtures.Fx_higher.invoke" f.LL.Finding.message
    && contains ~sub:"$0" f.LL.Finding.message)

let test_clean_workers_stay_quiet () =
  let r = run_fixtures () in
  Alcotest.(check int)
    "nothing beyond the two seeded findings" 2 (List.length r.C.findings);
  Alcotest.(check bool)
    "no finding mentions the clean units" true
    (List.for_all
       (fun f -> not (about "Fx_safe" f || about "Fx_local" f))
       r.C.findings)

(* ------------------------------------------------------------------ *)
(* Allowlisting by qualified function name                             *)
(* ------------------------------------------------------------------ *)

let with_temp_file contents f =
  let path = Filename.temp_file "frdomcheck" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_allowlist_discharges () =
  with_temp_file
    "worker-shared-mutation Frdom_fixtures.Fx_bad.bump seeded race fixture\n\
     worker-unknown-call Frdom_fixtures.Fx_higher.invoke opaque callback fixture\n"
    (fun path ->
      let r = run_fixtures ~allowlist_path:path () in
      Alcotest.(check int) "both findings discharged" 0 (List.length r.C.findings);
      Alcotest.(check int) "both entries consumed" 2 r.C.allowlisted)

let test_allowlist_unused_entry_is_a_finding () =
  with_temp_file "worker-shared-mutation Frdom_fixtures.Fx_ghost.run matches nothing\n"
    (fun path ->
      let r = run_fixtures ~allowlist_path:path () in
      Alcotest.(check bool)
        "stale entry reported" true
        (List.exists
           (fun (f : LL.Finding.t) -> String.equal f.LL.Finding.rule "allowlist-unused")
           r.C.findings))

(* ------------------------------------------------------------------ *)
(* The effects.json manifest                                           *)
(* ------------------------------------------------------------------ *)

let test_manifest () =
  let path = Filename.temp_file "effects" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      ignore (run_fixtures ~out_path:path ());
      let ic = open_in_bin path in
      let json = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("manifest mentions " ^ sub) true (contains ~sub json))
        [
          "\"roots\"";
          "\"functions\"";
          "\"name\": \"Frdom_fixtures.Fx_local.sum_to\"";
          "\"name\": \"Frdom_fixtures.Fx_bad.bump\"";
          "\"class\": \"mutates\"";
          "\"worker_reachable\": true";
        ];
      Alcotest.(check bool)
        "the seeded mutator carries its write sites" true
        (contains ~sub:"\"sites\":" json))

(* ------------------------------------------------------------------ *)
(* The real tree is race-free under the checked-in allowlist           *)
(* ------------------------------------------------------------------ *)

let test_real_tree_clean () =
  let r =
    C.run ~allowlist_path:"../tools/frdomcheck/allowlist"
      ~dirs:[ "../lib"; "../bin"; "../bench" ] ()
  in
  Alcotest.(check (list string))
    "no findings on lib/, bin/, bench/" []
    (List.map LL.Finding.to_string r.C.findings);
  Alcotest.(check int) "the two router jobs are the only roots" 2 r.C.roots;
  Alcotest.(check bool) "a real number of functions analyzed" true (r.C.functions > 400);
  Alcotest.(check bool) "escapes go through the allowlist" true (r.C.allowlisted > 0);
  Alcotest.(check bool) "fixpoint converges" true (r.C.rounds < 50)

let () =
  Alcotest.run "frdomcheck"
    [
      ( "fixtures",
        [
          Alcotest.test_case "worker roots" `Quick test_roots;
          Alcotest.test_case "seeded race flagged with chain" `Quick
            test_seeded_race_is_flagged;
          Alcotest.test_case "higher-order conservative" `Quick
            test_higher_order_is_conservative;
          Alcotest.test_case "clean workers quiet" `Quick test_clean_workers_stay_quiet;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "discharges by qualified name" `Quick
            test_allowlist_discharges;
          Alcotest.test_case "unused entry is a finding" `Quick
            test_allowlist_unused_entry_is_a_finding;
        ] );
      ("manifest", [ Alcotest.test_case "effects.json" `Quick test_manifest ]);
      ("project", [ Alcotest.test_case "real tree race-free" `Quick test_real_tree_clean ]);
    ]
