(* Negotiated-congestion mode: Cost_model accounting and pricing, the
   candidate-thinning and deep-tree hot-path fixes, and the router-level
   convergence / validity / determinism properties. *)

module G = Fr_graph
module C = Fr_core
module F = Fr_fpga
module CM = Fr_graph.Cost_model

(* ------------------------------------------------------------------ *)
(* Cost_model fixtures                                                *)
(* ------------------------------------------------------------------ *)

(* Path 0 - 1 - 2 - 3 with unit base weights. *)
let path_fixture () =
  let b = G.Wgraph.create 4 in
  let e01 = G.Wgraph.add_edge b 0 1 1. in
  let e12 = G.Wgraph.add_edge b 1 2 1. in
  let e23 = G.Wgraph.add_edge b 2 3 1. in
  (G.Gstate.of_builder b, e01, e12, e23)

let test_usage_accounting () =
  let g, _, _, _ = path_fixture () in
  let cm = CM.create g in
  CM.use_nodes cm [ 0; 1; 2 ];
  CM.use_nodes cm [ 1; 2; 3 ];
  CM.use_nodes cm [ 2 ];
  Alcotest.(check int) "usage 0" 1 (CM.usage cm 0);
  Alcotest.(check int) "usage 1" 2 (CM.usage cm 1);
  Alcotest.(check int) "usage 2" 3 (CM.usage cm 2);
  (* capacity 1: overuse = (2-1) + (3-1) *)
  Alcotest.(check int) "overuse" 3 (CM.overuse cm);
  Alcotest.(check (list int)) "overused nodes" [ 1; 2 ] (CM.overused_nodes cm);
  (* rip-up of the second net restores the first one's view *)
  CM.release_nodes cm [ 1; 2; 3 ];
  Alcotest.(check int) "overuse after release" 1 (CM.overuse cm);
  Alcotest.(check (list int)) "overused after release" [ 2 ] (CM.overused_nodes cm);
  Alcotest.check_raises "over-release rejected"
    (Invalid_argument "Cost_model.release_nodes: node is not in use") (fun () ->
      CM.release_nodes cm [ 3 ]);
  CM.begin_iteration cm;
  Alcotest.(check int) "reset" 0 (CM.overuse cm);
  Alcotest.(check int) "usage cleared" 0 (CM.usage cm 2)

let test_history_monotone () =
  let g, _, _, _ = path_fixture () in
  let cm = CM.create g in
  let prev = ref (-1.) in
  for _round = 1 to 5 do
    CM.begin_iteration cm;
    CM.use_nodes cm [ 1 ];
    CM.use_nodes cm [ 1 ];
    (* overused every round *)
    CM.escalate cm;
    let h = CM.history cm 1 in
    Alcotest.(check bool) "history non-decreasing" true (h >= !prev);
    Alcotest.(check bool) "history grows on overuse" true (h > !prev);
    prev := h
  done;
  (* a clean round leaves history untouched *)
  CM.begin_iteration cm;
  CM.use_nodes cm [ 1 ];
  CM.escalate cm;
  Alcotest.(check (float 1e-9)) "history frozen without overuse" !prev (CM.history cm 1);
  Alcotest.(check (float 1e-9)) "untouched node has no history" 0. (CM.history cm 3)

let test_effective_cost_formula () =
  let g, e01, e12, _ = path_fixture () in
  let params = { CM.default_params with present_factor = 0.5; history_factor = 0.4 } in
  let cm = CM.create ~params g in
  (* two nets on node 1, one on node 2, none elsewhere *)
  CM.use_nodes cm [ 1 ];
  CM.use_nodes cm [ 1 ];
  CM.use_nodes cm [ 2 ];
  CM.escalate cm;
  (* history: node 1 gains 0.4 * (2 - 1); present factor now 0.5 * 1.3 *)
  CM.apply cm;
  let pf = 0.5 *. 1.3 in
  (* prospective present: usage + 1 - capacity *)
  let p0 = pf *. 0. and p1 = pf *. 2. and p2 = pf *. 1. in
  let h1 = 0.4 in
  let expect01 = 1. *. (1. +. (0.5 *. (p0 +. p1))) *. (1. +. (0.5 *. h1)) in
  let expect12 = 1. *. (1. +. (0.5 *. (p1 +. p2))) *. (1. +. (0.5 *. h1)) in
  Alcotest.(check (float 1e-9)) "edge 0-1 priced" expect01 (G.Gstate.weight g e01);
  Alcotest.(check (float 1e-9)) "edge 1-2 priced" expect12 (G.Gstate.weight g e12);
  Alcotest.(check int) "epoch advanced" 1 (CM.epoch cm);
  CM.restore_base cm;
  Alcotest.(check (float 1e-9)) "base restored" 1. (G.Gstate.weight g e01)

let test_apply_invalidates_caches () =
  let g, _, _, _ = path_fixture () in
  let cm = CM.create g in
  let cache = G.Dist_cache.create g in
  Alcotest.(check (float 1e-9)) "base distance" 3. (G.Dist_cache.dist cache ~src:0 ~dst:3);
  let v0 = G.Gstate.version g in
  CM.use_nodes cm [ 1 ];
  CM.use_nodes cm [ 1 ];
  CM.escalate cm;
  CM.apply cm;
  Alcotest.(check bool) "version bumped" true (G.Gstate.version g > v0);
  Alcotest.(check bool)
    "stale cache recomputes against prices" true
    (G.Dist_cache.dist cache ~src:0 ~dst:3 > 3.)

let test_create_rejects_views_and_bad_params () =
  let g, _, _, _ = path_fixture () in
  Alcotest.check_raises "read-only view"
    (Invalid_argument "Cost_model.create: read-only view") (fun () ->
      ignore (CM.create (G.Gstate.read_only_view g)));
  Alcotest.check_raises "bad growth"
    (Invalid_argument "Cost_model.create: present_growth must be >= 1") (fun () ->
      ignore (CM.create ~params:{ CM.default_params with present_growth = 0.5 } g))

(* ------------------------------------------------------------------ *)
(* candidates_for thinning bounds (stride bugfix)                     *)
(* ------------------------------------------------------------------ *)

let test_candidate_thinning_bounds () =
  let rrg = F.Rrg.build (F.Arch.xc4000 ~rows:8 ~cols:8 ~channel_width:8) in
  let total = F.Rrg.num_wires rrg in
  List.iter
    (fun cap ->
      let cfg = { F.Router.default_config with max_candidates = cap } in
      let kept = List.length (F.Router.candidates_for rrg cfg (fun _ -> true)) in
      if total <= cap then Alcotest.(check int) "no thinning needed" total kept
      else begin
        if kept > cap then Alcotest.failf "cap %d: kept %d > cap" cap kept;
        (* The old floor-based stride could keep barely more than cap/2;
           the ceil stride must stay in the upper half of the budget. *)
        if 2 * kept <= cap then Alcotest.failf "cap %d: kept %d wastes the budget" cap kept
      end)
    [ 1; 2; 3; 10; 100; 999; total - 1; total; total + 1 ]

(* ------------------------------------------------------------------ *)
(* max_path_of_tree on a deep path-shaped tree (stack bugfix)         *)
(* ------------------------------------------------------------------ *)

let test_max_path_deep_tree () =
  let n = 200_000 in
  let b = G.Wgraph.create n in
  let edges = List.init (n - 1) (fun i -> G.Wgraph.add_edge b i (i + 1) 1.) in
  let g = G.Gstate.of_builder b in
  let tree = G.Tree.of_edges edges in
  (* A recursive DFS overflows the stack around this depth; the explicit
     stack must return the exact path length. *)
  let d =
    F.Router.max_path_of_tree ~weight:(fun _ -> 1.) g tree ~net_src:0 ~sinks:[ n - 1; n / 2 ]
  in
  Alcotest.(check (float 1e-9)) "deep path length" (float_of_int (n - 1)) d

(* ------------------------------------------------------------------ *)
(* Negotiated routing: convergence, validity, determinism             *)
(* ------------------------------------------------------------------ *)

let spec = Option.get (F.Circuits.find_spec "term1")

let route_negotiated ~domains ~width =
  let config = F.Router.config_with ~mode:F.Router.Negotiated () in
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:width) in
  match F.Router.route ~config ~domains rrg circuit with
  | Ok stats -> (rrg, stats)
  | Error f ->
      Alcotest.failf "term1 failed to converge at W=%d with %d domains (%d iterations)" width
        domains f.F.Router.passes_tried

(* The domains-1 route is shared by the validity and determinism cases —
   one solve, two properties. *)
let base_route = lazy (route_negotiated ~domains:1 ~width:10)

let test_convergence_and_validity () =
  let rrg, stats = Lazy.force base_route in
  let g = rrg.F.Rrg.graph in
  Alcotest.(check int) "all nets routed" (List.length (F.Circuits.generate spec).F.Netlist.nets)
    (List.length stats.F.Router.routed);
  (* Every tree is a valid spanning tree of its net's terminals. *)
  List.iter
    (fun r ->
      let cnet = F.Netlist.rrg_net rrg r.F.Router.net in
      Alcotest.(check bool)
        (r.F.Router.net.F.Netlist.net_name ^ " spans")
        true
        (G.Tree.spans g r.F.Router.tree (C.Net.terminals cnet));
      Alcotest.(check bool)
        (r.F.Router.net.F.Netlist.net_name ^ " is a tree")
        true
        (G.Tree.is_tree g r.F.Router.tree))
    stats.F.Router.routed;
  (* Zero overuse at convergence: no node belongs to two routed trees. *)
  let owner = Hashtbl.create 4096 in
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt owner v with
          | Some other ->
              Alcotest.failf "node %d used by both %s and %s" v other
                r.F.Router.net.F.Netlist.net_name
          | None -> Hashtbl.replace owner v r.F.Router.net.F.Netlist.net_name)
        (G.Tree.nodes g r.F.Router.tree))
    stats.F.Router.routed

let canonical_trees stats =
  List.map
    (fun r ->
      (r.F.Router.net.F.Netlist.net_name, List.sort Int.compare r.F.Router.tree.G.Tree.edges))
    stats.F.Router.routed
  |> List.sort compare

let test_domain_determinism () =
  let _, s1 = Lazy.force base_route in
  let trees1 = canonical_trees s1 in
  List.iter
    (fun domains ->
      let _, s = route_negotiated ~domains ~width:10 in
      Alcotest.(check int)
        (Printf.sprintf "iterations match (domains=%d)" domains)
        s1.F.Router.passes s.F.Router.passes;
      Alcotest.(check bool)
        (Printf.sprintf "trees bit-identical (domains=%d)" domains)
        true
        (trees1 = canonical_trees s))
    [ 2; 4 ]

let () =
  Alcotest.run "negotiated"
    [
      ( "cost_model",
        [
          Alcotest.test_case "usage accounting" `Quick test_usage_accounting;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "effective cost formula" `Quick test_effective_cost_formula;
          Alcotest.test_case "apply invalidates caches" `Quick test_apply_invalidates_caches;
          Alcotest.test_case "create guards" `Quick test_create_rejects_views_and_bad_params;
        ] );
      ( "hot_path_fixes",
        [
          Alcotest.test_case "candidate thinning bounds" `Quick test_candidate_thinning_bounds;
          Alcotest.test_case "deep-tree max path" `Quick test_max_path_deep_tree;
        ] );
      ( "router",
        [
          Alcotest.test_case "convergence and validity" `Slow test_convergence_and_validity;
          Alcotest.test_case "domains 1/2/4 identical" `Slow test_domain_determinism;
        ] );
    ]
