(* Tests for tools/frlint: every shipped rule fires on its fixture, both
   suppression mechanisms work, and the real tree is lint-clean. *)

module L = Frlint_lib
module LL = Lintlib

let fixtures_root = "frlint_fixtures"
let fixtures_allowlist = Filename.concat fixtures_root "allowlist"

let run_fixtures () =
  L.Engine.run ~allowlist_path:fixtures_allowlist ~roots:[ fixtures_root ] ()

let finding_pair (f : LL.Finding.t) = (Filename.basename f.LL.Finding.file, f.LL.Finding.rule)

let pairs = Alcotest.(list (pair string string))

(* ------------------------------------------------------------------ *)
(* Rule coverage over the fixture tree                                 *)
(* ------------------------------------------------------------------ *)

let expected_fixture_findings =
  [
    ("bad_error.ml", "error-names-entry-point");
    ("bad_error.ml", "error-names-entry-point");
    ("bad_error.ml", "error-names-entry-point");
    ("global_random.ml", "no-global-mutable-random");
    ("global_random.ml", "no-global-mutable-random");
    ("linear_scan.ml", "no-linear-scan");
    ("linear_scan.ml", "no-linear-scan");
    ("magic.ml", "no-obj-magic");
    ("magic.ml", "no-print-in-lib");
    ("magic.ml", "no-silent-catch-all");
    ("missing_mli.ml", "mli-required");
    ("phys_eq.ml", "no-physical-equality");
    ("phys_eq.ml", "no-physical-equality");
    ("poly_compare.ml", "no-polymorphic-compare");
    ("poly_compare.ml", "no-polymorphic-compare");
    ("poly_compare.ml", "no-polymorphic-compare");
  ]

let test_fixture_findings () =
  let s = run_fixtures () in
  let got = List.map finding_pair s.L.Engine.findings |> List.sort compare in
  Alcotest.check pairs
    "every rule fires exactly where expected" expected_fixture_findings got

let test_every_rule_fires () =
  let s = run_fixtures () in
  let fired = List.map (fun (f : LL.Finding.t) -> f.LL.Finding.rule) s.L.Engine.findings in
  List.iter
    (fun rule -> Alcotest.(check bool) (rule ^ " fires") true (List.mem rule fired))
    [
      "no-linear-scan";
      "no-physical-equality";
      "no-polymorphic-compare";
      "error-names-entry-point";
      "no-obj-magic";
      "no-silent-catch-all";
      "no-print-in-lib";
      "no-global-mutable-random";
      "mli-required";
    ]

let test_suppressions () =
  let s = run_fixtures () in
  (* suppressed.ml's List.mem is silenced by its inline comment *)
  Alcotest.(check int) "two inline suppressions" 2 s.L.Engine.inline_suppressed;
  Alcotest.(check bool)
    "phys_eq.ml's identity test is silenced inline" true
    (List.for_all
       (fun (f : LL.Finding.t) -> not (String.equal f.LL.Finding.rule "no-physical-equality")
         || Filename.basename f.LL.Finding.file <> "phys_eq.ml"
         || f.LL.Finding.line < 12)
    s.L.Engine.findings);
  Alcotest.(check bool)
    "suppressed.ml reports nothing" true
    (List.for_all
       (fun (f : LL.Finding.t) -> Filename.basename f.LL.Finding.file <> "suppressed.ml")
       s.L.Engine.findings);
  (* printy.ml's print_endline is silenced by the fixture allowlist *)
  Alcotest.(check int) "one allowlisted finding" 1 s.L.Engine.allowlisted;
  Alcotest.(check bool)
    "printy.ml reports nothing" true
    (List.for_all
       (fun (f : LL.Finding.t) -> Filename.basename f.LL.Finding.file <> "printy.ml")
       s.L.Engine.findings)

(* ------------------------------------------------------------------ *)
(* Allowlist hygiene                                                   *)
(* ------------------------------------------------------------------ *)

let with_temp_allowlist contents f =
  let path = Filename.temp_file "frlint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_allowlist_unused_and_syntax () =
  with_temp_allowlist
    "no-linear-scan lib/nowhere/ghost.ml entry matches nothing\nbroken-line-without-path\n"
    (fun path ->
      let s =
        L.Engine.run ~allowlist_path:path
          ~roots:[ Filename.concat fixtures_root "lib/core/clean.ml" ]
          ()
      in
      let rules =
        List.map (fun (f : LL.Finding.t) -> f.LL.Finding.rule) s.L.Engine.findings
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "stale and malformed entries are findings"
        [ "allowlist-syntax"; "allowlist-unused" ]
        rules)

(* ------------------------------------------------------------------ *)
(* Scope classification                                                *)
(* ------------------------------------------------------------------ *)

let test_scope () =
  let check path ~in_lib ~hot ~print_exempt =
    let s = LL.Scope.classify path in
    Alcotest.(check bool) (path ^ " in_lib") in_lib s.LL.Scope.in_lib;
    Alcotest.(check bool) (path ^ " hot") hot s.LL.Scope.hot;
    Alcotest.(check bool) (path ^ " print_exempt") print_exempt s.LL.Scope.print_exempt
  in
  check "lib/graph/tree.ml" ~in_lib:true ~hot:true ~print_exempt:false;
  check "../../lib/core/pfa.ml" ~in_lib:true ~hot:true ~print_exempt:false;
  check "lib/util/tab.ml" ~in_lib:true ~hot:false ~print_exempt:false;
  check "lib/experiments/table1.ml" ~in_lib:true ~hot:false ~print_exempt:true;
  check "lib/fpga/render.ml" ~in_lib:true ~hot:true ~print_exempt:true;
  check "bench/main.ml" ~in_lib:false ~hot:false ~print_exempt:false;
  check "frlint_fixtures/lib/graph/x.ml" ~in_lib:true ~hot:true ~print_exempt:false

(* ------------------------------------------------------------------ *)
(* The real tree is lint-clean                                         *)
(* ------------------------------------------------------------------ *)

let test_real_tree_clean () =
  let s =
    L.Engine.run ~allowlist_path:"../tools/frlint/allowlist"
      ~roots:[ "../lib"; "../bin"; "../bench"; "../tools" ] ()
  in
  Alcotest.check pairs
    "no findings on lib/, bin/, bench/, tools/" []
    (List.map finding_pair s.L.Engine.findings);
  Alcotest.(check bool) "scanned a real number of files" true (s.L.Engine.files > 80)

let () =
  Alcotest.run "frlint"
    [
      ( "rules",
        [
          Alcotest.test_case "fixture findings" `Quick test_fixture_findings;
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "inline + allowlist" `Quick test_suppressions;
          Alcotest.test_case "unused/syntax entries" `Quick test_allowlist_unused_and_syntax;
        ] );
      ("scope", [ Alcotest.test_case "classification" `Quick test_scope ]);
      ("project", [ Alcotest.test_case "real tree clean" `Quick test_real_tree_clean ]);
    ]
