(* A higher-order worker: it invokes a function it received as an
   argument, whose effects nothing in the unit can bound, so the
   analysis must flag it conservatively rather than assume safety. *)

let invoke f x = f x [@@frdomcheck.worker]
