(* A worker that reaches a module-level mutation through a helper — the
   deliberate race frdomcheck must flag, naming the full call chain from
   the spawn site down to the offending write. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16
let bump i = Hashtbl.replace table i (i * i)
let drive pool = Fr_util.Pool.run pool ~count:4 (fun ~worker:_ i -> bump i)
