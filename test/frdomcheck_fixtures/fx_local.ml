(* Local mutation is benign: the ref never escapes the call, so this
   attribute-marked worker must produce no findings. *)

let sum_to n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  !acc
[@@frdomcheck.worker]
