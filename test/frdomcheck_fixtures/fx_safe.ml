(* A worker whose whole reachable region is pure arithmetic: frdomcheck
   must report nothing for this unit. *)

let square i = i * i
let drive pool = Fr_util.Pool.map pool ~count:8 (fun ~worker:_ i -> square i)
