(* Properties of the parallel routing layer: the domain work-pool, the
   read-only graph views it hands to workers, and the router's
   bit-for-bit determinism across domain counts. *)

module G = Fr_graph
module F = Fr_fpga
module P = Fr_util.Pool

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_each_job_once () =
  List.iter
    (fun domains ->
      let pool = P.create ~domains () in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool)
        (fun () ->
          Alcotest.(check int) "size" domains (P.size pool);
          let n = 1000 in
          (* Each index is claimed by exactly one worker, so a plain
             increment per index is race-free; any double execution shows
             up as a count <> 1. *)
          let counts = Array.make n 0 in
          let workers_seen = Array.make domains false in
          P.run pool ~count:n (fun ~worker i ->
              counts.(i) <- counts.(i) + 1;
              workers_seen.(worker) <- true);
          Array.iteri
            (fun i c ->
              if c <> 1 then Alcotest.failf "job %d ran %d times (domains=%d)" i c domains)
            counts;
          Alcotest.(check bool)
            "worker 0 (the caller) participated" true workers_seen.(0))
        )
    [ 1; 2; 4 ]

let test_pool_map_in_order () =
  let pool = P.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let out = P.map pool ~count:100 (fun ~worker:_ i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length out);
      Array.iteri (fun i v -> Alcotest.(check int) "slot" (i * i) v) out)

let test_pool_exception_surfaces () =
  List.iter
    (fun domains ->
      let pool = P.create ~domains () in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool)
        (fun () ->
          Alcotest.check_raises "job exception re-raised" (Failure "boom 17")
            (fun () ->
              P.run pool ~count:50 (fun ~worker:_ i ->
                  if i = 17 then failwith "boom 17"));
          (* The pool survives a failed wave and keeps working. *)
          let ran = Array.make 20 0 in
          P.run pool ~count:20 (fun ~worker:_ i -> ran.(i) <- ran.(i) + 1);
          Alcotest.(check bool)
            "usable after a raising wave" true
            (Array.for_all (( = ) 1) ran))
        )
    [ 1; 4 ]

let test_pool_reuse_across_waves () =
  let pool = P.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      for wave = 1 to 5 do
        let n = 37 * wave in
        let out = P.map pool ~count:n (fun ~worker:_ i -> i + wave) in
        Array.iteri (fun i v -> Alcotest.(check int) "reused wave" (i + wave) v) out
      done)

let test_pool_shutdown () =
  let pool = P.create ~domains:2 () in
  P.shutdown pool;
  P.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      P.run pool ~count:1 (fun ~worker:_ _ -> ()))

(* ------------------------------------------------------------------ *)
(* Read-only Gstate views                                             *)
(* ------------------------------------------------------------------ *)

let view_fixture () =
  let b = G.Wgraph.create 3 in
  let e01 = G.Wgraph.add_edge b 0 1 1. in
  let e12 = G.Wgraph.add_edge b 1 2 2. in
  let g = G.Gstate.of_builder b in
  (g, G.Gstate.read_only_view g, e01, e12)

let test_view_reads () =
  let g, v, e01, _ = view_fixture () in
  Alcotest.(check bool) "base is writable" false (G.Gstate.is_read_only g);
  Alcotest.(check bool) "view is read-only" true (G.Gstate.is_read_only v);
  Alcotest.(check (float 1e-9)) "weights visible" 1. (G.Gstate.weight v e01);
  Alcotest.(check int) "version shared" (G.Gstate.version g) (G.Gstate.version v)

let test_view_mutators_raise () =
  let _, v, e01, _ = view_fixture () in
  let raises what f =
    Alcotest.check_raises what (Invalid_argument ("Gstate." ^ what ^ ": read-only view")) f
  in
  raises "set_weight" (fun () -> G.Gstate.set_weight v e01 9.);
  raises "set_edge" (fun () -> G.Gstate.disable_edge v e01);
  raises "set_node" (fun () -> G.Gstate.disable_node v 0);
  let cp = G.Gstate.checkpoint v in
  raises "rollback" (fun () -> G.Gstate.rollback v cp);
  raises "commit" (fun () -> G.Gstate.commit v cp)

let test_view_sees_base_mutations () =
  (* The view shares the base state's version counter, so caches keyed on
     a view still notice mutations made through the base handle. *)
  let g, v, e01, _ = view_fixture () in
  let cache = G.Dist_cache.create v in
  Alcotest.(check (float 1e-9)) "before" 1. (G.Dist_cache.dist cache ~src:0 ~dst:1);
  G.Gstate.set_weight g e01 5.;
  Alcotest.(check bool)
    "version bump visible through the view" true
    (G.Gstate.version v = G.Gstate.version g);
  Alcotest.(check (float 1e-9))
    "stale cache recomputes" 5.
    (G.Dist_cache.dist cache ~src:0 ~dst:1)

(* ------------------------------------------------------------------ *)
(* Router determinism across domain counts                            *)
(* ------------------------------------------------------------------ *)

let route_with_domains spec ~domains =
  let config = F.Router.config_with ~alg:Fr_core.Routing_alg.ikmb ~max_passes:3 () in
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:14) in
  match F.Router.route ~config ~domains rrg circuit with
  | Ok stats -> stats
  | Error f ->
      Alcotest.failf "%s failed to route at W=14 with %d domains (%d passes)"
        spec.F.Circuits.circuit domains f.F.Router.passes_tried

let canonical_trees stats =
  List.map
    (fun r ->
      (r.F.Router.net.F.Netlist.net_name, List.sort compare r.F.Router.tree.G.Tree.edges))
    stats.F.Router.routed
  |> List.sort compare

(* Everything quality-related must match; the Dijkstra work counters
   legitimately differ (per-domain caches shard the shared cache). *)
let quality stats =
  ( stats.F.Router.passes,
    stats.F.Router.total_wirelength,
    stats.F.Router.total_max_path,
    stats.F.Router.peak_occupancy,
    stats.F.Router.par_batches,
    stats.F.Router.par_conflicts )

let test_determinism_across_domains () =
  List.iter
    (fun name ->
      let spec = Option.get (F.Circuits.find_spec name) in
      let serial = route_with_domains spec ~domains:1 in
      Alcotest.(check bool)
        (name ^ ": waves actually batch") true
        (serial.F.Router.par_batches > 0);
      List.iter
        (fun domains ->
          let par = route_with_domains spec ~domains in
          Alcotest.(check int)
            (Printf.sprintf "%s: stats record %d domains" name domains)
            domains par.F.Router.domains;
          if canonical_trees par <> canonical_trees serial then
            Alcotest.failf "%s: %d-domain trees differ from serial" name domains;
          if quality par <> quality serial then
            Alcotest.failf "%s: %d-domain quality stats differ from serial" name
              domains)
        [ 2; 4 ])
    [ "term1"; "apex7" ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "each job runs exactly once" `Quick test_pool_each_job_once;
          Alcotest.test_case "map preserves order" `Quick test_pool_map_in_order;
          Alcotest.test_case "job exceptions surface" `Quick test_pool_exception_surfaces;
          Alcotest.test_case "pool reused across waves" `Quick test_pool_reuse_across_waves;
          Alcotest.test_case "shutdown semantics" `Quick test_pool_shutdown;
        ] );
      ( "views",
        [
          Alcotest.test_case "reads work, flag set" `Quick test_view_reads;
          Alcotest.test_case "mutators raise" `Quick test_view_mutators_raise;
          Alcotest.test_case "base mutations visible" `Quick test_view_sees_base_mutations;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "domains 1/2/4 route identically" `Slow
            test_determinism_across_domains;
        ] );
    ]
