(* Tests for the adversarial instances of Figs 10, 11 and 14. *)

module G = Fr_graph
module C = Fr_core

let cache_of g = G.Dist_cache.create g

(* Fig 10: PFA degrades linearly with k; IDOM stays optimal. *)
let test_fig10_pfa_linear_blowup () =
  let inst = C.Worst_case.pfa_graph ~k:8 in
  let cache = cache_of inst.C.Worst_case.graph in
  let net = inst.C.Worst_case.net in
  let pfa = G.Tree.cost inst.C.Worst_case.graph (C.Pfa.solve cache ~net) in
  let idom = G.Tree.cost inst.C.Worst_case.graph (C.Idom.solve cache ~net) in
  let opt = inst.C.Worst_case.reference_cost in
  Alcotest.(check bool)
    (Printf.sprintf "PFA (%.2f) blows up vs opt (%.2f)" pfa opt)
    true
    (pfa >= 2.5 *. opt);
  Alcotest.(check (float 1e-6)) "IDOM optimal" opt idom

let test_fig10_ratio_grows () =
  let ratio k =
    let inst = C.Worst_case.pfa_graph ~k in
    let cache = cache_of inst.C.Worst_case.graph in
    let pfa = G.Tree.cost inst.C.Worst_case.graph (C.Pfa.solve cache ~net:inst.C.Worst_case.net) in
    pfa /. inst.C.Worst_case.reference_cost
  in
  Alcotest.(check bool) "ratio grows with k" true (ratio 12 > ratio 6 +. 0.5)

let test_fig10_pfa_still_arborescence () =
  let inst = C.Worst_case.pfa_graph ~k:6 in
  let cache = cache_of inst.C.Worst_case.graph in
  let net = inst.C.Worst_case.net in
  let t = C.Pfa.solve cache ~net in
  Alcotest.(check bool) "pathlengths optimal even in the worst case" true
    (C.Eval.is_arborescence cache ~net ~tree:t)

(* Fig 11: the staircase drives PFA toward 2x optimal. *)
let test_staircase_opt_small () =
  Alcotest.(check (float 1e-9)) "n=1 optimal" 3. (C.Worst_case.staircase_opt ~n:1);
  Alcotest.(check (float 1e-9)) "n=2 optimal" 7. (C.Worst_case.staircase_opt ~n:2)

let test_fig11_pfa_vs_opt () =
  let inst = C.Worst_case.pfa_grid ~n:8 in
  let g = inst.C.Worst_case.graph in
  let cache = cache_of g in
  let net = inst.C.Worst_case.net in
  let pfa = G.Tree.cost g (C.Pfa.solve cache ~net) in
  let opt = inst.C.Worst_case.reference_cost in
  (* The RSA merge order alone would approach 2x opt on this family; our
     PFA's final nearest-dominated refold (the paper's output step) repairs
     staircases, so here we verify the [1,2] performance window.  Grid
     suboptimality of PFA is exhibited by the congested instance below. *)
  Alcotest.(check bool)
    (Printf.sprintf "1 <= PFA/opt (%.3f) <= 2" (pfa /. opt))
    true
    (pfa >= opt -. 1e-6 && pfa <= (2. *. opt) +. 1e-6)

let test_pfa_suboptimal_on_congested_grid () =
  (* A deterministic congested 10x10 grid (seed 42) on which PFA strictly
     loses to IDOM — PFA is not optimal on grid graphs. *)
  let module Rng = Fr_util.Rng in
  let rng = Rng.make 42 in
  let grid = G.Grid.create ~width:10 ~height:10 () in
  let g = grid.G.Grid.graph in
  for _ = 1 to 120 do
    let e = Rng.int rng (G.Gstate.num_edges g) in
    G.Gstate.add_weight g e 1.0
  done;
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:6) in
  let cache = cache_of g in
  let pfa = G.Tree.cost g (C.Pfa.solve cache ~net) in
  let idom = G.Tree.cost g (C.Idom.solve cache ~net) in
  Alcotest.(check bool)
    (Printf.sprintf "PFA (%.2f) > IDOM (%.2f)" pfa idom)
    true (pfa > idom +. 1e-6)

let test_fig11_pfa_arborescence () =
  let inst = C.Worst_case.pfa_grid ~n:6 in
  let cache = cache_of inst.C.Worst_case.graph in
  let net = inst.C.Worst_case.net in
  let t = C.Pfa.solve cache ~net in
  Alcotest.(check bool) "arborescence" true (C.Eval.is_arborescence cache ~net ~tree:t)

let test_fig11_opt_is_feasible_lower_bound () =
  (* The DP optimum can never beat the (unconstrained) exact Steiner tree
     and never exceed the trivial comb construction. *)
  let n = 5 in
  let inst = C.Worst_case.pfa_grid ~n in
  let g = inst.C.Worst_case.graph in
  let terminals = C.Net.terminals inst.C.Worst_case.net in
  let steiner_lb = C.Exact.steiner_cost g ~terminals in
  let comb_ub =
    (* vertical trunk + horizontal teeth *)
    let teeth = List.init (n + 1) (fun i -> float_of_int i) in
    (2. *. float_of_int n) +. List.fold_left ( +. ) 0. teeth
  in
  let opt = inst.C.Worst_case.reference_cost in
  Alcotest.(check bool)
    (Printf.sprintf "steiner %.1f <= opt %.1f <= comb %.1f" steiner_lb opt comb_ub)
    true
    (steiner_lb <= opt +. 1e-6 && opt <= comb_ub +. 1e-6)

(* Fig 14: IDOM falls for the set-cover gadget; ratio grows like levels/2. *)
let test_fig14_idom_logarithmic () =
  let inst = C.Worst_case.idom_graph ~levels:4 in
  let g = inst.C.Worst_case.graph in
  let cache = cache_of g in
  let net = inst.C.Worst_case.net in
  let idom = G.Tree.cost g (C.Idom.solve cache ~net) in
  let opt = inst.C.Worst_case.reference_cost in
  Alcotest.(check bool)
    (Printf.sprintf "IDOM (%.3f) ~ levels (4) vs opt (%.3f)" idom opt)
    true
    (idom >= 1.8 *. opt);
  (* The greedy should have picked the decoy chain: cost close to levels. *)
  Alcotest.(check bool) "cost near levels" true (Float.abs (idom -. 4.) < 0.2)

let test_fig14_good_boxes_feasible () =
  (* Routing through only the two good boxes yields the reference cost and
     satisfies the arborescence property (sanity of the gadget). *)
  let inst = C.Worst_case.idom_graph ~levels:3 in
  let g = inst.C.Worst_case.graph in
  let cache = cache_of g in
  let net = inst.C.Worst_case.net in
  let t = C.Idom.solve cache ~net in
  ignore g;
  Alcotest.(check bool) "IDOM output is an arborescence" true
    (C.Eval.is_arborescence cache ~net ~tree:t);
  Alcotest.(check bool) "reference within 1e-9 of 2 + n*eps" true
    (Float.abs (inst.C.Worst_case.reference_cost -. (2. +. (14. /. 1024.))) < 1e-9)

let test_fig14_ratio_grows () =
  let ratio levels =
    let inst = C.Worst_case.idom_graph ~levels in
    let cache = cache_of inst.C.Worst_case.graph in
    let c = G.Tree.cost inst.C.Worst_case.graph (C.Idom.solve cache ~net:inst.C.Worst_case.net) in
    c /. inst.C.Worst_case.reference_cost
  in
  Alcotest.(check bool) "ratio grows with levels" true (ratio 5 > ratio 3 +. 0.5)

let test_generators_reject_bad_args () =
  Alcotest.check_raises "pfa_graph k=1" (Invalid_argument "Worst_case.pfa_graph: k >= 2 required")
    (fun () -> ignore (C.Worst_case.pfa_graph ~k:1));
  Alcotest.check_raises "pfa_grid n=1" (Invalid_argument "Worst_case.pfa_grid: n >= 2 required")
    (fun () -> ignore (C.Worst_case.pfa_grid ~n:1));
  Alcotest.check_raises "idom_graph levels=0"
    (Invalid_argument "Worst_case.idom_graph: 1 <= levels <= 16") (fun () ->
      ignore (C.Worst_case.idom_graph ~levels:0))

let () =
  Alcotest.run "fr_core worst cases"
    [
      ( "fig10",
        [
          Alcotest.test_case "PFA linear blowup, IDOM optimal" `Quick test_fig10_pfa_linear_blowup;
          Alcotest.test_case "ratio grows with k" `Quick test_fig10_ratio_grows;
          Alcotest.test_case "PFA keeps optimal pathlengths" `Quick test_fig10_pfa_still_arborescence;
        ] );
      ( "fig11",
        [
          Alcotest.test_case "staircase DP small cases" `Quick test_staircase_opt_small;
          Alcotest.test_case "PFA within [1,2]x opt on staircase" `Quick test_fig11_pfa_vs_opt;
          Alcotest.test_case "PFA suboptimal on congested grid" `Quick
            test_pfa_suboptimal_on_congested_grid;
          Alcotest.test_case "PFA arborescence on grid" `Quick test_fig11_pfa_arborescence;
          Alcotest.test_case "DP bounded by Steiner/comb" `Quick test_fig11_opt_is_feasible_lower_bound;
        ] );
      ( "fig14",
        [
          Alcotest.test_case "IDOM picks the decoy chain" `Quick test_fig14_idom_logarithmic;
          Alcotest.test_case "gadget sanity" `Quick test_fig14_good_boxes_feasible;
          Alcotest.test_case "ratio grows with levels" `Quick test_fig14_ratio_grows;
        ] );
      ("guards", [ Alcotest.test_case "bad args" `Quick test_generators_reject_bad_args ]);
    ]
