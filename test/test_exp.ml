(* Tests for the experiment harnesses (small configurations). *)

module G = Fr_graph
module C = Fr_core
module E = Fr_exp
module Rng = Fr_util.Rng

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Congestion model                                                   *)
(* ------------------------------------------------------------------ *)

let test_congestion_levels () =
  Alcotest.(check (list (pair string int)))
    "levels"
    [ ("none", 0); ("low", 10); ("medium", 20) ]
    E.Congestion.levels

let test_congestion_none () =
  let grid = E.Congestion.congested_grid (Rng.make 1) ~k:0 in
  Alcotest.(check (float 1e-9)) "w = 1.00" 1. (G.Gstate.mean_edge_weight grid.G.Grid.graph)

let test_congestion_calibration () =
  (* The paper reports w ~ 1.28 at k=10 and w ~ 1.55 at k=20; our model
     must land in the same band. *)
  let mean k seed =
    G.Gstate.mean_edge_weight (E.Congestion.congested_grid (Rng.make seed) ~k).G.Grid.graph
  in
  let avg k = Fr_util.Stats.mean (List.map (mean k) [ 1; 2; 3; 4; 5 ]) in
  let w10 = avg 10 and w20 = avg 20 in
  Alcotest.(check bool)
    (Printf.sprintf "k=10 -> w=%.2f in [1.15,1.45]" w10)
    true
    (w10 > 1.15 && w10 < 1.45);
  Alcotest.(check bool)
    (Printf.sprintf "k=20 -> w=%.2f in [1.35,1.75]" w20)
    true
    (w20 > 1.35 && w20 < 1.75)

let test_congestion_size_override () =
  let grid = E.Congestion.congested_grid ~width:8 ~height:6 (Rng.make 2) ~k:3 in
  Alcotest.(check int) "nodes" 48 (G.Gstate.num_nodes grid.G.Grid.graph)

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let sections = lazy (E.Table1.run ~nets_per_config:4 ~seed:9 ~sizes:[ 5 ] ())

let test_table1_structure () =
  let s = Lazy.force sections in
  Alcotest.(check int) "three congestion levels" 3 (List.length s);
  List.iter
    (fun sec ->
      Alcotest.(check int) "one net size" 1 (List.length sec.E.Table1.by_size);
      let _, rows = List.hd sec.E.Table1.by_size in
      Alcotest.(check int) "eight algorithms" 8 (List.length rows))
    s

let test_table1_invariants () =
  let s = Lazy.force sections in
  List.iter
    (fun sec ->
      let _, rows = List.hd sec.E.Table1.by_size in
      let find name = List.find (fun r -> r.E.Table1.alg = name) rows in
      (* KMB is its own wirelength reference. *)
      Alcotest.(check (float 1e-9)) "KMB wire = 0" 0. (find "KMB").E.Table1.wire_pct;
      (* Arborescence algorithms have optimal pathlength. *)
      List.iter
        (fun name ->
          Alcotest.(check (float 1e-6)) (name ^ " path = 0") 0. (find name).E.Table1.path_pct)
        [ "DJKA"; "DOM"; "PFA"; "IDOM" ];
      (* The iterated construction never loses to its base. *)
      Alcotest.(check bool) "IKMB <= KMB" true ((find "IKMB").E.Table1.wire_pct <= 1e-9);
      (* Steiner algorithms' pathlengths are suboptimal on average. *)
      Alcotest.(check bool) "KMB path >= 0" true ((find "KMB").E.Table1.path_pct >= 0.))
    s

let test_table1_weights_rise_with_k () =
  let s = Lazy.force sections in
  let w level = (List.find (fun x -> x.E.Table1.level = level) s).E.Table1.mean_edge_weight in
  Alcotest.(check bool) "none < low < medium" true (w "none" < w "low" && w "low" < w "medium")

let test_table1_render () =
  let s = Lazy.force sections in
  let text = Fr_util.Tab.to_string (E.Table1.to_table s) in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains text needle))
    [ "Table 1"; "IDOM"; "IZEL"; "medium" ]

(* ------------------------------------------------------------------ *)
(* Paper data                                                          *)
(* ------------------------------------------------------------------ *)

let test_paper_data_lookup () =
  (match E.Paper_data.table1_row ~level:"none" ~alg:"IDOM" with
  | Some r ->
      Alcotest.(check (float 1e-9)) "IDOM wire5" (-5.59) r.E.Paper_data.wire5;
      Alcotest.(check (float 1e-9)) "IDOM path5" 0. r.E.Paper_data.path5
  | None -> Alcotest.fail "missing row");
  Alcotest.(check bool) "unknown level" true
    (E.Paper_data.table1_row ~level:"huge" ~alg:"KMB" = None);
  Alcotest.(check bool) "unknown alg" true (E.Paper_data.table1_row ~level:"none" ~alg:"X" = None)

let test_paper_data_complete () =
  List.iter
    (fun (level, w, rows) ->
      Alcotest.(check int) (level ^ " has 8 rows") 8 (List.length rows);
      Alcotest.(check bool) (level ^ " weight sane") true (w >= 1.0 && w <= 1.6);
      let kmb = List.find (fun r -> r.E.Paper_data.alg = "KMB") rows in
      Alcotest.(check (float 1e-9)) "KMB reference" 0. kmb.E.Paper_data.wire5)
    E.Paper_data.table1;
  Alcotest.(check bool) "ratios transcribed" true
    (E.Paper_data.table2_ratio_cge = 1.22
    && E.Paper_data.table3_ratio_sega = 1.26
    && E.Paper_data.table3_ratio_gbp = 1.17)

(* ------------------------------------------------------------------ *)
(* Router tables (small, fast configurations)                          *)
(* ------------------------------------------------------------------ *)

let test_min_width_term1 () =
  let spec = Option.get (Fr_fpga.Circuits.find_spec "term1") in
  let config = Fr_fpga.Router.config_with ~max_passes:6 () in
  match E.Router_tables.min_width ~config spec with
  | Some (w, stats) ->
      Alcotest.(check bool) (Printf.sprintf "width %d in [5,12]" w) true (w >= 5 && w <= 12);
      Alcotest.(check int) "all nets routed" 88 (List.length stats.Fr_fpga.Router.routed)
  | None -> Alcotest.fail "term1 should route"

let test_table_renderers () =
  (* Rendering accepts rows with and without measurements. *)
  let spec = Option.get (Fr_fpga.Circuits.find_spec "busc") in
  let rows = [ { E.Router_tables.spec; measured = Some 9; wirelength = 1500. } ] in
  let text = Fr_util.Tab.to_string (E.Router_tables.table2_to_table rows) in
  Alcotest.(check bool) "table2 mentions busc" true (contains text "busc");
  Alcotest.(check bool) "table2 mentions CGE" true (contains text "CGE");
  let fail_rows = [ { E.Router_tables.spec; measured = None; wirelength = 0. } ] in
  let text2 = Fr_util.Tab.to_string (E.Router_tables.table2_to_table fail_rows) in
  Alcotest.(check bool) "failure rendered" true (contains text2 "fail")

let test_table4_reuse () =
  let spec = Option.get (Fr_fpga.Circuits.find_spec "9symml") in
  let reuse = [ { E.Router_tables.spec; measured = Some 7; wirelength = 0. } ] in
  let rows = E.Router_tables.table4 ~specs:[ spec ] ~max_passes:4 ~reuse_ikmb:reuse () in
  match rows with
  | [ r ] ->
      Alcotest.(check bool) "ikmb reused" true (r.E.Router_tables.w_ikmb = Some 7);
      Alcotest.(check bool) "pfa measured" true (r.E.Router_tables.w_pfa <> None);
      let text = Fr_util.Tab.to_string (E.Router_tables.table4_to_table rows) in
      Alcotest.(check bool) "table4 renders" true (contains text "9symml")
  | _ -> Alcotest.fail "one row expected"

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let test_fig3 () =
  let text = E.Figures.fig3 () in
  Alcotest.(check bool) "stretch reported" true (contains text "Stretch")

let test_fig4 () =
  let text = E.Figures.fig4 () in
  Alcotest.(check bool) "has all four solutions" true
    (contains text "KMB (a)" && contains text "IDOM (d)")

let test_fig6_trace () =
  let text = E.Figures.fig6 () in
  Alcotest.(check bool) "initial cost shown" true (contains text "initial KMB cost");
  Alcotest.(check bool) "S2 accepted" true (contains text "S2");
  Alcotest.(check bool) "cost improves to 5.00" true (contains text "5.00")

let test_fig13_trace () =
  let text = E.Figures.fig13 () in
  Alcotest.(check bool) "two-step trace" true (contains text "14.00 -> 8.00 -> 7.00");
  Alcotest.(check bool) "both hubs" true (contains text "M1, M2")

let test_fig10_11_14 () =
  Alcotest.(check bool) "fig10" true (contains (E.Figures.fig10 ~ks:[ 4; 6 ] ()) "PFA/OPT");
  Alcotest.(check bool) "fig11" true (contains (E.Figures.fig11 ~ns:[ 4 ] ()) "OPT");
  Alcotest.(check bool) "fig14" true
    (contains (E.Figures.fig14 ~levels_list:[ 2; 3 ] ()) "IDOM/OPT")

let test_fig16_small () =
  (* Render a small circuit rather than busc to keep the test fast. *)
  let text = E.Figures.fig16 ~circuit:"term1" ~channel_width:10 () in
  Alcotest.(check bool) "routed map rendered" true (contains text "routed term1");
  Alcotest.(check bool) "unknown circuit" true
    (contains (E.Figures.fig16 ~circuit:"zzz" ()) "unknown circuit")

let () =
  Alcotest.run "fr_exp"
    [
      ( "congestion",
        [
          Alcotest.test_case "levels" `Quick test_congestion_levels;
          Alcotest.test_case "no congestion" `Quick test_congestion_none;
          Alcotest.test_case "calibration vs paper" `Quick test_congestion_calibration;
          Alcotest.test_case "size override" `Quick test_congestion_size_override;
        ] );
      ( "table1",
        [
          Alcotest.test_case "structure" `Quick test_table1_structure;
          Alcotest.test_case "invariants" `Quick test_table1_invariants;
          Alcotest.test_case "weights rise with k" `Quick test_table1_weights_rise_with_k;
          Alcotest.test_case "rendering" `Quick test_table1_render;
        ] );
      ( "paper_data",
        [
          Alcotest.test_case "lookup" `Quick test_paper_data_lookup;
          Alcotest.test_case "complete" `Quick test_paper_data_complete;
        ] );
      ( "router_tables",
        [
          Alcotest.test_case "term1 min width" `Slow test_min_width_term1;
          Alcotest.test_case "renderers" `Quick test_table_renderers;
          Alcotest.test_case "table4 reuse" `Slow test_table4_reuse;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig3" `Quick test_fig3;
          Alcotest.test_case "fig4" `Quick test_fig4;
          Alcotest.test_case "fig6 trace" `Quick test_fig6_trace;
          Alcotest.test_case "fig13 trace" `Quick test_fig13_trace;
          Alcotest.test_case "worst-case figures" `Quick test_fig10_11_14;
          Alcotest.test_case "fig16" `Slow test_fig16_small;
        ] );
    ]
