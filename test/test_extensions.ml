(* Tests for the extension algorithms: AHHK and BRBC (the paper's §2
   related-work tradeoff methods), Mehlhorn's fast KMB variant, and the
   batched IGMST mode. *)

module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng

let random_instance seed ~n ~m ~k =
  let rng = Rng.make seed in
  let g = G.Random_graph.connected rng ~n ~m ~wmin:0.5 ~wmax:3. in
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k) in
  (g, net)

let star_triangle () =
  let g = G.Wgraph.create 4 in
  ignore (G.Wgraph.add_edge g 0 1 1.9);
  ignore (G.Wgraph.add_edge g 1 2 1.9);
  ignore (G.Wgraph.add_edge g 0 2 1.9);
  ignore (G.Wgraph.add_edge g 0 3 1.);
  ignore (G.Wgraph.add_edge g 1 3 1.);
  ignore (G.Wgraph.add_edge g 2 3 1.);
  G.Gstate.of_builder g

(* ------------------------------------------------------------------ *)
(* AHHK                                                               *)
(* ------------------------------------------------------------------ *)

let test_ahhk_c1_is_spt () =
  let g, net = random_instance 3 ~n:30 ~m:70 ~k:6 in
  let cache = G.Dist_cache.create g in
  let tree = C.Ahhk.solve ~c:1. cache ~net in
  Alcotest.(check bool) "arborescence at c=1" true (C.Eval.is_arborescence cache ~net ~tree);
  Alcotest.(check (float 1e-9)) "radius ratio 1" 1.
    (C.Ahhk.max_radius_ratio cache ~net ~tree)

let test_ahhk_c0_is_mst_like () =
  (* c=0 is Prim: the tree restricted to terminals costs no more than the
     pruned MST of the whole graph; at least it must be a valid tree. *)
  let g, net = random_instance 4 ~n:30 ~m:70 ~k:6 in
  let cache = G.Dist_cache.create g in
  let tree = C.Ahhk.solve ~c:0. cache ~net in
  Alcotest.(check bool) "valid" true (C.Eval.check cache ~net ~tree = Ok ())

let test_ahhk_rejects_bad_c () =
  let g, net = random_instance 5 ~n:10 ~m:20 ~k:3 in
  let cache = G.Dist_cache.create g in
  Alcotest.check_raises "c out of range" (Invalid_argument "Ahhk.solve: c outside [0,1]")
    (fun () -> ignore (C.Ahhk.solve ~c:1.5 cache ~net))

let test_ahhk_unroutable () =
  let g = G.Wgraph.create 3 in
  ignore (G.Wgraph.add_edge g 0 1 1.);
  let g = G.Gstate.of_builder g in
  let cache = G.Dist_cache.create g in
  let net = C.Net.make ~source:0 ~sinks:[ 2 ] in
  Alcotest.check_raises "disconnected" (C.Routing_err.Unroutable "AHHK") (fun () ->
      ignore (C.Ahhk.solve ~c:0.5 cache ~net))

let prop_ahhk_valid_all_c =
  QCheck.Test.make ~name:"AHHK valid trees across the c range" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 0 4))
    (fun (seed, ci) ->
      let c = float_of_int ci /. 4. in
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let cache = G.Dist_cache.create g in
      let tree = C.Ahhk.solve ~c cache ~net in
      C.Eval.check cache ~net ~tree = Ok ())

let test_ahhk_tradeoff_direction () =
  (* Over a fixed batch: radius dilation shrinks as c grows. *)
  let total_ratio c =
    let acc = ref 0. in
    for seed = 0 to 14 do
      let g, net = random_instance seed ~n:30 ~m:70 ~k:6 in
      let cache = G.Dist_cache.create g in
      let tree = C.Ahhk.solve ~c cache ~net in
      acc := !acc +. C.Ahhk.max_radius_ratio cache ~net ~tree
    done;
    !acc
  in
  Alcotest.(check bool) "radius(c=0) >= radius(c=1)" true (total_ratio 0. >= total_ratio 1. -. 1e-9)

(* ------------------------------------------------------------------ *)
(* BRBC                                                               *)
(* ------------------------------------------------------------------ *)

let test_brbc_radius_bound () =
  List.iter
    (fun epsilon ->
      for seed = 0 to 9 do
        let g, net = random_instance seed ~n:30 ~m:70 ~k:6 in
        let cache = G.Dist_cache.create g in
        let tree = C.Brbc.solve ~epsilon cache ~net in
        Alcotest.(check bool)
          (Printf.sprintf "eps=%.2f seed=%d bound" epsilon seed)
          true
          (C.Brbc.radius_bound_holds ~epsilon cache ~net ~tree);
        Alcotest.(check bool) "valid" true (C.Eval.check cache ~net ~tree = Ok ())
      done)
    [ 0.; 0.25; 1.; 4. ]

let test_brbc_eps0_is_arborescence () =
  let g, net = random_instance 8 ~n:30 ~m:70 ~k:6 in
  let cache = G.Dist_cache.create g in
  let tree = C.Brbc.solve ~epsilon:0. cache ~net in
  Alcotest.(check bool) "eps=0 -> shortest paths" true
    (C.Eval.is_arborescence cache ~net ~tree)

let test_brbc_relaxation_saves_wire () =
  (* Over a fixed batch, a generous radius budget can only help wirelength. *)
  let total epsilon =
    let acc = ref 0. in
    for seed = 0 to 14 do
      let g, net = random_instance seed ~n:30 ~m:70 ~k:6 in
      let cache = G.Dist_cache.create g in
      acc := !acc +. G.Tree.cost g (C.Brbc.solve ~epsilon cache ~net)
    done;
    !acc
  in
  Alcotest.(check bool) "wire(eps=4) <= wire(eps=0)" true (total 4. <= total 0. +. 1e-6)

let test_brbc_rejects_negative_eps () =
  let g, net = random_instance 9 ~n:10 ~m:20 ~k:3 in
  let cache = G.Dist_cache.create g in
  Alcotest.check_raises "negative eps" (Invalid_argument "Brbc.solve: epsilon < 0") (fun () ->
      ignore (C.Brbc.solve ~epsilon:(-1.) cache ~net))

let test_brbc_two_pin () =
  let g = star_triangle () in
  let cache = G.Dist_cache.create g in
  let net = C.Net.make ~source:0 ~sinks:[ 1 ] in
  let tree = C.Brbc.solve ~epsilon:1. cache ~net in
  Alcotest.(check (float 1e-9)) "shortest path" 1.9 (G.Tree.cost g tree)

(* ------------------------------------------------------------------ *)
(* Mehlhorn                                                           *)
(* ------------------------------------------------------------------ *)

let test_mehlhorn_star_triangle () =
  let g = star_triangle () in
  let t = C.Mehlhorn.solve g ~terminals:[ 0; 1; 2 ] in
  Alcotest.(check bool) "valid spanning tree" true
    (G.Tree.is_tree g t && G.Tree.spans g t [ 0; 1; 2 ]);
  (* Like KMB, the Voronoi variant has ratio 2(1-1/L); here either the
     triangle (3.8) or the hub star (3.0) is acceptable. *)
  let c = G.Tree.cost g t in
  Alcotest.(check bool) "within 2x opt" true (c <= 6.0 +. 1e-9 && c >= 3.0 -. 1e-9)

let test_mehlhorn_voronoi () =
  let g = star_triangle () in
  let owner, dist = C.Mehlhorn.voronoi g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "terminal owns itself" 0 owner.(0);
  Alcotest.(check (float 1e-9)) "terminal dist 0" 0. dist.(1);
  Alcotest.(check bool) "hub owned by someone" true (owner.(3) = 0 || owner.(3) = 1);
  Alcotest.(check (float 1e-9)) "hub dist 1" 1. dist.(3)

let test_mehlhorn_trivial () =
  let g = star_triangle () in
  Alcotest.(check int) "single terminal" 0
    (List.length (C.Mehlhorn.solve g ~terminals:[ 2 ]).G.Tree.edges)

let test_mehlhorn_unroutable () =
  let g = G.Wgraph.create 3 in
  ignore (G.Wgraph.add_edge g 0 1 1.);
  let g = G.Gstate.of_builder g in
  Alcotest.check_raises "disconnected" (C.Routing_err.Unroutable "Mehlhorn") (fun () ->
      ignore (C.Mehlhorn.solve g ~terminals:[ 0; 2 ]))

let prop_mehlhorn_two_approx =
  QCheck.Test.make ~name:"Mehlhorn within 2x exact, valid trees" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:18 ~m:40 ~k:4 in
      let terminals = C.Net.terminals net in
      let t = C.Mehlhorn.solve g ~terminals in
      let opt = C.Exact.steiner_cost g ~terminals in
      let c = G.Tree.cost g t in
      G.Tree.is_tree g t && G.Tree.spans g t terminals && c <= (2. *. opt) +. 1e-6)

let prop_mehlhorn_close_to_kmb =
  QCheck.Test.make ~name:"Mehlhorn within 1.5x of KMB on random nets" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let terminals = C.Net.terminals net in
      let cache = G.Dist_cache.create g in
      let mk = C.Mehlhorn.cost g ~terminals in
      let kk = C.Kmb.cost cache ~terminals in
      (* Both are 2-approximations of the same optimum. *)
      mk <= (2. *. kk) +. 1e-6 && kk <= (2. *. mk) +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Batched IGMST                                                      *)
(* ------------------------------------------------------------------ *)

let test_batched_finds_star_optimum () =
  let g = star_triangle () in
  let cache = G.Dist_cache.create g in
  let t = C.Igmst.solve ~batched:true C.Igmst.kmb cache ~terminals:[ 0; 1; 2 ] in
  Alcotest.(check (float 1e-9)) "optimal" 3. (G.Tree.cost g t)

let prop_batched_never_worse_than_kmb =
  QCheck.Test.make ~name:"batched IKMB <= KMB" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:30 ~m:70 ~k:5 in
      let cache = G.Dist_cache.create g in
      let terminals = C.Net.terminals net in
      let b = G.Tree.cost g (C.Igmst.solve ~batched:true C.Igmst.kmb cache ~terminals) in
      let k = C.Kmb.cost cache ~terminals in
      b <= k +. 1e-6)

let prop_batched_close_to_sequential =
  QCheck.Test.make ~name:"batched IKMB within 10% of sequential IKMB" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, net = random_instance seed ~n:25 ~m:60 ~k:5 in
      let cache = G.Dist_cache.create g in
      let terminals = C.Net.terminals net in
      let b = G.Tree.cost g (C.Igmst.solve ~batched:true C.Igmst.kmb cache ~terminals) in
      let s = G.Tree.cost g (C.Igmst.ikmb cache ~terminals) in
      b <= (1.10 *. s) +. 1e-6)

let () =
  Alcotest.run "fr_core extensions"
    [
      ( "ahhk",
        [
          Alcotest.test_case "c=1 is SPT" `Quick test_ahhk_c1_is_spt;
          Alcotest.test_case "c=0 is Prim-like" `Quick test_ahhk_c0_is_mst_like;
          Alcotest.test_case "rejects bad c" `Quick test_ahhk_rejects_bad_c;
          Alcotest.test_case "unroutable" `Quick test_ahhk_unroutable;
          Alcotest.test_case "tradeoff direction" `Quick test_ahhk_tradeoff_direction;
          QCheck_alcotest.to_alcotest prop_ahhk_valid_all_c;
        ] );
      ( "brbc",
        [
          Alcotest.test_case "radius bound holds" `Quick test_brbc_radius_bound;
          Alcotest.test_case "eps=0 is SPT" `Quick test_brbc_eps0_is_arborescence;
          Alcotest.test_case "relaxation saves wire" `Quick test_brbc_relaxation_saves_wire;
          Alcotest.test_case "rejects negative eps" `Quick test_brbc_rejects_negative_eps;
          Alcotest.test_case "two-pin" `Quick test_brbc_two_pin;
        ] );
      ( "mehlhorn",
        [
          Alcotest.test_case "star-triangle" `Quick test_mehlhorn_star_triangle;
          Alcotest.test_case "voronoi" `Quick test_mehlhorn_voronoi;
          Alcotest.test_case "trivial" `Quick test_mehlhorn_trivial;
          Alcotest.test_case "unroutable" `Quick test_mehlhorn_unroutable;
          QCheck_alcotest.to_alcotest prop_mehlhorn_two_approx;
          QCheck_alcotest.to_alcotest prop_mehlhorn_close_to_kmb;
        ] );
      ( "batched igmst",
        [
          Alcotest.test_case "star optimum" `Quick test_batched_finds_star_optimum;
          QCheck_alcotest.to_alcotest prop_batched_never_worse_than_kmb;
          QCheck_alcotest.to_alcotest prop_batched_close_to_sequential;
        ] );
    ]
