(* Differential suite: every heuristic vs the exact Steiner reference on a
   bed of seeded random graphs.

   For ~50 seeded Random_graph instances each construction must return a
   structurally valid tree (Eval.check) and stay within its paper bound
   against the Dreyfus–Wagner optimum:

     - KMB / IKMB   <= 2(1 - 1/k) * OPT   (Kou–Markowsky–Berman bound,
                                           k = terminal count >= leaf count)
     - ZEL / IZEL   <= 11/6 * OPT         (Zelikovsky's bound)
     - IKMB <= KMB, IZEL <= ZEL           (iteration never hurts)
     - DOM / PFA / IDOM                   arborescences (optimal pathlength
                                           to every sink, Eval.metrics)
     - every Steiner tree >= OPT          (the reference really is a lower
                                           bound) *)

module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng

let eps = 1e-6
let seeds = List.init 50 (fun i -> 7100 + i)

(* Small enough that Exact (O(3^k n)) stays fast, large enough that the
   heuristics face nontrivial Steiner structure. *)
let instance seed =
  let rng = Rng.make seed in
  let n = 15 + Rng.int rng 16 in
  let m = (2 * n) + Rng.int rng n in
  let g = G.Random_graph.connected rng ~n ~m ~wmin:0.5 ~wmax:4. in
  let k = 4 + Rng.int rng 2 in
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k) in
  (g, net)

let solve_cost cache net alg =
  let tree = alg.C.Routing_alg.solve cache ~net in
  (match C.Eval.check cache ~net ~tree with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "%s returned an invalid tree: %s" alg.C.Routing_alg.name msg);
  let m = C.Eval.metrics cache ~net ~tree in
  (match alg.C.Routing_alg.kind with
  | C.Routing_alg.Arborescence ->
      if not m.C.Eval.arborescence then
        Alcotest.failf "%s is not an arborescence (max_path %.6f vs opt %.6f)"
          alg.C.Routing_alg.name m.C.Eval.max_path m.C.Eval.opt_max_path
  | C.Routing_alg.Steiner -> ());
  m.C.Eval.cost

let check_bound ~seed ~name ~ratio ~opt cost =
  if cost > (ratio *. opt) +. eps then
    Alcotest.failf "seed %d: %s cost %.6f exceeds %.4f * OPT (%.6f)" seed name
      cost ratio opt;
  if cost < opt -. eps then
    Alcotest.failf "seed %d: %s cost %.6f beats the exact optimum %.6f" seed
      name cost opt

let test_one seed =
  let g, net = instance seed in
  let cache = G.Dist_cache.create g in
  let terminals = C.Net.terminals net in
  let opt = C.Exact.steiner_cost g ~terminals in
  let k = float_of_int (List.length terminals) in
  let kmb_ratio = 2. *. (1. -. (1. /. k)) in
  let cost name = solve_cost cache net (Option.get (C.Routing_alg.by_name name)) in
  let kmb = cost "KMB" and ikmb = cost "IKMB" in
  let zel = cost "ZEL" and izel = cost "IZEL" in
  check_bound ~seed ~name:"KMB" ~ratio:kmb_ratio ~opt kmb;
  check_bound ~seed ~name:"IKMB" ~ratio:kmb_ratio ~opt ikmb;
  check_bound ~seed ~name:"ZEL" ~ratio:(11. /. 6.) ~opt zel;
  check_bound ~seed ~name:"IZEL" ~ratio:(11. /. 6.) ~opt izel;
  if ikmb > kmb +. eps then
    Alcotest.failf "seed %d: IKMB (%.6f) worse than KMB (%.6f)" seed ikmb kmb;
  if izel > zel +. eps then
    Alcotest.failf "seed %d: IZEL (%.6f) worse than ZEL (%.6f)" seed izel zel;
  (* Arborescence validity + structural checks for DOM/PFA/IDOM run inside
     solve_cost; their wirelength has no OPT-relative guarantee. *)
  List.iter
    (fun name -> ignore (cost name))
    [ "DOM"; "PFA"; "IDOM" ]

let test_differential () = List.iter test_one seeds

(* The exact reference itself must produce a valid spanning tree. *)
let test_exact_is_valid () =
  List.iter
    (fun seed ->
      let g, net = instance seed in
      let terminals = C.Net.terminals net in
      let tree = C.Exact.steiner g ~terminals in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: exact tree is a tree" seed)
        true (G.Tree.is_tree g tree);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: exact tree spans" seed)
        true
        (G.Tree.spans g tree terminals))
    [ 7100; 7111; 7122; 7133; 7144 ]

let () =
  Alcotest.run "differential"
    [
      ( "heuristics-vs-exact",
        [
          Alcotest.test_case "50 seeded graphs, all algorithms in bounds" `Slow
            test_differential;
          Alcotest.test_case "exact reference validity" `Quick
            test_exact_is_valid;
        ] );
    ]
