(* Fixture: prints from library code, but the fixture allowlist carries an
   entry for this file, so the finding is suppressed file-wide. *)

let hello () = print_endline "hello"
