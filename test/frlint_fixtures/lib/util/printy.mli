(* Fixture interface: present so mli-required stays quiet for this file. *)

val hello : unit -> unit
