(* Fixture: no-obj-magic, no-silent-catch-all, and no-print-in-lib each
   fire once here. *)

let coerce x = Obj.magic x (* finding: no-obj-magic *)

let swallow f = try f () with _ -> 0 (* finding: no-silent-catch-all *)

let shout x =
  Printf.printf "%d\n" x (* finding: no-print-in-lib *)
