(* Fixture interface: present so mli-required stays quiet for this file. *)

val coerce : 'a -> 'b
val swallow : (unit -> int) -> int
val shout : int -> unit
