(* Fixture: no-polymorphic-compare fires on computed operands, but stays
   quiet for scalar idents, literals, and pure arithmetic. *)

let same_length a b = List.length a = List.length b (* finding *)

let order a b = compare (List.rev a) (List.rev b) (* finding *)

let fine_ident x y = x = y (* trivial operands: no finding *)

let fine_literal n = n = 0 (* literal operand: no finding *)

let fine_arith n m = n < 0 || m <> n - 1 (* arithmetic is trivial: no finding *)

let sort_ids xs = List.sort_uniq compare xs (* finding: bare compare as argument *)

let fine_typed xs = List.sort_uniq Int.compare xs (* typed comparator: no finding *)
