val same_list : 'a list -> 'a list -> bool

val different_strings : string -> string -> bool

type cell = { mutable v : int }

val same_cell : cell -> cell -> bool
