(* Fixture: an inline [frlint: allow] comment silences one site only. *)

let contains xs x = List.mem x xs (* frlint: allow no-linear-scan — fixture exercising inline suppression *)
