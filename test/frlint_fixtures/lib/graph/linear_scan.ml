(* Fixture: no-linear-scan must fire twice in this hot-library path. *)

let contains xs x = List.mem x xs

let lookup tbl k = List.assoc_opt k tbl
