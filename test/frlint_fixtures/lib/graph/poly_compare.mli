(* Fixture interface: present so mli-required stays quiet for this file. *)

val same_length : 'a list -> 'b list -> bool
val order : 'a list -> 'a list -> int
val fine_ident : 'a -> 'a -> bool
val fine_literal : int -> bool
val fine_arith : int -> int -> bool
