(* Fixture interface: present so mli-required stays quiet for this file. *)

val contains : 'a list -> 'a -> bool
