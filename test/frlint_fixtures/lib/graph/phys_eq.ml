(* Fixture for no-physical-equality: == and != on structured values in a
   hot library.  The suppressed site shows the inline escape hatch for
   intentional identity tests on mutable values. *)

let same_list a b = a == b

let different_strings a b = a != b

type cell = { mutable v : int }

(* frlint: allow no-physical-equality — identity of a mutable cell is the point *)
let same_cell (a : cell) (b : cell) = a == b
