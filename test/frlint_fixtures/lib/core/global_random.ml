(* Fixture: the global PRNG is forbidden in hot library code; explicit
   Random.State (Fr_util.Rng) threading is the sanctioned form. *)

let bad_pick n = Random.int n
let bad_jitter x = x +. Stdlib.Random.float 1.0

(* Explicit-state randomness must NOT fire the rule. *)
let good_pick st n = Random.State.int st n
