(* Fixture interface: present so mli-required stays quiet for this file. *)

val mem_fast : ('a, unit) Hashtbl.t -> 'a -> bool
val checked : int -> int
