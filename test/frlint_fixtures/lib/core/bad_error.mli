(* Fixture interface: present so mli-required stays quiet for this file. *)

val wrong_module : unit -> 'a
val no_prefix : int -> unit
val wrong_function : unit -> 'a
val correct : int -> unit
val outer : unit -> unit
