(* Fixture: a hot-library file with nothing to report. *)

let mem_fast tbl x = Hashtbl.mem tbl x

let checked n = if n < 0 then invalid_arg "Clean.checked: negative input" else n
