(* Fixture: error-names-entry-point fires on messages that name the wrong
   module or function, or carry no entry-point prefix at all. *)

let wrong_module () = failwith "Other.f: boom" (* finding *)

let no_prefix n = if n < 0 then invalid_arg "negative input" (* finding *)

let wrong_function () = raise (Invalid_argument "Bad_error.elsewhere: boom") (* finding *)

let correct n = if n < 0 then invalid_arg "Bad_error.correct: negative input"

let outer () =
  (* inner helpers may name their public caller *)
  let rec loop n = if n = 0 then failwith "Bad_error.outer: expired" else loop (n - 1) in
  loop 3
