val bad_pick : int -> int
val bad_jitter : float -> float
val good_pick : Random.State.t -> int -> int
