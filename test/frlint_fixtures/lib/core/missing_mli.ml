(* Fixture: a library module with no interface file — mli-required fires. *)

let id x = x
