(* Tests for the serve layer: the JSON codec, the daemon wire protocol,
   and the incremental (ECO) routing sessions it fronts — including the
   differential-exactness contract (an ECO apply must reproduce the
   from-scratch route of the edited netlist bit-for-bit) and a live
   in-process daemon round-trip over a Unix socket. *)

module F = Fr_fpga
module S = Fr_serve

let pin row col side slot = { F.Netlist.row; col; side; slot }

(* Same tiny 3-net circuit the router tests use. *)
let tiny_circuit () =
  let nets =
    [
      F.Netlist.make_net ~name:"a" ~source:(pin 0 0 F.Rrg.East 0)
        ~sinks:[ pin 2 3 F.Rrg.West 0; pin 3 1 F.Rrg.North 0 ];
      F.Netlist.make_net ~name:"b" ~source:(pin 1 1 F.Rrg.South 0) ~sinks:[ pin 1 4 F.Rrg.South 0 ];
      F.Netlist.make_net ~name:"c" ~source:(pin 3 4 F.Rrg.North 1)
        ~sinks:[ pin 0 4 F.Rrg.East 1; pin 0 0 F.Rrg.West 1; pin 2 2 F.Rrg.East 0 ];
    ]
  in
  { F.Netlist.circuit_name = "tiny"; rows = 4; cols = 5; nets }

let arch_of (c : F.Netlist.circuit) w =
  F.Arch.xc4000 ~rows:c.F.Netlist.rows ~cols:c.F.Netlist.cols ~channel_width:w

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let reparse v =
  match S.Json.of_string (S.Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let v =
    S.Json.(
      Obj
        [
          ("a", Arr [ Num 1.; Num (-2.5); Null; Bool true; Bool false ]);
          ("s", Str "he\"llo\\ \n\t ctrl:\x01");
          ("empty_obj", Obj []);
          ("empty_arr", Arr []);
          ("big", Num 123456789012.);
        ])
  in
  Alcotest.(check bool) "roundtrip preserves value" true (reparse v = v);
  let line = S.Json.to_string v in
  Alcotest.(check bool) "one frame: no raw newline" true (not (String.contains line '\n'));
  Alcotest.(check string) "integers print exactly" "42" S.Json.(to_string (of_int 42));
  Alcotest.(check (option int)) "int accessor" (Some 42) S.Json.(int (of_int 42));
  Alcotest.(check (option int)) "int rejects fractions" None S.Json.(int (Num 1.5))

let test_json_unicode () =
  (* \u escapes, including a surrogate pair, decode to UTF-8 bytes. *)
  match S.Json.of_string "\"\\u0041\\u00e9\\ud83d\\ude00\\n\"" with
  | Ok (S.Json.Str s) -> Alcotest.(check string) "utf-8" "A\xc3\xa9\xf0\x9f\x98\x80\n" s
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.failf "unicode parse failed: %s" e

let test_json_rejects () =
  let bad s =
    match S.Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed JSON %S" s
  in
  bad "{\"a\":1,}";
  bad "[1] garbage";
  bad "tru";
  bad "\"unterminated";
  bad "{\"a\" 1}";
  bad ""

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let parse_line s =
  match S.Json.of_string s with
  | Error e -> Alcotest.failf "bad test JSON: %s" e
  | Ok j -> S.Protocol.parse_request j

let test_protocol_parse_route () =
  match
    parse_line
      {|{"cmd":"route","circuit":"x","width":6,"mode":"negotiated","domains":2,"max_passes":5}|}
  with
  | Ok (S.Protocol.Route r) ->
      Alcotest.(check string) "circuit" "x" r.S.Protocol.circuit_text;
      Alcotest.(check int) "width" 6 r.S.Protocol.width;
      Alcotest.(check int) "domains" 2 r.S.Protocol.domains;
      Alcotest.(check bool) "mode" true (r.S.Protocol.mode = F.Router.Negotiated);
      Alcotest.(check (option int)) "max_passes" (Some 5) r.S.Protocol.max_passes
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error e -> Alcotest.failf "route parse failed: %s" e

let test_protocol_parse_route_defaults () =
  match parse_line {|{"cmd":"route","circuit":"x","width":4}|} with
  | Ok (S.Protocol.Route r) ->
      Alcotest.(check bool) "mode defaults to waves" true (r.S.Protocol.mode = F.Router.Waves);
      Alcotest.(check int) "domains default 1" 1 r.S.Protocol.domains;
      Alcotest.(check (option int)) "no pass cap" None r.S.Protocol.max_passes
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error e -> Alcotest.failf "route parse failed: %s" e

let test_protocol_parse_eco () =
  match
    parse_line
      {|{"cmd":"eco","deltas":[{"op":"remove","name":"a"},{"op":"retime","name":"b","source":"1,4,S,0","sinks":["1,1,S,0"]},{"op":"add","net":"net d 2,0,S,0 2,1,S,0"}]}|}
  with
  | Ok (S.Protocol.Eco [ d1; d2; d3 ]) ->
      Alcotest.(check bool) "remove" true (d1 = F.Router.Eco.Remove_net "a");
      (match d2 with
      | F.Router.Eco.Retime_net (name, src, sinks) ->
          Alcotest.(check string) "retime name" "b" name;
          Alcotest.(check bool) "retime source" true
            (F.Netlist.equal_pin src (pin 1 4 F.Rrg.South 0));
          Alcotest.(check int) "retime sinks" 1 (List.length sinks)
      | _ -> Alcotest.fail "second delta is not a retime");
      (match d3 with
      | F.Router.Eco.Add_net n ->
          Alcotest.(check string) "add name" "d" n.F.Netlist.net_name;
          Alcotest.(check int) "add sinks" 1 (List.length n.F.Netlist.sinks)
      | _ -> Alcotest.fail "third delta is not an add")
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error e -> Alcotest.failf "eco parse failed: %s" e

let test_protocol_parse_rest () =
  Alcotest.(check bool) "stats" true (parse_line {|{"cmd":"stats"}|} = Ok S.Protocol.Stats);
  Alcotest.(check bool) "shutdown" true (parse_line {|{"cmd":"shutdown"}|} = Ok S.Protocol.Shutdown);
  Alcotest.(check bool) "checkpoint save" true
    (parse_line {|{"cmd":"checkpoint"}|} = Ok (S.Protocol.Checkpoint S.Protocol.Save));
  Alcotest.(check bool) "checkpoint restore" true
    (parse_line {|{"cmd":"checkpoint","restore":3}|}
    = Ok (S.Protocol.Checkpoint (S.Protocol.Restore 3)));
  let bad s =
    match parse_line s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed request %s" s
  in
  bad {|{"cmd":"fly"}|};
  bad {|{"nocmd":1}|};
  bad {|{"cmd":"route","width":4}|};
  bad {|{"cmd":"route","circuit":"x","width":4,"mode":"psychic"}|};
  bad {|{"cmd":"eco"}|};
  bad {|{"cmd":"eco","deltas":[{"op":"warp"}]}|};
  bad {|{"cmd":"eco","deltas":[{"op":"retime","name":"b","source":"bogus","sinks":[]}]}|};
  bad {|{"cmd":"checkpoint","restore":"one"}|};
  Alcotest.(check bool) "mode names roundtrip" true
    (S.Protocol.mode_of_name (S.Protocol.mode_name F.Router.Negotiated)
    = Some F.Router.Negotiated)

let test_routing_digest_invariance () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (arch_of circuit 6) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "route failed"
  | Ok s ->
      let d = S.Protocol.routing_digest s.F.Router.routed in
      Alcotest.(check string) "net order does not matter" d
        (S.Protocol.routing_digest (List.rev s.F.Router.routed));
      (match s.F.Router.routed with
      | _ :: rest ->
          Alcotest.(check bool) "a missing net changes the digest" true
            (S.Protocol.routing_digest rest <> d)
      | [] -> Alcotest.fail "no routed nets")

(* ------------------------------------------------------------------ *)
(* Router.Eco differential exactness                                  *)
(* ------------------------------------------------------------------ *)

let scratch_digest ?(config = F.Router.default_config) (circuit : F.Netlist.circuit) ~w =
  let rrg = F.Rrg.build (arch_of circuit w) in
  match F.Router.route ~config rrg circuit with
  | Ok s -> S.Protocol.routing_digest s.F.Router.routed
  | Error _ -> Alcotest.failf "scratch route of %s failed" circuit.F.Netlist.circuit_name

let eco_create ?config ?domains circuit ~w =
  let rrg = F.Rrg.build (arch_of circuit w) in
  match F.Router.Eco.create ?config ?domains rrg circuit with
  | Ok x -> x
  | Error _ -> Alcotest.failf "eco create on %s failed" circuit.F.Netlist.circuit_name

let eco_digest eco = S.Protocol.routing_digest (F.Router.Eco.routed eco)

let test_eco_differential_deltas () =
  List.iter
    (fun mode ->
      let name s = S.Protocol.mode_name mode ^ "/" ^ s in
      let config = F.Router.config_with ~mode () in
      let circuit = tiny_circuit () in
      let eco, es0 = eco_create ~config circuit ~w:6 in
      Alcotest.(check string) (name "create = scratch") (scratch_digest ~config circuit ~w:6)
        (S.Protocol.routing_digest es0.F.Router.Eco.stats.F.Router.routed);
      let check_step step deltas =
        match F.Router.Eco.apply eco deltas with
        | Error _ -> Alcotest.failf "%s: eco apply failed" (name step)
        | Ok es ->
            let edited = F.Router.Eco.circuit eco in
            Alcotest.(check string)
              (name step ^ " = scratch")
              (scratch_digest ~config edited ~w:6) (eco_digest eco);
            Alcotest.(check int)
              (name step ^ " rip accounting")
              es.F.Router.Eco.nets_total
              (es.F.Router.Eco.nets_ripped + es.F.Router.Eco.nets_reused)
      in
      check_step "remove" [ F.Router.Eco.Remove_net "c" ];
      check_step "add"
        [
          F.Router.Eco.Add_net
            (F.Netlist.make_net ~name:"d" ~source:(pin 2 0 F.Rrg.South 0)
               ~sinks:[ pin 2 1 F.Rrg.South 0 ]);
        ];
      check_step "retime"
        [ F.Router.Eco.Retime_net ("b", pin 1 4 F.Rrg.South 0, [ pin 1 1 F.Rrg.South 0 ]) ];
      check_step "mixed"
        [
          F.Router.Eco.Remove_net "d";
          F.Router.Eco.Retime_net ("b", pin 1 1 F.Rrg.South 0, [ pin 1 4 F.Rrg.South 0 ]);
        ];
      F.Router.Eco.close eco)
    [ F.Router.Waves; F.Router.Negotiated ]

let test_eco_invalid_deltas_leave_session () =
  let circuit = tiny_circuit () in
  let eco, _ = eco_create circuit ~w:6 in
  let before = eco_digest eco in
  let nets_before = List.length (F.Router.Eco.circuit eco).F.Netlist.nets in
  let expect_invalid what deltas =
    match F.Router.Eco.apply eco deltas with
    | exception Invalid_argument _ -> ()
    | Ok _ | Error _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  expect_invalid "unknown net removed" [ F.Router.Eco.Remove_net "zz" ];
  expect_invalid "duplicate net name"
    [
      F.Router.Eco.Add_net
        (F.Netlist.make_net ~name:"a" ~source:(pin 2 0 F.Rrg.South 0)
           ~sinks:[ pin 2 1 F.Rrg.South 0 ]);
    ];
  expect_invalid "pin already owned"
    [
      F.Router.Eco.Add_net
        (F.Netlist.make_net ~name:"d" ~source:(pin 1 1 F.Rrg.South 0)
           ~sinks:[ pin 2 1 F.Rrg.South 0 ]);
    ];
  expect_invalid "retime of unknown net"
    [ F.Router.Eco.Retime_net ("zz", pin 2 0 F.Rrg.South 0, [ pin 2 1 F.Rrg.South 0 ]) ];
  Alcotest.(check string) "routing untouched" before (eco_digest eco);
  Alcotest.(check int) "netlist untouched" nets_before
    (List.length (F.Router.Eco.circuit eco).F.Netlist.nets);
  (* The session is still usable after rejected deltas. *)
  (match F.Router.Eco.apply eco [ F.Router.Eco.Remove_net "a" ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "session unusable after a rejected delta");
  Alcotest.(check string) "still differential" (scratch_digest (F.Router.Eco.circuit eco) ~w:6)
    (eco_digest eco);
  F.Router.Eco.close eco

let test_eco_failed_apply_restores_session () =
  (* A 1-track session holding just net b; growing it to the full tiny
     circuit is infeasible at W=1, so the apply must fail and roll the
     session back to a usable single-net state. *)
  let circuit = { (tiny_circuit ()) with F.Netlist.nets = [ List.nth (tiny_circuit ()).F.Netlist.nets 1 ] } in
  let eco, _ = eco_create circuit ~w:1 in
  let before = eco_digest eco in
  let tiny = tiny_circuit () in
  let a = List.nth tiny.F.Netlist.nets 0 and c = List.nth tiny.F.Netlist.nets 2 in
  (match F.Router.Eco.apply eco [ F.Router.Eco.Add_net a; F.Router.Eco.Add_net c ] with
  | Ok _ -> Alcotest.fail "tiny circuit should not route at W=1"
  | Error f -> Alcotest.(check bool) "failure names nets" true (f.F.Router.failed_nets <> []));
  Alcotest.(check int) "netlist restored" 1 (List.length (F.Router.Eco.circuit eco).F.Netlist.nets);
  Alcotest.(check string) "routing restored" before (eco_digest eco);
  (* Still usable: a feasible delta applies after the failed one. *)
  (match
     F.Router.Eco.apply eco
       [
         F.Router.Eco.Add_net
           (F.Netlist.make_net ~name:"d" ~source:(pin 3 0 F.Rrg.South 0)
              ~sinks:[ pin 3 1 F.Rrg.South 0 ]);
       ]
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "session unusable after a failed apply");
  Alcotest.(check string) "differential after recovery"
    (scratch_digest (F.Router.Eco.circuit eco) ~w:1)
    (eco_digest eco);
  F.Router.Eco.close eco

(* ------------------------------------------------------------------ *)
(* Server + Client over a live socket                                 *)
(* ------------------------------------------------------------------ *)

let field name resp = S.Json.member name resp

let field_str name resp =
  match Option.bind (field name resp) S.Json.str with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S: %s" name (S.Json.to_string resp)

let field_int name resp =
  match Option.bind (field name resp) S.Json.int with
  | Some i -> i
  | None -> Alcotest.failf "response lacks int field %S: %s" name (S.Json.to_string resp)

let expect_ok resp =
  match Option.bind (field "ok" resp) S.Json.bool with
  | Some true -> resp
  | _ -> Alcotest.failf "request failed: %s" (S.Json.to_string resp)

let test_server_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fr_serve_test_%d.sock" (Unix.getpid ()))
  in
  let server = S.Server.create ~socket:path in
  let th = Thread.create S.Server.serve_forever server in
  let client = S.Client.connect ~socket:path in
  let request j =
    match S.Client.request client j with
    | Ok resp -> resp
    | Error e -> Alcotest.failf "framing failure: %s" e
  in
  let circuit = tiny_circuit () in
  let route_resp =
    expect_ok
      (request
         (S.Json.Obj
            [
              ("cmd", S.Json.Str "route");
              ("circuit", S.Json.Str (F.Netlist.to_string circuit));
              ("width", S.Json.of_int 6);
            ]))
  in
  Alcotest.(check string) "routed" "routed" (field_str "status" route_resp);
  let d0 = field_str "digest" route_resp in
  Alcotest.(check string) "daemon = local scratch" (scratch_digest circuit ~w:6) d0;
  (* Out-of-session and malformed requests answer ok:false, in-band. *)
  let bad = request (S.Json.Obj [ ("cmd", S.Json.Str "fly") ]) in
  Alcotest.(check bool) "unknown cmd rejected" true
    (Option.bind (field "ok" bad) S.Json.bool = Some false);
  let cp = expect_ok (request (S.Json.Obj [ ("cmd", S.Json.Str "checkpoint") ])) in
  let cp_id = field_int "id" cp in
  let eco_resp =
    expect_ok
      (request
         (S.Json.Obj
            [
              ("cmd", S.Json.Str "eco");
              ( "deltas",
                S.Json.Arr
                  [
                    (* b has the fewest pins, so it routes last: removing it
                       keeps the whole surviving schedule prefix. *)
                    S.Json.Obj
                      [ ("op", S.Json.Str "remove"); ("name", S.Json.Str "b") ];
                  ] );
            ]))
  in
  let edited = { circuit with F.Netlist.nets = List.filter (fun (n : F.Netlist.net) -> n.F.Netlist.net_name <> "b") circuit.F.Netlist.nets } in
  Alcotest.(check string) "eco = local scratch of edited" (scratch_digest edited ~w:6)
    (field_str "digest" eco_resp);
  Alcotest.(check bool) "eco ripped fewer than total" true
    (field_int "nets_ripped" eco_resp < field_int "nets_total" eco_resp
    || field_int "nets_total" eco_resp = 0);
  let restore_resp =
    expect_ok
      (request (S.Json.Obj [ ("cmd", S.Json.Str "checkpoint"); ("restore", S.Json.of_int cp_id) ]))
  in
  Alcotest.(check string) "restore returns to checkpoint routing" d0
    (field_str "digest" restore_resp);
  let stats = expect_ok (request (S.Json.Obj [ ("cmd", S.Json.Str "stats") ])) in
  Alcotest.(check bool) "session live" true
    (Option.bind (field "session" stats) S.Json.bool = Some true);
  Alcotest.(check string) "stats digest agrees" d0 (field_str "digest" stats);
  (* route, checkpoint, eco, restore dispatched before this stats call;
     the malformed "fly" line never reached dispatch. *)
  Alcotest.(check bool) "requests counted" true (field_int "requests" stats >= 4);
  ignore (expect_ok (request (S.Json.Obj [ ("cmd", S.Json.Str "shutdown") ])));
  S.Client.close client;
  Thread.join th;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let () =
  Alcotest.run "fr_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "route request" `Quick test_protocol_parse_route;
          Alcotest.test_case "route defaults" `Quick test_protocol_parse_route_defaults;
          Alcotest.test_case "eco deltas" `Quick test_protocol_parse_eco;
          Alcotest.test_case "other requests & rejects" `Quick test_protocol_parse_rest;
          Alcotest.test_case "digest invariance" `Quick test_routing_digest_invariance;
        ] );
      ( "eco",
        [
          Alcotest.test_case "differential deltas" `Quick test_eco_differential_deltas;
          Alcotest.test_case "invalid deltas rejected" `Quick test_eco_invalid_deltas_leave_session;
          Alcotest.test_case "failed apply restores" `Quick test_eco_failed_apply_restores_session;
        ] );
      ("server", [ Alcotest.test_case "socket roundtrip" `Quick test_server_roundtrip ]);
    ]
