(* Tests for the paper's motivation/extension features: Elmore delay
   evaluation (technology-sensitive routing, §1) and the 3D generalization
   (conclusion, references [1,2]). *)

module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng

(* ------------------------------------------------------------------ *)
(* Delay                                                              *)
(* ------------------------------------------------------------------ *)

(* Source - single wire of length L - sink: analytic Elmore delay is
   Rd*(cL + Cs) + rL*(cL/2 + Cs). *)
let test_elmore_two_pin_analytic () =
  let g = G.Wgraph.create 2 in
  let len = 3. in
  ignore (G.Wgraph.add_edge g 0 1 len);
  let g = G.Gstate.of_builder g in
  let net = C.Net.make ~source:0 ~sinks:[ 1 ] in
  let tree = G.Tree.of_edges [ 0 ] in
  let p = C.Delay.default_params in
  let expected =
    (p.C.Delay.driver_resistance *. ((p.C.Delay.unit_capacitance *. len) +. p.C.Delay.sink_load))
    +. (p.C.Delay.unit_resistance *. len
       *. ((p.C.Delay.unit_capacitance *. len /. 2.) +. p.C.Delay.sink_load))
  in
  match C.Delay.elmore g ~tree ~net with
  | [ (s, d) ] ->
      Alcotest.(check int) "sink" 1 s;
      Alcotest.(check (float 1e-9)) "analytic delay" expected d
  | _ -> Alcotest.fail "one sink expected"

let test_elmore_farther_sink_is_slower () =
  (* A path source - a - b: b's delay must exceed a's. *)
  let g = G.Wgraph.create 3 in
  let e0 = G.Wgraph.add_edge g 0 1 1. in
  let e1 = G.Wgraph.add_edge g 1 2 1. in
  let g = G.Gstate.of_builder g in
  let net = C.Net.make ~source:0 ~sinks:[ 1; 2 ] in
  let tree = G.Tree.of_edges [ e0; e1 ] in
  let delays = C.Delay.elmore g ~tree ~net in
  let d v = List.assoc v delays in
  Alcotest.(check bool) "monotone along path" true (d 2 > d 1);
  Alcotest.(check (float 1e-9)) "max delay" (d 2) (C.Delay.max_delay g ~tree ~net)

let test_elmore_requires_spanning () =
  let g = G.Wgraph.create 3 in
  ignore (G.Wgraph.add_edge g 0 1 1.);
  let g = G.Gstate.of_builder g in
  let net = C.Net.make ~source:0 ~sinks:[ 2 ] in
  Alcotest.check_raises "non-spanning" (Invalid_argument "Delay.elmore: tree does not span net")
    (fun () -> ignore (C.Delay.elmore g ~tree:G.Tree.empty ~net))

let test_elmore_arborescence_helps () =
  (* Over a fixed batch of congested-grid nets, IDOM's critical-sink
     Elmore delay is no worse on total than IKMB's (shorter paths dominate
     the path-R term). *)
  let total_ikmb = ref 0. and total_idom = ref 0. in
  for seed = 0 to 9 do
    let rng = Rng.make seed in
    let grid = Fr_exp.Congestion.congested_grid ~width:14 ~height:14 rng ~k:10 in
    let g = grid.G.Grid.graph in
    let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:6) in
    let cache = G.Dist_cache.create g in
    let t_ikmb = C.Igmst.ikmb cache ~terminals:(C.Net.terminals net) in
    let t_idom = C.Idom.solve cache ~net in
    total_ikmb := !total_ikmb +. C.Delay.max_delay g ~tree:t_ikmb ~net;
    total_idom := !total_idom +. C.Delay.max_delay g ~tree:t_idom ~net
  done;
  Alcotest.(check bool)
    (Printf.sprintf "IDOM delay (%.0f) <= IKMB delay (%.0f)" !total_idom !total_ikmb)
    true
    (!total_idom <= !total_ikmb *. 1.02)

let test_elmore_params_scale () =
  let g = G.Wgraph.create 2 in
  ignore (G.Wgraph.add_edge g 0 1 2.);
  let g = G.Gstate.of_builder g in
  let net = C.Net.make ~source:0 ~sinks:[ 1 ] in
  let tree = G.Tree.of_edges [ 0 ] in
  let base = C.Delay.max_delay g ~tree ~net in
  let params =
    {
      C.Delay.unit_resistance = 2.;
      unit_capacitance = 2.;
      sink_load = 2.;
      driver_resistance = 2.;
    }
  in
  let scaled = C.Delay.max_delay ~params g ~tree ~net in
  (* Doubling every R and C multiplies every RC product by 4. *)
  Alcotest.(check (float 1e-9)) "quadratic in parasitics" (4. *. base) scaled

(* ------------------------------------------------------------------ *)
(* 3D grids                                                           *)
(* ------------------------------------------------------------------ *)

let test_grid3_structure () =
  let gr = G.Grid3.create ~width:3 ~height:4 ~depth:2 () in
  Alcotest.(check int) "nodes" 24 (G.Gstate.num_nodes gr.G.Grid3.graph);
  (* edges: x: 2*4*2=16, y: 3*3*2=18, z: 3*4*1=12 *)
  Alcotest.(check int) "edges" 46 (G.Gstate.num_edges gr.G.Grid3.graph);
  let n = G.Grid3.node gr ~x:2 ~y:1 ~z:1 in
  Alcotest.(check bool) "roundtrip" true (G.Grid3.coords gr n = (2, 1, 1));
  Alcotest.(check int) "manhattan3" 4
    (G.Grid3.manhattan3 gr (G.Grid3.node gr ~x:0 ~y:0 ~z:0) n)

let test_grid3_via_weights () =
  let gr = G.Grid3.create ~via_weight:5. ~width:2 ~height:2 ~depth:2 () in
  let a = G.Grid3.node gr ~x:0 ~y:0 ~z:0 and b = G.Grid3.node gr ~x:0 ~y:0 ~z:1 in
  let r = G.Dijkstra.run gr.G.Grid3.graph ~src:a in
  Alcotest.(check (float 1e-9)) "via cost" 5. (G.Dijkstra.dist r b)

let test_grid3_bad_args () =
  Alcotest.check_raises "empty" (Invalid_argument "Grid3.create: empty grid") (fun () ->
      ignore (G.Grid3.create ~width:2 ~height:0 ~depth:1 ()));
  let gr = G.Grid3.create ~width:2 ~height:2 ~depth:2 () in
  Alcotest.check_raises "node range" (Invalid_argument "Grid3.node: out of range") (fun () ->
      ignore (G.Grid3.node gr ~x:0 ~y:0 ~z:2))

(* All eight algorithms work unchanged on 3D fabrics (the conclusion's
   generalization claim): valid trees, and arborescences preserve every
   sink's 3D shortest-path distance. *)
let test_all_algorithms_on_3d () =
  let gr = G.Grid3.create ~width:6 ~height:6 ~depth:3 () in
  let g = gr.G.Grid3.graph in
  let node = G.Grid3.node gr in
  let net =
    C.Net.make ~source:(node ~x:0 ~y:0 ~z:0)
      ~sinks:[ node ~x:5 ~y:2 ~z:2; node ~x:2 ~y:5 ~z:1; node ~x:4 ~y:4 ~z:0 ]
  in
  let cache = G.Dist_cache.create g in
  List.iter
    (fun (alg : C.Routing_alg.t) ->
      let tree = alg.C.Routing_alg.solve cache ~net in
      Alcotest.(check bool) (alg.C.Routing_alg.name ^ " valid on 3D") true
        (C.Eval.check cache ~net ~tree = Ok ());
      match alg.C.Routing_alg.kind with
      | C.Routing_alg.Arborescence ->
          Alcotest.(check bool) (alg.C.Routing_alg.name ^ " optimal 3D paths") true
            (C.Eval.is_arborescence cache ~net ~tree)
      | C.Routing_alg.Steiner -> ())
    C.Routing_alg.all

let prop_3d_steiner_bounds =
  QCheck.Test.make ~name:"3D: exact <= IKMB <= KMB <= 2*exact" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.make seed in
      let gr = G.Grid3.create ~width:4 ~height:4 ~depth:3 () in
      let g = gr.G.Grid3.graph in
      let terminals = G.Random_graph.random_net rng g ~k:4 in
      let cache = G.Dist_cache.create g in
      let opt = C.Exact.steiner_cost g ~terminals in
      let kmb = C.Kmb.cost cache ~terminals in
      let ikmb = G.Tree.cost g (C.Igmst.ikmb cache ~terminals) in
      opt <= ikmb +. 1e-6 && ikmb <= kmb +. 1e-6 && kmb <= (2. *. opt) +. 1e-6)

let () =
  Alcotest.run "fr future-work features"
    [
      ( "delay",
        [
          Alcotest.test_case "two-pin analytic" `Quick test_elmore_two_pin_analytic;
          Alcotest.test_case "monotone along paths" `Quick test_elmore_farther_sink_is_slower;
          Alcotest.test_case "requires spanning" `Quick test_elmore_requires_spanning;
          Alcotest.test_case "arborescences cut delay" `Quick test_elmore_arborescence_helps;
          Alcotest.test_case "parasitic scaling" `Quick test_elmore_params_scale;
        ] );
      ( "grid3",
        [
          Alcotest.test_case "structure" `Quick test_grid3_structure;
          Alcotest.test_case "via weights" `Quick test_grid3_via_weights;
          Alcotest.test_case "bad args" `Quick test_grid3_bad_args;
          Alcotest.test_case "all 8 algorithms on 3D" `Quick test_all_algorithms_on_3d;
          QCheck_alcotest.to_alcotest prop_3d_steiner_bounds;
        ] );
    ]
