(* Unit and integration tests for the FPGA substrate: architecture,
   routing-resource graph, netlists, benchmark circuits, and the router. *)

module G = Fr_graph
module C = Fr_core
module F = Fr_fpga
module Rng = Fr_util.Rng

let small_arch ?(w = 4) () = F.Arch.xc4000 ~rows:4 ~cols:5 ~channel_width:w

(* A tiny 3-net circuit on the 4x5 array. *)
let tiny_circuit () =
  let pin row col side slot = { F.Netlist.row; col; side; slot } in
  let nets =
    [
      F.Netlist.make_net ~name:"a" ~source:(pin 0 0 F.Rrg.East 0)
        ~sinks:[ pin 2 3 F.Rrg.West 0; pin 3 1 F.Rrg.North 0 ];
      F.Netlist.make_net ~name:"b" ~source:(pin 1 1 F.Rrg.South 0) ~sinks:[ pin 1 4 F.Rrg.South 0 ];
      F.Netlist.make_net ~name:"c" ~source:(pin 3 4 F.Rrg.North 1)
        ~sinks:[ pin 0 4 F.Rrg.East 1; pin 0 0 F.Rrg.West 1; pin 2 2 F.Rrg.East 0 ];
    ]
  in
  { F.Netlist.circuit_name = "tiny"; rows = 4; cols = 5; nets }

(* ------------------------------------------------------------------ *)
(* Arch                                                               *)
(* ------------------------------------------------------------------ *)

let test_arch_presets () =
  let a3 = F.Arch.xc3000 ~rows:12 ~cols:13 ~channel_width:10 in
  Alcotest.(check int) "3000 fs" 6 a3.F.Arch.fs;
  Alcotest.(check int) "3000 fc = ceil(0.6*10)" 6 a3.F.Arch.fc;
  let a4 = F.Arch.xc4000 ~rows:10 ~cols:9 ~channel_width:12 in
  Alcotest.(check int) "4000 fs" 3 a4.F.Arch.fs;
  Alcotest.(check int) "4000 fc = W" 12 a4.F.Arch.fc

let test_arch_with_width () =
  let a = F.Arch.xc3000 ~rows:5 ~cols:5 ~channel_width:10 in
  let a' = F.Arch.with_channel_width a 5 in
  Alcotest.(check int) "W" 5 a'.F.Arch.channel_width;
  Alcotest.(check int) "fc recomputed" 3 a'.F.Arch.fc;
  Alcotest.(check int) "rows preserved" 5 a'.F.Arch.rows

let test_arch_rejects () =
  Alcotest.check_raises "bad fc" (Invalid_argument "Arch.make: fc outside 1..W") (fun () ->
      ignore
        (F.Arch.make ~series:F.Arch.Series_4000 ~rows:2 ~cols:2 ~channel_width:4 ~fs:3 ~fc:5 ()));
  Alcotest.check_raises "bad rows" (Invalid_argument "Arch.make: non-positive array size")
    (fun () ->
      ignore
        (F.Arch.make ~series:F.Arch.Series_4000 ~rows:0 ~cols:2 ~channel_width:4 ~fs:3 ~fc:2 ()))

(* ------------------------------------------------------------------ *)
(* Rrg                                                                *)
(* ------------------------------------------------------------------ *)

let test_rrg_node_counts () =
  let arch = small_arch () in
  let rrg = F.Rrg.build arch in
  (* hwires: (R+1)*C*W = 5*5*4 = 100; vwires: (C+1)*R*W = 6*4*4 = 96;
     pins: R*C*4*slots = 4*5*4*2 = 160. *)
  Alcotest.(check int) "wires" 196 (F.Rrg.num_wires rrg);
  Alcotest.(check int) "total nodes" 356 (G.Gstate.num_nodes rrg.F.Rrg.graph)

let test_rrg_kind_roundtrip () =
  let rrg = F.Rrg.build (small_arch ()) in
  let h = F.Rrg.hwire rrg ~y:3 ~x:2 ~track:1 in
  Alcotest.(check bool) "hwire kind" true (F.Rrg.kind rrg h = F.Rrg.Wire (F.Rrg.H (3, 2), 1));
  let v = F.Rrg.vwire rrg ~x:5 ~y:3 ~track:0 in
  Alcotest.(check bool) "vwire kind" true (F.Rrg.kind rrg v = F.Rrg.Wire (F.Rrg.V (5, 3), 0));
  let p = F.Rrg.pin rrg ~row:2 ~col:4 ~side:F.Rrg.West ~slot:1 in
  Alcotest.(check bool) "pin kind" true (F.Rrg.kind rrg p = F.Rrg.Pin (2, 4, F.Rrg.West, 1));
  Alcotest.(check bool) "pin is not wire" false (F.Rrg.is_wire rrg p);
  Alcotest.(check bool) "hwire is wire" true (F.Rrg.is_wire rrg h)

let test_rrg_bounds () =
  let rrg = F.Rrg.build (small_arch ()) in
  Alcotest.check_raises "hwire out of range" (Invalid_argument "Rrg.hwire_id: out of range")
    (fun () -> ignore (F.Rrg.hwire rrg ~y:6 ~x:0 ~track:0));
  Alcotest.check_raises "pin out of range" (Invalid_argument "Rrg.pin_id: out of range")
    (fun () -> ignore (F.Rrg.pin rrg ~row:4 ~col:0 ~side:F.Rrg.North ~slot:0))

let test_rrg_pin_fanout_fc () =
  (* fc = W on the 4000 series: each pin must reach exactly W wires. *)
  let rrg = F.Rrg.build (small_arch ~w:4 ()) in
  let p = F.Rrg.pin rrg ~row:1 ~col:2 ~side:F.Rrg.North ~slot:0 in
  Alcotest.(check int) "pin degree = fc" 4 (G.Gstate.degree rrg.F.Rrg.graph p);
  (* all neighbors lie in the channel segment north of block (1,2): H(2,2) *)
  G.Gstate.iter_adj rrg.F.Rrg.graph p (fun _ v _ ->
      match F.Rrg.kind rrg v with
      | F.Rrg.Wire (F.Rrg.H (2, 2), _) -> ()
      | _ -> Alcotest.fail "pin connected to wrong segment")

let test_rrg_fc_less_than_w () =
  let arch = F.Arch.xc3000 ~rows:3 ~cols:3 ~channel_width:10 in
  (* fc = 6 *)
  let rrg = F.Rrg.build arch in
  let p = F.Rrg.pin rrg ~row:0 ~col:0 ~side:F.Rrg.North ~slot:0 in
  Alcotest.(check int) "pin degree = fc = 6" 6 (G.Gstate.degree rrg.F.Rrg.graph p)

let test_rrg_switch_flexibility () =
  (* Interior wire of a 4000-series device (fs=3): at each of its two
     endpoint switch blocks it meets 3 other sides, 1 target each. *)
  let rrg = F.Rrg.build (small_arch ~w:4 ()) in
  let wire = F.Rrg.hwire rrg ~y:2 ~x:2 ~track:1 in
  let wire_neighbors =
    G.Gstate.fold_adj rrg.F.Rrg.graph wire
      (fun acc _ v _ -> if F.Rrg.is_wire rrg v then acc + 1 else acc)
      0
  in
  Alcotest.(check int) "interior wire meets fs per side" 6 wire_neighbors

let test_rrg_connected () =
  let rrg = F.Rrg.build (small_arch ()) in
  let r = G.Dijkstra.run rrg.F.Rrg.graph ~src:0 in
  let unreachable = ref 0 in
  for v = 0 to G.Gstate.num_nodes rrg.F.Rrg.graph - 1 do
    if not (G.Dijkstra.reachable r v) then incr unreachable
  done;
  Alcotest.(check int) "RRG fully connected" 0 !unreachable

let test_rrg_pos_and_segments () =
  let rrg = F.Rrg.build (small_arch ()) in
  let h = F.Rrg.hwire rrg ~y:1 ~x:3 ~track:0 in
  Alcotest.(check bool) "hwire pos" true (F.Rrg.pos rrg h = (3.5, 1.));
  Alcotest.(check bool) "segment_of_node" true
    (F.Rrg.segment_of_node rrg h = Some (F.Rrg.H (1, 3)));
  let segs = F.Rrg.segments rrg in
  (* horizontal: 5*5 = 25; vertical: 6*4 = 24 *)
  Alcotest.(check int) "segment count" 49 (List.length segs);
  Alcotest.(check int) "segment wires" 4 (List.length (F.Rrg.wires_of_segment rrg (F.Rrg.H (0, 0))));
  Alcotest.(check int) "occupancy starts 0" 0 (F.Rrg.segment_occupancy rrg (F.Rrg.H (0, 0)));
  G.Gstate.disable_node rrg.F.Rrg.graph (F.Rrg.hwire rrg ~y:0 ~x:0 ~track:2);
  Alcotest.(check int) "occupancy tracks disables" 1 (F.Rrg.segment_occupancy rrg (F.Rrg.H (0, 0)))

let test_rrg_path_cost_counts_wires () =
  (* A pin-to-pin route of cost c uses exactly c wire nodes (0.5 at each
     pin end, 1.0 per wire-wire hop). *)
  let rrg = F.Rrg.build (small_arch ()) in
  let a = F.Rrg.pin rrg ~row:0 ~col:0 ~side:F.Rrg.East ~slot:0 in
  let b = F.Rrg.pin rrg ~row:3 ~col:4 ~side:F.Rrg.West ~slot:0 in
  let r = G.Dijkstra.run rrg.F.Rrg.graph ~src:a in
  let cost = G.Dijkstra.dist r b in
  let wires =
    List.filter (F.Rrg.is_wire rrg) (G.Dijkstra.path_nodes r b) |> List.length
  in
  Alcotest.(check (float 1e-9)) "cost = wires used" (float_of_int wires) cost

(* ------------------------------------------------------------------ *)
(* Netlist                                                            *)
(* ------------------------------------------------------------------ *)

let test_netlist_validate () =
  let c = tiny_circuit () in
  Alcotest.(check bool) "valid" true (F.Netlist.validate c = Ok ());
  let bad =
    {
      c with
      F.Netlist.nets =
        [
          F.Netlist.make_net ~name:"x"
            ~source:{ F.Netlist.row = 9; col = 0; side = F.Rrg.North; slot = 0 }
            ~sinks:[ { F.Netlist.row = 0; col = 0; side = F.Rrg.South; slot = 0 } ];
        ];
    }
  in
  Alcotest.(check bool) "out of bounds rejected" true (F.Netlist.validate bad <> Ok ())

let test_netlist_shared_pin_rejected () =
  let p = { F.Netlist.row = 0; col = 0; side = F.Rrg.North; slot = 0 } in
  let q = { F.Netlist.row = 1; col = 1; side = F.Rrg.North; slot = 0 } in
  let r = { F.Netlist.row = 2; col = 2; side = F.Rrg.North; slot = 0 } in
  let c =
    {
      F.Netlist.circuit_name = "dup";
      rows = 4;
      cols = 5;
      nets =
        [
          F.Netlist.make_net ~name:"a" ~source:p ~sinks:[ q ];
          F.Netlist.make_net ~name:"b" ~source:p ~sinks:[ r ];
        ];
    }
  in
  Alcotest.(check bool) "shared pin rejected" true (F.Netlist.validate c <> Ok ())

let test_netlist_histogram () =
  let s, m, l = F.Netlist.pin_histogram (tiny_circuit ()) in
  Alcotest.(check (list int)) "histogram" [ 2; 1; 0 ] [ s; m; l ]

let test_netlist_roundtrip () =
  let c = tiny_circuit () in
  let text = F.Netlist.to_string c in
  match F.Netlist.of_string text with
  | Error e -> Alcotest.fail e
  | Ok c' ->
      Alcotest.(check string) "name" c.F.Netlist.circuit_name c'.F.Netlist.circuit_name;
      Alcotest.(check int) "nets" (List.length c.F.Netlist.nets) (List.length c'.F.Netlist.nets);
      Alcotest.(check bool) "identical" true (c = c')

let test_netlist_parse_errors () =
  Alcotest.(check bool) "empty" true (F.Netlist.of_string "" = Error "empty netlist");
  Alcotest.(check bool) "bad header" true
    (match F.Netlist.of_string "circus x 3 3\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad pin" true
    (match F.Netlist.of_string "circuit x 3 3\nnet n 0,0,Q,0 1,1,N,0\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_netlist_bbox () =
  let n = List.nth (tiny_circuit ()).F.Netlist.nets 0 in
  Alcotest.(check bool) "bbox" true (F.Netlist.bounding_box n = (0, 0, 3, 3))

(* Random circuits (valid by construction) must round-trip through the
   textual format. *)
let prop_netlist_roundtrip =
  QCheck.Test.make ~name:"netlist text format round-trips" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let module Rng = Fr_util.Rng in
      let rng = Rng.make seed in
      let rows = 3 + Rng.int rng 5 and cols = 3 + Rng.int rng 5 in
      let taken = Hashtbl.create 64 in
      let rand_pin () =
        let rec draw tries =
          if tries > 200 then None
          else begin
            let p =
              {
                F.Netlist.row = Rng.int rng rows;
                col = Rng.int rng cols;
                side = List.nth F.Rrg.all_sides (Rng.int rng 4);
                slot = Rng.int rng 2;
              }
            in
            if Hashtbl.mem taken p then draw (tries + 1)
            else begin
              Hashtbl.add taken p ();
              Some p
            end
          end
        in
        draw 0
      in
      let nets = ref [] in
      let n_nets = 1 + Rng.int rng 6 in
      for i = 0 to n_nets - 1 do
        let k = 2 + Rng.int rng 4 in
        let pins = List.filter_map (fun _ -> rand_pin ()) (List.init k (fun x -> x)) in
        match pins with
        | source :: (_ :: _ as sinks) ->
            nets := F.Netlist.make_net ~name:(Printf.sprintf "n%d" i) ~source ~sinks :: !nets
        | _ -> ()
      done;
      let c = { F.Netlist.circuit_name = "rand"; rows; cols; nets = List.rev !nets } in
      match F.Netlist.of_string (F.Netlist.to_string c) with
      | Ok c' -> c = c' && F.Netlist.validate c = Ok ()
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Circuits                                                           *)
(* ------------------------------------------------------------------ *)

let test_specs_complete () =
  Alcotest.(check int) "5 + 9 circuits" 14 (List.length F.Circuits.all_specs);
  (* Totals from the paper's tables. *)
  let total3 = List.fold_left (fun a s -> a + F.Circuits.total_nets s) 0 F.Circuits.specs_3000 in
  Alcotest.(check int) "3000-series total nets" 1744 total3;
  let total4 = List.fold_left (fun a s -> a + F.Circuits.total_nets s) 0 F.Circuits.specs_4000 in
  Alcotest.(check int) "4000-series total nets" 1710 total4;
  let sum f = List.fold_left (fun a s -> a + f s) 0 F.Circuits.specs_4000 in
  Alcotest.(check int) "4000 small" 1154 (sum (fun s -> s.F.Circuits.nets_small));
  Alcotest.(check int) "4000 medium" 454 (sum (fun s -> s.F.Circuits.nets_medium));
  Alcotest.(check int) "4000 large" 102 (sum (fun s -> s.F.Circuits.nets_large))

let test_published_totals () =
  let sum get =
    List.fold_left
      (fun a s -> a + match get s.F.Circuits.published with Some x -> x | None -> 0)
      0 F.Circuits.specs_4000
  in
  Alcotest.(check int) "SEGA total 118" 118 (sum (fun p -> p.F.Circuits.sega));
  Alcotest.(check int) "GBP total 110" 110 (sum (fun p -> p.F.Circuits.gbp));
  Alcotest.(check int) "paper IKMB total 94" 94 (sum (fun p -> p.F.Circuits.ours_ikmb));
  Alcotest.(check int) "paper PFA total 110" 110 (sum (fun p -> p.F.Circuits.ours_pfa));
  Alcotest.(check int) "paper IDOM total 106" 106 (sum (fun p -> p.F.Circuits.ours_idom));
  let sum3 get =
    List.fold_left
      (fun a s -> a + match get s.F.Circuits.published with Some x -> x | None -> 0)
      0 F.Circuits.specs_3000
  in
  Alcotest.(check int) "CGE total 55" 55 (sum3 (fun p -> p.F.Circuits.cge));
  Alcotest.(check int) "paper 3000 IKMB total 45" 45 (sum3 (fun p -> p.F.Circuits.ours_ikmb))

let test_generate_matches_stats () =
  (* All fourteen circuits: valid, exact published histograms. *)
  List.iter
    (fun spec ->
      let name = spec.F.Circuits.circuit in
      let c = F.Circuits.generate spec in
      Alcotest.(check bool) (name ^ " valid") true (F.Netlist.validate c = Ok ());
      let s, m, l = F.Netlist.pin_histogram c in
      Alcotest.(check (list int))
        (name ^ " histogram")
        [ spec.F.Circuits.nets_small; spec.F.Circuits.nets_medium; spec.F.Circuits.nets_large ]
        [ s; m; l ];
      Alcotest.(check int) (name ^ " rows") spec.F.Circuits.rows c.F.Netlist.rows;
      Alcotest.(check int) (name ^ " nets") (F.Circuits.total_nets spec)
        (List.length c.F.Netlist.nets))
    F.Circuits.all_specs

let test_generate_deterministic () =
  let spec = Option.get (F.Circuits.find_spec "apex7") in
  let a = F.Circuits.generate spec and b = F.Circuits.generate spec in
  Alcotest.(check bool) "same circuit twice" true (a = b)

let test_find_spec () =
  Alcotest.(check bool) "case-insensitive" true (F.Circuits.find_spec "BUSC" <> None);
  Alcotest.(check bool) "unknown" true (F.Circuits.find_spec "nope" = None)

let test_on_disk_netlists_match_generator () =
  (* The shipped circuits/*.net files are exactly what the deterministic
     generator produces. *)
  let read_all path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  List.iter
    (fun name ->
      let candidates = [ "../circuits/" ^ name ^ ".net"; "circuits/" ^ name ^ ".net" ] in
      let path =
        match List.find_opt Sys.file_exists candidates with Some p -> p | None -> ""
      in
      if path <> "" then begin
        match F.Netlist.of_string (read_all path) with
        | Error e -> Alcotest.fail (name ^ ": " ^ e)
        | Ok c ->
            let spec = Option.get (F.Circuits.find_spec name) in
            Alcotest.(check bool) (name ^ " matches generator") true
              (c = F.Circuits.generate spec)
      end)
    [ "term1"; "busc"; "k2" ]

(* ------------------------------------------------------------------ *)
(* Router                                                             *)
(* ------------------------------------------------------------------ *)

let routed_ok stats circuit =
  List.length stats.F.Router.routed = List.length circuit.F.Netlist.nets

let test_router_tiny () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ()) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "tiny circuit should route"
  | Ok stats ->
      Alcotest.(check bool) "all nets routed" true (routed_ok stats circuit);
      Alcotest.(check bool) "wirelength positive" true (stats.F.Router.total_wirelength > 0.);
      Alcotest.(check bool) "peak occupancy within W" true (stats.F.Router.peak_occupancy <= 4)

let test_router_disjoint_resources () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ()) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "should route"
  | Ok stats ->
      (* No wire node is used by two nets. *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun r ->
          List.iter
            (fun v ->
              if F.Rrg.is_wire rrg v then begin
                if Hashtbl.mem seen v then Alcotest.fail "wire shared between nets";
                Hashtbl.add seen v r.F.Router.net.F.Netlist.net_name
              end)
            (G.Tree.nodes rrg.F.Rrg.graph r.F.Router.tree))
        stats.F.Router.routed

let test_router_trees_span_their_nets () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ()) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "should route"
  | Ok stats ->
      List.iter
        (fun r ->
          let cnet = F.Netlist.rrg_net rrg r.F.Router.net in
          Alcotest.(check bool)
            (r.F.Router.net.F.Netlist.net_name ^ " spans")
            true
            (G.Tree.spans rrg.F.Rrg.graph r.F.Router.tree (C.Net.terminals cnet));
          Alcotest.(check bool)
            (r.F.Router.net.F.Netlist.net_name ^ " is tree")
            true
            (G.Tree.is_tree rrg.F.Rrg.graph r.F.Router.tree))
        stats.F.Router.routed

let test_router_infeasible_width () =
  (* W=1 cannot route the tiny circuit's crossing nets. *)
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ~w:1 ()) in
  let config = F.Router.config_with ~max_passes:3 () in
  match F.Router.route ~config rrg circuit with
  | Ok _ -> Alcotest.fail "W=1 should be infeasible"
  | Error f ->
      Alcotest.(check bool) "passes tried" true (f.F.Router.passes_tried = 3);
      Alcotest.(check bool) "failed nets reported" true (f.F.Router.failed_nets <> [])

let test_max_path_unspanned_sink_raises () =
  (* A path-graph "tree" 0-1-2 does not span sink 3: measuring it must
     raise instead of silently skipping the sink (the old behavior
     under-reported pathlength). *)
  let g = G.Wgraph.create 4 in
  let e01 = G.Wgraph.add_edge g 0 1 1. in
  let e12 = G.Wgraph.add_edge g 1 2 1. in
  ignore (G.Wgraph.add_edge g 2 3 1.);
  let g = G.Gstate.of_builder g in
  let tree = G.Tree.of_edges [ e01; e12 ] in
  let weight e = G.Gstate.weight g e in
  Alcotest.(check (float 1e-9))
    "spanned sinks measured" 2.
    (F.Router.max_path_of_tree ~weight g tree ~net_src:0 ~sinks:[ 1; 2 ]);
  Alcotest.check_raises "unspanned sink raises"
    (Invalid_argument "Router.max_path_of_tree: sink 3 not spanned by tree") (fun () ->
      ignore (F.Router.max_path_of_tree ~weight g tree ~net_src:0 ~sinks:[ 2; 3 ]))

let test_router_targeted_matches_full () =
  let circuit = tiny_circuit () in
  let run targeted =
    let rrg = F.Rrg.build (small_arch ()) in
    let config = { F.Router.default_config with F.Router.targeted_dijkstra = targeted } in
    match F.Router.route ~config rrg circuit with
    | Error _ -> Alcotest.fail "tiny circuit should route"
    | Ok stats -> stats
  in
  let full = run false and targ = run true in
  let trees stats =
    List.map
      (fun r -> (r.F.Router.net.F.Netlist.net_name, List.sort compare r.F.Router.tree.G.Tree.edges))
      stats.F.Router.routed
  in
  Alcotest.(check bool) "same trees" true (trees full = trees targ);
  Alcotest.(check (float 1e-9))
    "same wirelength" full.F.Router.total_wirelength targ.F.Router.total_wirelength;
  Alcotest.(check int) "same passes" full.F.Router.passes targ.F.Router.passes;
  Alcotest.(check bool) "ran searches" true (targ.F.Router.dijkstra_runs > 0);
  Alcotest.(check bool) "settled counted" true (targ.F.Router.settled_nodes > 0);
  Alcotest.(check bool) "targeted settles no more" true
    (targ.F.Router.settled_nodes <= full.F.Router.settled_nodes)

let test_router_min_channel_width () =
  let circuit = tiny_circuit () in
  let arch_of_width w = F.Arch.xc4000 ~rows:4 ~cols:5 ~channel_width:w in
  match
    F.Router.min_channel_width ~arch_of_width ~circuit ~start:4 ()
  with
  | None -> Alcotest.fail "should find a width"
  | Some (w, stats) ->
      Alcotest.(check bool) "w >= 1" true (w >= 1);
      Alcotest.(check bool) "w <= 4" true (w <= 4);
      Alcotest.(check bool) "routed" true (routed_ok stats circuit);
      (* Minimality: w-1 must fail. *)
      if w > 1 then begin
        let rrg = F.Rrg.build (arch_of_width (w - 1)) in
        match F.Router.route rrg circuit with
        | Ok _ -> Alcotest.fail "w-1 should fail"
        | Error _ -> ()
      end

(* The bisection is confined to [1, max_width]: a cap equal to the true
   minimum is still found (the gallop's clamped probe sequence attempts
   max_width itself before giving up), a cap one below the minimum fails
   the whole bracket, and a start above the cap is clamped rather than
   trusted. *)
let test_router_min_width_respects_cap () =
  let circuit = tiny_circuit () in
  let arch_of_width w = F.Arch.xc4000 ~rows:4 ~cols:5 ~channel_width:w in
  let wmin =
    match F.Router.min_channel_width ~arch_of_width ~circuit ~start:4 () with
    | Some (w, _) -> w
    | None -> Alcotest.fail "tiny circuit should route"
  in
  (match F.Router.min_channel_width ~arch_of_width ~circuit ~start:1 ~max_width:wmin () with
  | Some (w, _) -> Alcotest.(check int) "cap = minimum is found" wmin w
  | None -> Alcotest.fail "cap equal to the minimum must succeed");
  if wmin > 1 then (
    match F.Router.min_channel_width ~arch_of_width ~circuit ~start:1 ~max_width:(wmin - 1) () with
    | Some (w, _) -> Alcotest.failf "reported width %d beyond cap %d" w (wmin - 1)
    | None -> ());
  (match
     F.Router.min_channel_width ~arch_of_width ~circuit ~start:(wmin + 9) ~max_width:wmin ()
   with
  | Some (w, _) -> Alcotest.(check int) "start above cap is clamped" wmin w
  | None -> Alcotest.fail "clamped start must still find the cap width");
  Alcotest.check_raises "start < 1"
    (Invalid_argument "Router.min_channel_width: start must be >= 1") (fun () ->
      ignore (F.Router.min_channel_width ~arch_of_width ~circuit ~start:0 ()))

(* Work counters are per-call: a second route on the same graph reports its
   own (smaller) work, not the state's lifetime totals — the old cumulative
   journal_depth high-water mark would make the second call's reading >=
   the first's. *)
let test_router_stats_per_call () =
  let pin row col side slot = { F.Netlist.row; col; side; slot } in
  let rrg = F.Rrg.build (small_arch ~w:6 ()) in
  let first =
    match F.Router.route rrg (tiny_circuit ()) with
    | Ok s -> s
    | Error _ -> Alcotest.fail "first route failed"
  in
  let one_net =
    {
      F.Netlist.circuit_name = "one";
      rows = 4;
      cols = 5;
      nets =
        [
          F.Netlist.make_net ~name:"d" ~source:(pin 2 0 F.Rrg.South 0)
            ~sinks:[ pin 2 1 F.Rrg.South 0 ];
        ];
    }
  in
  match F.Router.route rrg one_net with
  | Error _ -> Alcotest.fail "second route failed"
  | Ok second ->
      Alcotest.(check bool) "second call counts its own searches" true
        (second.F.Router.dijkstra_runs > 0
        && second.F.Router.dijkstra_runs < first.F.Router.dijkstra_runs);
      Alcotest.(check bool) "second call settles its own nodes" true
        (second.F.Router.settled_nodes > 0
        && second.F.Router.settled_nodes < first.F.Router.settled_nodes);
      Alcotest.(check bool) "journal peak is per-call" true
        (second.F.Router.journal_depth > 0
        && second.F.Router.journal_depth < first.F.Router.journal_depth);
      Alcotest.(check bool) "mutations are per-call" true
        (second.F.Router.mutations > 0 && second.F.Router.mutations < first.F.Router.mutations)

let test_router_strategies_agree_on_feasibility () =
  let circuit = tiny_circuit () in
  List.iter
    (fun (name, config) ->
      let rrg = F.Rrg.build (small_arch ()) in
      match F.Router.route ~config rrg circuit with
      | Ok stats -> Alcotest.(check bool) (name ^ " routed") true (routed_ok stats circuit)
      | Error _ -> Alcotest.fail (name ^ " failed on the tiny circuit"))
    [
      ("ikmb", F.Router.default_config);
      ("pfa", F.Router.config_with ~alg:C.Routing_alg.pfa ());
      ("idom", F.Router.config_with ~alg:C.Routing_alg.idom ());
      ("djka", F.Router.config_with ~alg:C.Routing_alg.djka ());
      ("two-pin", { F.Router.default_config with F.Router.strategy = F.Router.Two_pin_decomposition });
    ]

let test_router_two_pin_uses_more_wire () =
  let circuit = tiny_circuit () in
  let run config =
    let rrg = F.Rrg.build (small_arch ~w:6 ()) in
    match F.Router.route ~config rrg circuit with
    | Ok stats -> stats.F.Router.total_wirelength
    | Error _ -> Alcotest.fail "route failed"
  in
  let tree_wire = run F.Router.default_config in
  let twopin_wire =
    run { F.Router.default_config with F.Router.strategy = F.Router.Two_pin_decomposition }
  in
  Alcotest.(check bool)
    (Printf.sprintf "two-pin (%.0f) >= tree (%.0f)" twopin_wire tree_wire)
    true (twopin_wire >= tree_wire)

let test_router_rejects_mismatched_circuit () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (F.Arch.xc4000 ~rows:3 ~cols:3 ~channel_width:4) in
  Alcotest.check_raises "bad fit" (Invalid_argument "Router.route: circuit does not fit architecture")
    (fun () -> ignore (F.Router.route rrg circuit))

let test_router_congestion_pressure () =
  (* After routing, consumed wires are disabled, their segments' occupancy
     rises, and surviving edges near the touched segments got heavier than
     their base weight. *)
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ()) in
  let g = rrg.F.Rrg.graph in
  let base_weights = Array.init (G.Gstate.num_edges g) (G.Gstate.weight g) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "should route"
  | Ok stats ->
      let r = List.hd stats.F.Router.routed in
      let tree_nodes = G.Tree.nodes g r.F.Router.tree in
      List.iter
        (fun v ->
          if F.Rrg.is_wire rrg v then begin
            Alcotest.(check bool) "consumed wire disabled" false (G.Gstate.node_enabled g v);
            match F.Rrg.segment_of_node rrg v with
            | Some seg ->
                Alcotest.(check bool) "segment occupancy > 0" true
                  (F.Rrg.segment_occupancy rrg seg > 0)
            | None -> ()
          end)
        tree_nodes;
      let heavier = ref 0 in
      for e = 0 to G.Gstate.num_edges g - 1 do
        if G.Gstate.weight g e > base_weights.(e) +. 1e-9 then incr heavier
      done;
      Alcotest.(check bool) "congestion raised some weights" true (!heavier > 0)

let test_router_mixed_criticality () =
  (* Nets marked critical are routed with the critical algorithm: their
     trees must satisfy the GSA property w.r.t. the graph state at routing
     time — we verify the weaker but state-independent property that the
     routing completes and every critical-net tree has its pins on
     shortest paths within the tree (spanning + validity), while the mixed
     run's total wirelength differs from the pure-IKMB run's. *)
  let circuit = tiny_circuit () in
  let critical net = net.F.Netlist.net_name = "c" in
  let config = { F.Router.default_config with F.Router.critical_strategy = Some critical } in
  let rrg = F.Rrg.build (small_arch ~w:6 ()) in
  match F.Router.route ~config rrg circuit with
  | Error _ -> Alcotest.fail "mixed run should route"
  | Ok stats ->
      Alcotest.(check bool) "all routed" true (routed_ok stats circuit);
      let crit = List.find (fun r -> r.F.Router.net.F.Netlist.net_name = "c") stats.F.Router.routed in
      Alcotest.(check bool) "critical net routed as a tree" true
        (G.Tree.is_tree rrg.F.Rrg.graph crit.F.Router.tree)

let test_rrg_jog_penalty () =
  (* With a heavy jog penalty, an L-shaped connection costs extra turns:
     route from a pin on the west edge to a pin two rows up; compare base
     vs penalized shortest-path costs. *)
  let arch = small_arch ~w:4 () in
  let plain = F.Rrg.build arch in
  let bendy = F.Rrg.build ~jog_penalty:2.0 arch in
  let cost rrg =
    let a = F.Rrg.pin rrg ~row:0 ~col:0 ~side:F.Rrg.South ~slot:0 in
    let b = F.Rrg.pin rrg ~row:3 ~col:4 ~side:F.Rrg.North ~slot:0 in
    G.Dijkstra.dist (G.Dijkstra.run rrg.F.Rrg.graph ~src:a) b
  in
  let c0 = cost plain and c1 = cost bendy in
  Alcotest.(check bool)
    (Printf.sprintf "penalized (%.1f) > plain (%.1f)" c1 c0)
    true (c1 > c0);
  (* A diagonal route needs at least one turn: the gap is at least one
     penalty unit. *)
  Alcotest.(check bool) "at least one jog paid" true (c1 >= c0 +. 2.0);
  Alcotest.check_raises "negative penalty" (Invalid_argument "Rrg.build: negative jog penalty")
    (fun () -> ignore (F.Rrg.build ~jog_penalty:(-1.) arch))

(* §4.8 soundness: the RRG's future-cost bound must be admissible
   (h(v) never exceeds the true remaining distance to the nearest target,
   at every node, for any target set) and consistent (h drops by at most
   the edge weight across every enabled edge) — in the base-cost state,
   with jog penalties, and after negotiated-congestion pricing has
   multiplied the edge weights. *)
let prop_rrg_future_cost_sound =
  QCheck.Test.make ~name:"future_cost admissible + consistent" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.make seed in
      let rows = 2 + Rng.int rng 3 and cols = 2 + Rng.int rng 3 in
      let w = 2 + Rng.int rng 3 in
      let jog = if Rng.bool rng then 0.5 *. float_of_int (1 + Rng.int rng 3) else 0. in
      let mk = if Rng.bool rng then F.Arch.xc4000 else F.Arch.xc3000 in
      let rrg = F.Rrg.build ~jog_penalty:jog (mk ~rows ~cols ~channel_width:w) in
      let g = rrg.F.Rrg.graph in
      let n = G.Gstate.num_nodes g in
      let targets =
        List.sort_uniq compare (List.init (1 + Rng.int rng 3) (fun _ -> Rng.int rng n))
      in
      let check state =
        let h = G.Dijkstra.heuristic_eval (F.Rrg.future_cost rrg ~targets) in
        let best = Array.make n infinity in
        List.iter
          (fun t ->
            let r = G.Dijkstra.run g ~src:t in
            for v = 0 to n - 1 do
              if G.Dijkstra.dist r v < best.(v) then best.(v) <- G.Dijkstra.dist r v
            done)
          targets;
        for v = 0 to n - 1 do
          if h v > best.(v) +. 1e-9 then
            QCheck.Test.fail_reportf "%s: h %.3f > dist %.3f at node %d" state (h v) best.(v) v
        done;
        (* iter_edges yields only enabled edges with enabled endpoints *)
        G.Gstate.iter_edges g (fun e u v wt ->
            if h u > wt +. h v +. 1e-9 || h v > wt +. h u +. 1e-9 then
              QCheck.Test.fail_reportf "%s: inconsistent across edge %d (%d-%d)" state e u v)
      in
      check "base";
      (* Price the graph the way negotiated mode would: a few overlapping
         fake nets, one sub-gradient escalation, prices applied. *)
      let cm = G.Cost_model.create g in
      for _ = 1 to 3 do
        G.Cost_model.use_nodes cm (List.init 8 (fun _ -> Rng.int rng n))
      done;
      G.Cost_model.escalate cm;
      G.Cost_model.apply cm;
      check "priced";
      true)

(* Goal-direction and the frontier implementation must not change routed
   trees — only the settled-node work.  The full-size A/B (term1/apex7 at
   published widths, both modes, with a hard >= 2x settling bound on the
   point-to-point cells) runs in the bench smoke; this pins the invariant
   at unit-test scale. *)
let test_router_astar_identity () =
  let circuit = tiny_circuit () in
  let run astar heap =
    let rrg = F.Rrg.build (small_arch ()) in
    let config = F.Router.config_with ~astar ~heap () in
    match F.Router.route ~config rrg circuit with
    | Error _ -> Alcotest.fail "tiny circuit should route"
    | Ok stats -> stats
  in
  let on = run true G.Pq.Bucket in
  let on_bin = run true G.Pq.Binary in
  let off = run false G.Pq.Binary in
  let trees stats =
    List.map
      (fun r -> (r.F.Router.net.F.Netlist.net_name, List.sort compare r.F.Router.tree.G.Tree.edges))
      stats.F.Router.routed
  in
  Alcotest.(check bool) "A* on = off" true (trees on = trees off);
  Alcotest.(check bool) "bucket = binary" true (trees on = trees on_bin);
  Alcotest.(check (float 1e-9))
    "same wirelength" off.F.Router.total_wirelength on.F.Router.total_wirelength;
  Alcotest.(check (float 1e-9))
    "same max path" off.F.Router.total_max_path on.F.Router.total_max_path;
  Alcotest.(check bool) "A* evaluated heuristics" true (on.F.Router.future_cost_evals > 0);
  Alcotest.(check int) "off evaluates none" 0 off.F.Router.future_cost_evals;
  Alcotest.(check bool) "A* settles no more" true
    (on.F.Router.settled_nodes <= off.F.Router.settled_nodes);
  Alcotest.(check string) "heap impl reported" "bucket" on.F.Router.heap_impl;
  Alcotest.(check string) "binary reported" "binary" off.F.Router.heap_impl

let test_router_benchmark_integration () =
  (* Full integration: route the whole synthetic term1 at a generous width. *)
  let spec = Option.get (F.Circuits.find_spec "term1") in
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:12) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "term1 should route at W=12"
  | Ok stats ->
      Alcotest.(check int) "all 88 nets" 88 (List.length stats.F.Router.routed);
      Alcotest.(check bool) "few passes" true (stats.F.Router.passes <= 5)

(* ------------------------------------------------------------------ *)
(* Render                                                             *)
(* ------------------------------------------------------------------ *)

let test_render_occupancy () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ()) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "should route"
  | Ok stats ->
      let map = F.Render.occupancy_map rrg in
      Alcotest.(check bool) "has blocks" true (String.length map > 100);
      let summary = F.Render.summary rrg stats in
      Alcotest.(check bool) "summary mentions nets" true
        (String.length summary > 0 && stats.F.Router.passes >= 1)

let test_render_net_map () =
  let circuit = tiny_circuit () in
  let rrg = F.Rrg.build (small_arch ()) in
  match F.Router.route rrg circuit with
  | Error _ -> Alcotest.fail "should route"
  | Ok stats ->
      let r = List.hd stats.F.Router.routed in
      let map = F.Render.net_map rrg r.F.Router.tree in
      Alcotest.(check bool) "net marked" true (String.contains map '#')

let () =
  Alcotest.run "fr_fpga"
    [
      ( "arch",
        [
          Alcotest.test_case "presets" `Quick test_arch_presets;
          Alcotest.test_case "with_channel_width" `Quick test_arch_with_width;
          Alcotest.test_case "rejects" `Quick test_arch_rejects;
        ] );
      ( "rrg",
        [
          Alcotest.test_case "node counts" `Quick test_rrg_node_counts;
          Alcotest.test_case "kind roundtrip" `Quick test_rrg_kind_roundtrip;
          Alcotest.test_case "bounds" `Quick test_rrg_bounds;
          Alcotest.test_case "pin fanout = fc (4000)" `Quick test_rrg_pin_fanout_fc;
          Alcotest.test_case "pin fanout = fc (3000)" `Quick test_rrg_fc_less_than_w;
          Alcotest.test_case "switch flexibility" `Quick test_rrg_switch_flexibility;
          Alcotest.test_case "connected" `Quick test_rrg_connected;
          Alcotest.test_case "pos & segments" `Quick test_rrg_pos_and_segments;
          Alcotest.test_case "cost counts wires" `Quick test_rrg_path_cost_counts_wires;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "validate" `Quick test_netlist_validate;
          Alcotest.test_case "shared pin rejected" `Quick test_netlist_shared_pin_rejected;
          Alcotest.test_case "histogram" `Quick test_netlist_histogram;
          Alcotest.test_case "roundtrip" `Quick test_netlist_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_netlist_parse_errors;
          Alcotest.test_case "bounding box" `Quick test_netlist_bbox;
          QCheck_alcotest.to_alcotest prop_netlist_roundtrip;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "specs complete" `Quick test_specs_complete;
          Alcotest.test_case "published totals" `Quick test_published_totals;
          Alcotest.test_case "generator matches stats" `Quick test_generate_matches_stats;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "find_spec" `Quick test_find_spec;
          Alcotest.test_case "on-disk netlists" `Quick test_on_disk_netlists_match_generator;
        ] );
      ( "router",
        [
          Alcotest.test_case "tiny circuit" `Quick test_router_tiny;
          Alcotest.test_case "electrically disjoint" `Quick test_router_disjoint_resources;
          Alcotest.test_case "trees span nets" `Quick test_router_trees_span_their_nets;
          Alcotest.test_case "infeasible width" `Quick test_router_infeasible_width;
          Alcotest.test_case "unspanned sink raises" `Quick test_max_path_unspanned_sink_raises;
          Alcotest.test_case "targeted = full" `Quick test_router_targeted_matches_full;
          Alcotest.test_case "min channel width" `Quick test_router_min_channel_width;
          Alcotest.test_case "min width respects cap" `Quick test_router_min_width_respects_cap;
          Alcotest.test_case "stats are per-call" `Quick test_router_stats_per_call;
          Alcotest.test_case "all strategies" `Quick test_router_strategies_agree_on_feasibility;
          Alcotest.test_case "two-pin wastes wire" `Quick test_router_two_pin_uses_more_wire;
          Alcotest.test_case "mismatched circuit" `Quick test_router_rejects_mismatched_circuit;
          Alcotest.test_case "congestion pressure" `Quick test_router_congestion_pressure;
          Alcotest.test_case "mixed criticality" `Quick test_router_mixed_criticality;
          Alcotest.test_case "jog penalty" `Quick test_rrg_jog_penalty;
          QCheck_alcotest.to_alcotest prop_rrg_future_cost_sound;
          Alcotest.test_case "A*/heap identity" `Quick test_router_astar_identity;
          Alcotest.test_case "term1 integration" `Slow test_router_benchmark_integration;
        ] );
      ( "render",
        [
          Alcotest.test_case "occupancy map" `Quick test_render_occupancy;
          Alcotest.test_case "net map" `Quick test_render_net_map;
        ] );
    ]
