(* Command-line front end for the FPGA routing library.

   Subcommands:
     route     route a benchmark circuit at a given channel width
     width     find a circuit's minimum channel width
     table     regenerate one of the paper's tables (1-5, or "baseline")
     figure    regenerate one of the paper's figures (3,4,6,10,11,13,14,16)
     circuits  list the benchmark circuit specifications
     net       route one random net on a congested grid with every algorithm
     serve     long-lived routing daemon speaking newline-delimited JSON
               (route / eco / stats / checkpoint / shutdown) on a Unix socket *)

module F = Fr_fpga
module C = Fr_core
module G = Fr_graph
open Cmdliner

let alg_conv =
  let parse s =
    match C.Routing_alg.by_name s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S (try KMB, IKMB, PFA, IDOM...)" s))
  in
  let print fmt (a : C.Routing_alg.t) = Format.pp_print_string fmt a.C.Routing_alg.name in
  Arg.conv (parse, print)

let spec_conv =
  let parse s =
    match F.Circuits.find_spec s with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown circuit %S (see `fpga_route circuits`)" s))
  in
  let print fmt (s : F.Circuits.spec) = Format.pp_print_string fmt s.F.Circuits.circuit in
  Arg.conv (parse, print)

let alg_arg =
  Arg.(value & opt alg_conv C.Routing_alg.ikmb & info [ "a"; "alg" ] ~docv:"ALG" ~doc:"Routing algorithm.")

let passes_arg =
  Arg.(value & opt int 20 & info [ "passes" ] ~docv:"N" ~doc:"Maximum rip-up passes.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the speculative batch solves. The routed trees are \
           bit-identical for every value; only the wall time changes.")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("waves", F.Router.Waves); ("negotiated", F.Router.Negotiated) ]) F.Router.Waves
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Routing mode: $(b,waves) (rip-up passes over speculative batches, the default) or \
           $(b,negotiated) (PathFinder-style negotiated congestion — all nets route every \
           iteration against shared resources priced by overuse). Both modes are \
           bit-identical across $(b,--domains).")

let no_astar_arg =
  Arg.(
    value & flag
    & info [ "no-astar" ]
        ~doc:
          "Disable goal-directed (A-star) search and run plain Dijkstra. Routed trees are \
           bit-identical either way; only the number of settled nodes changes.")

let heap_arg =
  Arg.(
    value
    & opt (enum [ ("binary", G.Pq.Binary); ("bucket", G.Pq.Bucket) ]) G.Pq.Bucket
    & info [ "heap" ] ~docv:"IMPL"
        ~doc:
          "Priority-queue implementation behind every search: $(b,bucket) (calibrated bucket \
           queue, the default) or $(b,binary) (binary heap). Trees are bit-identical across \
           implementations.")

let spec_arg = Arg.(required & pos 0 (some spec_conv) None & info [] ~docv:"CIRCUIT")

(* ---------------- route ---------------- *)

let run_route spec width alg passes mode domains no_astar heap render =
  let circuit = F.Circuits.generate spec in
  let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:width) in
  let config = F.Router.config_with ~alg ~max_passes:passes ~mode ~astar:(not no_astar) ~heap () in
  match F.Router.route ~config ~domains rrg circuit with
  | Ok stats ->
      print_endline (F.Render.summary rrg stats);
      if render then print_endline (F.Render.occupancy_map rrg);
      0
  | Error f ->
      Printf.printf "unroutable at W=%d: %d nets still failing after %d passes\n" width
        (List.length f.F.Router.failed_nets)
        f.F.Router.passes_tried;
      1

let route_cmd =
  let width = Arg.(value & opt int 10 & info [ "w"; "width" ] ~docv:"W" ~doc:"Channel width.") in
  let render = Arg.(value & flag & info [ "render" ] ~doc:"Print the occupancy map.") in
  Cmd.v
    (Cmd.info "route" ~doc:"Route a benchmark circuit at a fixed channel width")
    Term.(
      const run_route $ spec_arg $ width $ alg_arg $ passes_arg $ mode_arg $ domains_arg
      $ no_astar_arg $ heap_arg $ render)

(* ---------------- width ---------------- *)

let run_width spec alg passes mode domains no_astar heap start =
  let circuit = F.Circuits.generate spec in
  let config = F.Router.config_with ~alg ~max_passes:passes ~mode ~astar:(not no_astar) ~heap () in
  let arch_of_width w = F.Circuits.arch_for spec ~channel_width:w in
  let start =
    match start with
    | Some s -> s
    | None -> (
        match spec.F.Circuits.published.F.Circuits.ours_ikmb with Some w -> w | None -> 10)
  in
  match F.Router.min_channel_width ~config ~domains ~arch_of_width ~circuit ~start () with
  | Some (w, stats) ->
      Printf.printf "%s: minimum channel width %d with %s (%d passes, wirelength %.0f)\n"
        spec.F.Circuits.circuit w alg.C.Routing_alg.name stats.F.Router.passes
        stats.F.Router.total_wirelength;
      let p = spec.F.Circuits.published in
      let show label = function Some v -> Printf.printf "  %s: %d\n" label v | None -> () in
      show "paper (IKMB)" p.F.Circuits.ours_ikmb;
      show "CGE" p.F.Circuits.cge;
      show "SEGA" p.F.Circuits.sega;
      show "GBP" p.F.Circuits.gbp;
      0
  | None ->
      Printf.printf "%s: no feasible width found in the probed range\n" spec.F.Circuits.circuit;
      1

let width_cmd =
  let start =
    Arg.(value & opt (some int) None & info [ "start" ] ~docv:"W" ~doc:"Initial width probe.")
  in
  Cmd.v
    (Cmd.info "width" ~doc:"Find a circuit's minimum routable channel width")
    Term.(
      const run_width $ spec_arg $ alg_arg $ passes_arg $ mode_arg $ domains_arg $ no_astar_arg
      $ heap_arg $ start)

(* ---------------- table ---------------- *)

let run_table which quick =
  let nets_per_config = if quick then 10 else 50 in
  let max_passes = if quick then 8 else 20 in
  let config = F.Router.config_with ~max_passes () in
  (match which with
  | "1" -> Fr_util.Tab.print (Fr_exp.Table1.to_table (Fr_exp.Table1.run ~nets_per_config ()))
  | "2" -> Fr_util.Tab.print (Fr_exp.Router_tables.table2_to_table (Fr_exp.Router_tables.table2 ~config ()))
  | "3" -> Fr_util.Tab.print (Fr_exp.Router_tables.table3_to_table (Fr_exp.Router_tables.table3 ~config ()))
  | "4" ->
      Fr_util.Tab.print
        (Fr_exp.Router_tables.table4_to_table (Fr_exp.Router_tables.table4 ~max_passes ()))
  | "5" ->
      let t4 = Fr_exp.Router_tables.table4 ~max_passes () in
      Fr_util.Tab.print (Fr_exp.Router_tables.table5_to_table (Fr_exp.Router_tables.table5 ~max_passes t4))
  | "baseline" ->
      Fr_util.Tab.print
        (Fr_exp.Router_tables.baseline_to_table (Fr_exp.Router_tables.baseline ~max_passes ()))
  | other -> Printf.printf "unknown table %s (expected 1-5 or baseline)\n" other);
  0

let table_cmd =
  let which = Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller workloads, fewer passes.") in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one of the paper's tables (1-5, baseline)")
    Term.(const run_table $ which $ quick)

(* ---------------- figure ---------------- *)

let run_figure which =
  let text =
    match which with
    | "3" -> Fr_exp.Figures.fig3 ()
    | "4" -> Fr_exp.Figures.fig4 ()
    | "6" -> Fr_exp.Figures.fig6 ()
    | "10" -> Fr_exp.Figures.fig10 ()
    | "11" -> Fr_exp.Figures.fig11 ()
    | "13" -> Fr_exp.Figures.fig13 ()
    | "14" -> Fr_exp.Figures.fig14 ()
    | "16" -> Fr_exp.Figures.fig16 ()
    | other -> Printf.sprintf "unknown figure %s (expected 3,4,6,10,11,13,14,16)" other
  in
  print_endline text;
  0

let figure_cmd =
  let which = Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE") in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures")
    Term.(const run_figure $ which)

(* ---------------- export / route-file ---------------- *)

let run_export spec =
  print_string (F.Netlist.to_string (F.Circuits.generate spec));
  0

let export_cmd =
  Cmd.v
    (Cmd.info "export" ~doc:"Print a benchmark circuit in the textual netlist format")
    Term.(const run_export $ spec_arg)

let run_route_file file width series alg passes mode domains no_astar heap render =
  let read_all path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match F.Netlist.of_string (read_all file) with
  | Error msg ->
      Printf.printf "cannot parse %s: %s\n" file msg;
      2
  | Ok circuit -> (
      let arch =
        match series with
        | "3000" ->
            F.Arch.xc3000 ~rows:circuit.F.Netlist.rows ~cols:circuit.F.Netlist.cols
              ~channel_width:width
        | _ ->
            F.Arch.xc4000 ~rows:circuit.F.Netlist.rows ~cols:circuit.F.Netlist.cols
              ~channel_width:width
      in
      let rrg = F.Rrg.build arch in
      let config =
        F.Router.config_with ~alg ~max_passes:passes ~mode ~astar:(not no_astar) ~heap ()
      in
      match F.Router.route ~config ~domains rrg circuit with
      | Ok stats ->
          print_endline (F.Render.summary rrg stats);
          if render then print_endline (F.Render.occupancy_map rrg);
          0
      | Error f ->
          Printf.printf "unroutable at W=%d: %d nets failing after %d passes\n" width
            (List.length f.F.Router.failed_nets)
            f.F.Router.passes_tried;
          1)

let route_file_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST_FILE") in
  let width = Arg.(value & opt int 10 & info [ "w"; "width" ] ~docv:"W" ~doc:"Channel width.") in
  let series =
    Arg.(value & opt string "4000" & info [ "series" ] ~docv:"S" ~doc:"3000 or 4000.")
  in
  let render = Arg.(value & flag & info [ "render" ] ~doc:"Print the occupancy map.") in
  Cmd.v
    (Cmd.info "route-file" ~doc:"Route a circuit from a textual netlist file")
    Term.(
      const run_route_file $ file $ width $ series $ alg_arg $ passes_arg $ mode_arg
      $ domains_arg $ no_astar_arg $ heap_arg $ render)

(* ---------------- circuits ---------------- *)

let run_circuits () =
  let t =
    Fr_util.Tab.create ~title:"Benchmark circuits (synthetic reconstructions)"
      ~header:[ "Circuit"; "Series"; "Size"; "#nets"; "2-3"; "4-10"; ">10" ]
  in
  List.iter
    (fun s ->
      Fr_util.Tab.add_row t
        [
          s.F.Circuits.circuit;
          (match s.F.Circuits.series with
          | F.Arch.Series_3000 -> "3000"
          | F.Arch.Series_4000 -> "4000");
          Printf.sprintf "%dx%d" s.F.Circuits.rows s.F.Circuits.cols;
          string_of_int (F.Circuits.total_nets s);
          string_of_int s.F.Circuits.nets_small;
          string_of_int s.F.Circuits.nets_medium;
          string_of_int s.F.Circuits.nets_large;
        ])
    F.Circuits.all_specs;
  Fr_util.Tab.print t;
  0

let circuits_cmd =
  Cmd.v (Cmd.info "circuits" ~doc:"List the benchmark circuits") Term.(const run_circuits $ const ())

(* ---------------- net ---------------- *)

let run_net size congestion seed =
  let rng = Fr_util.Rng.make seed in
  let grid = Fr_exp.Congestion.congested_grid rng ~k:congestion in
  let g = grid.G.Grid.graph in
  let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:size) in
  let cache = G.Dist_cache.create g in
  let t =
    Fr_util.Tab.create
      ~title:
        (Printf.sprintf "One %d-pin net on a 20x20 grid (congestion k=%d, w=%.2f)" size congestion
           (G.Gstate.mean_edge_weight g))
      ~header:[ "Algorithm"; "Wirelength"; "Max path"; "Arborescence?" ]
  in
  List.iter
    (fun (alg : C.Routing_alg.t) ->
      let tree = alg.C.Routing_alg.solve cache ~net in
      let m = C.Eval.metrics cache ~net ~tree in
      Fr_util.Tab.add_row t
        [
          alg.C.Routing_alg.name;
          Printf.sprintf "%.2f" m.C.Eval.cost;
          Printf.sprintf "%.2f" m.C.Eval.max_path;
          (if m.C.Eval.arborescence then "yes" else "no");
        ])
    C.Routing_alg.all;
  Fr_util.Tab.print t;
  0

let net_cmd =
  let size = Arg.(value & opt int 5 & info [ "pins" ] ~docv:"K" ~doc:"Number of pins.") in
  let congestion =
    Arg.(value & opt int 10 & info [ "congestion" ] ~docv:"K" ~doc:"Pre-routed nets.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "net" ~doc:"Route one random net with all eight algorithms")
    Term.(const run_net $ size $ congestion $ seed)

(* ---------------- serve ---------------- *)

let run_serve socket =
  let server = Fr_serve.Server.create ~socket in
  Printf.printf "fpga_route: listening on %s\n%!" socket;
  Fr_serve.Server.serve_forever server;
  0

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket to listen on.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the routing daemon: newline-delimited JSON requests ($(b,route), $(b,eco), \
          $(b,stats), $(b,checkpoint), $(b,shutdown)) over a Unix domain socket, maintaining a \
          long-lived incremental (ECO) routing session between requests")
    Term.(const run_serve $ socket)

let main =
  Cmd.group
    (Cmd.info "fpga_route" ~version:"1.0.0"
       ~doc:"Performance-driven FPGA routing (Alexander-Robins DAC'95 reproduction)")
    [
      route_cmd; width_cmd; table_cmd; figure_cmd; circuits_cmd; net_cmd; export_cmd;
      route_file_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval' main)
