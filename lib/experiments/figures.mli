(** Regeneration of the paper's illustrative figures as textual reports.

    Figures 1, 2, 5, 7–9, 12, 15, 17, 18 are architecture diagrams or
    pseudocode (their reproduction is the code itself); the data-bearing
    figures are regenerated here. *)

val fig3 : ?seed:int -> unit -> string
(** Congestion detours: on a congested 20×20 grid, compares shortest-path
    distance to rectilinear distance for sample pairs (Fig 3's point that
    routed nets destroy the rectilinear metric). *)

val fig4 : unit -> string
(** The four-pin example: one net routed with KMB, IKMB (= IGMST), DJKA,
    and IDOM, reporting wirelength and max pathlength of each — the
    KMB-vs-IGMST/IDOM improvements the figure calls out.  The instance is
    found by deterministic search over small congested grids. *)

val fig6 : unit -> string
(** IKMB execution trace on a small instance: the Steiner points accepted
    and the cost after each (paper's 7 → 6 → 5 walk-through). *)

val fig10 : ?ks:int list -> unit -> string
(** PFA's linear worst case: PFA vs IDOM vs the reference optimum on the
    weighted-graph gadget for growing k. *)

val fig11 : ?ns:int list -> unit -> string
(** PFA on the staircase family: PFA vs interval-DP optimum (the [1,2]
    window), and the congested-grid instance where PFA is strictly
    suboptimal. *)

val fig13 : unit -> string
(** IDOM execution trace: Steiner nodes accepted and the distance-graph
    cost after each (paper's 8 → 6 → 5 walk-through). *)

val fig14 : ?levels_list:int list -> unit -> string
(** IDOM's logarithmic worst case on the set-cover gadget. *)

val fig16 : ?circuit:string -> ?channel_width:int -> unit -> string
(** ASCII rendering of a fully routed circuit (default: busc at the width
    our router needs), the Fig 16 analogue. *)
