(** The congestion workload model of the paper's §5 grid experiments.

    Starting from a unit-weight 20×20 grid, [k] uniformly distributed nets
    of 2–5 pins are routed with KMB; the weight of every edge used by a
    routed net is incremented by 1.  With k = 10 the average edge weight
    lands near the paper's w̄ ≈ 1.28, with k = 20 near w̄ ≈ 1.55. *)

val congested_grid :
  ?width:int -> ?height:int -> Fr_util.Rng.t -> k:int -> Fr_graph.Grid.t
(** Defaults: 20×20.  The pre-routing nets use the same generator as the
    measured nets (uniform pins, 2–5 pins each). *)

val levels : (string * int) list
(** The paper's three congestion levels: none (k=0), low (k=10),
    medium (k=20). *)
