(** Regeneration of the paper's Tables 2–5 (and the live baseline
    comparison backing the CGE/SEGA/GBP juxtaposition).

    Channel-width searches are expensive, so each function takes the
    circuit list to run on (defaults to the full published set) and a
    router configuration (defaults to the paper's: IKMB, 20 passes). *)

type width_row = {
  spec : Fr_fpga.Circuits.spec;
  measured : int option;  (** min channel width found by our router; None = failed *)
  wirelength : float;  (** at the minimal width *)
}

val min_width :
  ?config:Fr_fpga.Router.config -> Fr_fpga.Circuits.spec -> (int * Fr_fpga.Router.stats) option
(** Minimal channel-width search for one circuit, starting near the
    published width. *)

val table2 : ?config:Fr_fpga.Router.config -> ?specs:Fr_fpga.Circuits.spec list -> unit -> width_row list
(** 3000-series circuits with the IKMB router (vs the published CGE
    widths). *)

val table3 : ?config:Fr_fpga.Router.config -> ?specs:Fr_fpga.Circuits.spec list -> unit -> width_row list
(** 4000-series circuits with the IKMB router (vs published SEGA/GBP). *)

val table2_to_table : width_row list -> Fr_util.Tab.t
val table3_to_table : width_row list -> Fr_util.Tab.t

type table4_row = {
  spec4 : Fr_fpga.Circuits.spec;
  w_ikmb : int option;
  w_pfa : int option;
  w_idom : int option;
}

val table4 :
  ?specs:Fr_fpga.Circuits.spec list ->
  ?max_passes:int ->
  ?reuse_ikmb:width_row list ->
  unit ->
  table4_row list
(** [reuse_ikmb] lets the caller feed Table 3's IKMB measurements instead of
    recomputing them (the searches are expensive). *)

val table4_to_table : table4_row list -> Fr_util.Tab.t

type table5_row = {
  spec5 : Fr_fpga.Circuits.spec;
  width : int;  (** common channel width used for the three runs *)
  pfa_wire_pct : float;  (** PFA wirelength increase % vs IKMB *)
  idom_wire_pct : float;
  pfa_path_pct : float;  (** PFA max-pathlength change % vs IKMB (negative = better) *)
  idom_path_pct : float;
}

val table5 :
  ?specs:Fr_fpga.Circuits.spec list -> ?max_passes:int -> table4_row list -> table5_row list
(** Uses Table 4's per-circuit widths: each circuit is routed with IKMB,
    PFA and IDOM at the smallest width feasible for all three. *)

val table5_to_table : table5_row list -> Fr_util.Tab.t

type baseline_row = {
  spec_b : Fr_fpga.Circuits.spec;
  w_tree : int option;  (** IKMB router *)
  w_twopin : int option;  (** two-pin decomposition baseline *)
}

val baseline : ?specs:Fr_fpga.Circuits.spec list -> ?max_passes:int -> unit -> baseline_row list
(** Live stand-in for the CGE/SEGA/GBP comparison: the same router with
    nets broken into two-pin connections. *)

val baseline_to_table : baseline_row list -> Fr_util.Tab.t
