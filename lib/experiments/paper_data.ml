type table1_row = {
  alg : string;
  wire5 : float;
  path5 : float;
  wire8 : float;
  path8 : float;
}

let row alg wire5 path5 wire8 path8 = { alg; wire5; path5; wire8; path8 }

(* Transcribed from the paper's Table 1. *)
let table1 =
  [
    ( "none",
      1.00,
      [
        row "KMB" 0.00 23.51 0.00 40.30;
        row "ZEL" (-6.22) 11.07 (-7.85) 23.42;
        row "IKMB" (-6.47) 10.83 (-8.19) 24.04;
        row "IZEL" (-6.79) 8.85 (-8.31) 21.47;
        row "DJKA" 29.23 0.00 30.53 0.00;
        row "DOM" 17.51 0.00 18.48 0.00;
        row "PFA" (-5.59) 0.00 (-5.02) 0.00;
        row "IDOM" (-5.59) 0.00 (-4.89) 0.00;
      ] );
    ( "low",
      1.28,
      [
        row "KMB" 0.00 27.61 0.00 47.66;
        row "ZEL" (-4.64) 19.14 (-4.10) 34.17;
        row "IKMB" (-5.68) 17.12 (-4.50) 33.35;
        row "IZEL" (-5.98) 14.56 (-5.52) 22.29;
        row "DJKA" 26.64 0.00 32.48 0.00;
        row "DOM" 22.27 0.00 28.09 0.00;
        row "PFA" 8.95 0.00 13.91 0.00;
        row "IDOM" 8.95 0.00 13.91 0.00;
      ] );
    ( "medium",
      1.55,
      [
        row "KMB" 0.00 30.67 0.00 52.67;
        row "ZEL" (-4.37) 21.54 (-3.35) 44.95;
        row "IKMB" (-5.09) 17.77 (-4.42) 42.42;
        row "IZEL" (-5.57) 15.26 (-4.97) 40.20;
        row "DJKA" 22.94 0.00 36.79 0.00;
        row "DOM" 21.78 0.00 33.89 0.00;
        row "PFA" 13.93 0.00 22.65 0.00;
        row "IDOM" 13.93 0.00 22.59 0.00;
      ] );
  ]

let table1_row ~level ~alg =
  match List.find_opt (fun (l, _, _) -> l = level) table1 with
  | None -> None
  | Some (_, _, rows) -> List.find_opt (fun r -> r.alg = alg) rows

let table2_ratio_cge = 1.22
let table3_ratio_sega = 1.26
let table3_ratio_gbp = 1.17
let table5_avg_pfa_wire = 18.2
let table5_avg_idom_wire = 12.8
let table5_avg_pfa_path = -9.5
let table5_avg_idom_path = -10.2
