module F = Fr_fpga
module C = Fr_core
module Tab = Fr_util.Tab

type width_row = {
  spec : F.Circuits.spec;
  measured : int option;
  wirelength : float;
}

let start_width spec =
  (* Begin the search near the published result when available. *)
  let p = spec.F.Circuits.published in
  match (p.F.Circuits.ours_ikmb, p.F.Circuits.cge, p.F.Circuits.sega) with
  | Some w, _, _ | None, Some w, _ | None, None, Some w -> w
  | None, None, None -> 10

let min_width ?(config = F.Router.default_config) spec =
  let circuit = F.Circuits.generate spec in
  let arch_of_width w = F.Circuits.arch_for spec ~channel_width:w in
  F.Router.min_channel_width ~config ~arch_of_width ~circuit ~start:(start_width spec) ()

let width_rows config specs =
  List.map
    (fun spec ->
      match min_width ~config spec with
      | Some (w, stats) ->
          { spec; measured = Some w; wirelength = stats.F.Router.total_wirelength }
      | None -> { spec; measured = None; wirelength = 0. })
    specs

let table2 ?(config = F.Router.default_config) ?(specs = F.Circuits.specs_3000) () =
  width_rows config specs

let table3 ?(config = F.Router.default_config) ?(specs = F.Circuits.specs_4000) () =
  width_rows config specs

let opt_cell = function Some w -> string_of_int w | None -> "fail"

let ratio_note label total_other total_ours =
  if total_ours > 0 then
    Printf.sprintf "%s requires %.0f%% more channel width than our router." label
      (100. *. ((float_of_int total_other /. float_of_int total_ours) -. 1.))
  else label ^ ": n/a"

let sum_opt get rows =
  List.fold_left
    (fun (acc_other, acc_ours) r ->
      match (get r.spec.F.Circuits.published, r.measured) with
      | Some other, Some ours -> (acc_other + other, acc_ours + ours)
      | _ -> (acc_other, acc_ours))
    (0, 0) rows

let table2_to_table rows =
  let t =
    Tab.create ~title:"Table 2: minimum channel width, Xilinx 3000-series (Fs=6, Fc=ceil(0.6W))"
      ~header:[ "Circuit"; "Size"; "#nets"; "2-3"; "4-10"; ">10"; "CGE"; "Paper"; "Ours" ]
  in
  List.iter
    (fun r ->
      let s = r.spec in
      Tab.add_row t
        [
          s.F.Circuits.circuit;
          Printf.sprintf "%dx%d" s.F.Circuits.rows s.F.Circuits.cols;
          string_of_int (F.Circuits.total_nets s);
          string_of_int s.F.Circuits.nets_small;
          string_of_int s.F.Circuits.nets_medium;
          string_of_int s.F.Circuits.nets_large;
          opt_cell s.F.Circuits.published.F.Circuits.cge;
          opt_cell s.F.Circuits.published.F.Circuits.ours_ikmb;
          opt_cell r.measured;
        ])
    rows;
  let cge_total, ours_total = sum_opt (fun p -> p.F.Circuits.cge) rows in
  Tab.add_note t (ratio_note "CGE" cge_total ours_total);
  Tab.add_note t "Paper reports CGE needing 22% more width than its router; circuits here are synthetic reconstructions.";
  t

let table3_to_table rows =
  let t =
    Tab.create ~title:"Table 3: minimum channel width, Xilinx 4000-series (Fs=3, Fc=W)"
      ~header:[ "Circuit"; "Size"; "#nets"; "2-3"; "4-10"; ">10"; "SEGA"; "GBP"; "Paper"; "Ours" ]
  in
  List.iter
    (fun r ->
      let s = r.spec in
      Tab.add_row t
        [
          s.F.Circuits.circuit;
          Printf.sprintf "%dx%d" s.F.Circuits.rows s.F.Circuits.cols;
          string_of_int (F.Circuits.total_nets s);
          string_of_int s.F.Circuits.nets_small;
          string_of_int s.F.Circuits.nets_medium;
          string_of_int s.F.Circuits.nets_large;
          opt_cell s.F.Circuits.published.F.Circuits.sega;
          opt_cell s.F.Circuits.published.F.Circuits.gbp;
          opt_cell s.F.Circuits.published.F.Circuits.ours_ikmb;
          opt_cell r.measured;
        ])
    rows;
  let sega_total, ours_total = sum_opt (fun p -> p.F.Circuits.sega) rows in
  let gbp_total, _ = sum_opt (fun p -> p.F.Circuits.gbp) rows in
  Tab.add_note t (ratio_note "SEGA" sega_total ours_total);
  Tab.add_note t (ratio_note "GBP" gbp_total ours_total);
  Tab.add_note t "Paper reports SEGA/GBP needing 26%/17% more width than its router.";
  t

type table4_row = {
  spec4 : F.Circuits.spec;
  w_ikmb : int option;
  w_pfa : int option;
  w_idom : int option;
}

let table4 ?(specs = F.Circuits.specs_4000) ?(max_passes = 20) ?reuse_ikmb () =
  List.map
    (fun spec ->
      let width_for alg =
        let config = F.Router.config_with ~alg ~max_passes () in
        Option.map fst (min_width ~config spec)
      in
      let ikmb =
        (* Reuse a Table 3 measurement when the caller already has it. *)
        match reuse_ikmb with
        | Some rows -> (
            match List.find_opt (fun r -> r.spec == spec) rows with
            | Some r -> r.measured
            | None -> width_for C.Routing_alg.ikmb)
        | None -> width_for C.Routing_alg.ikmb
      in
      {
        spec4 = spec;
        w_ikmb = ikmb;
        w_pfa = width_for C.Routing_alg.pfa;
        w_idom = width_for C.Routing_alg.idom;
      })
    specs

let table4_to_table rows =
  let t =
    Tab.create ~title:"Table 4: minimum channel width by algorithm (4000-series)"
      ~header:
        [ "Circuit"; "SEGA"; "GBP"; "IKMB meas"; "IKMB paper"; "PFA meas"; "PFA paper";
          "IDOM meas"; "IDOM paper" ]
  in
  List.iter
    (fun r ->
      let p = r.spec4.F.Circuits.published in
      Tab.add_row t
        [
          r.spec4.F.Circuits.circuit;
          opt_cell p.F.Circuits.sega;
          opt_cell p.F.Circuits.gbp;
          opt_cell r.w_ikmb;
          opt_cell p.F.Circuits.ours_ikmb;
          opt_cell r.w_pfa;
          opt_cell p.F.Circuits.ours_pfa;
          opt_cell r.w_idom;
          opt_cell p.F.Circuits.ours_idom;
        ])
    rows;
  Tab.add_note t
    "PFA/IDOM minimize pathlength first, so they need somewhat wider channels than IKMB — but no \
     more than SEGA/GBP (paper's observation).";
  t

type table5_row = {
  spec5 : F.Circuits.spec;
  width : int;
  pfa_wire_pct : float;
  idom_wire_pct : float;
  pfa_path_pct : float;
  idom_path_pct : float;
}

let route_at spec alg ~width ~max_passes =
  let config = F.Router.config_with ~alg ~max_passes () in
  let circuit = F.Circuits.generate spec in
  let arch = F.Circuits.arch_for spec ~channel_width:width in
  let rrg = F.Rrg.build arch in
  match F.Router.route ~config rrg circuit with Ok stats -> Some stats | Error _ -> None

let table5 ?specs ?(max_passes = 20) t4_rows =
  let rows =
    match specs with
    | None -> t4_rows
    | Some ss -> List.filter (fun r -> List.memq r.spec4 ss) t4_rows
  in
  List.filter_map
    (fun r ->
      match (r.w_ikmb, r.w_pfa, r.w_idom) with
      | Some a, Some b, Some c ->
          let width = max a (max b c) in
          let run alg = route_at r.spec4 alg ~width ~max_passes in
          (match (run C.Routing_alg.ikmb, run C.Routing_alg.pfa, run C.Routing_alg.idom) with
          | Some ik, Some pf, Some id ->
              let pct f g = Fr_util.Stats.percent_vs f g in
              Some
                {
                  spec5 = r.spec4;
                  width;
                  pfa_wire_pct =
                    pct pf.F.Router.total_wirelength ik.F.Router.total_wirelength;
                  idom_wire_pct =
                    pct id.F.Router.total_wirelength ik.F.Router.total_wirelength;
                  pfa_path_pct = pct pf.F.Router.total_max_path ik.F.Router.total_max_path;
                  idom_path_pct = pct id.F.Router.total_max_path ik.F.Router.total_max_path;
                }
          | _ -> None)
      | _ -> None)
    rows

let table5_to_table rows =
  let t =
    Tab.create
      ~title:
        "Table 5: wirelength increase and max-pathlength decrease of PFA/IDOM vs IKMB at equal \
         channel width"
      ~header:
        [ "Circuit"; "W"; "PFA wire%"; "paper"; "IDOM wire%"; "paper"; "PFA path%"; "paper";
          "IDOM path%"; "paper" ]
  in
  let fmt_opt = function Some f -> Tab.fmt_signed f | None -> "-" in
  List.iter
    (fun r ->
      let p = r.spec5.F.Circuits.published in
      Tab.add_row t
        [
          r.spec5.F.Circuits.circuit;
          string_of_int r.width;
          Tab.fmt_signed r.pfa_wire_pct;
          fmt_opt p.F.Circuits.table5_pfa_wire;
          Tab.fmt_signed r.idom_wire_pct;
          fmt_opt p.F.Circuits.table5_idom_wire;
          Tab.fmt_signed r.pfa_path_pct;
          fmt_opt p.F.Circuits.table5_pfa_path;
          Tab.fmt_signed r.idom_path_pct;
          fmt_opt p.F.Circuits.table5_idom_path;
        ])
    rows;
  (if rows <> [] then
     let mean f = Fr_util.Stats.mean (List.map f rows) in
     Tab.add_note t
       (Printf.sprintf
          "Averages (measured): PFA wire %+.1f%%, IDOM wire %+.1f%%, PFA path %+.1f%%, IDOM path \
           %+.1f%%  (paper: %+.1f / %+.1f / %+.1f / %+.1f)"
          (mean (fun r -> r.pfa_wire_pct))
          (mean (fun r -> r.idom_wire_pct))
          (mean (fun r -> r.pfa_path_pct))
          (mean (fun r -> r.idom_path_pct))
          Paper_data.table5_avg_pfa_wire Paper_data.table5_avg_idom_wire
          Paper_data.table5_avg_pfa_path Paper_data.table5_avg_idom_path));
  t

type baseline_row = {
  spec_b : F.Circuits.spec;
  w_tree : int option;
  w_twopin : int option;
}

let baseline ?(specs = F.Circuits.specs_4000) ?(max_passes = 20) () =
  List.map
    (fun spec ->
      let width_with config = Option.map fst (min_width ~config spec) in
      let tree_cfg = F.Router.config_with ~alg:C.Routing_alg.ikmb ~max_passes () in
      let twopin_cfg =
        { tree_cfg with F.Router.strategy = F.Router.Two_pin_decomposition }
      in
      { spec_b = spec; w_tree = width_with tree_cfg; w_twopin = width_with twopin_cfg })
    specs

let baseline_to_table rows =
  let t =
    Tab.create
      ~title:
        "Baseline: routing multi-pin nets as units (IKMB) vs two-pin decomposition (the \
         CGE/SEGA/GBP strategy)"
      ~header:[ "Circuit"; "IKMB W"; "Two-pin W"; "Two-pin overhead %" ]
  in
  let total_tree = ref 0 and total_twopin = ref 0 in
  List.iter
    (fun r ->
      (match (r.w_tree, r.w_twopin) with
      | Some a, Some b ->
          total_tree := !total_tree + a;
          total_twopin := !total_twopin + b
      | _ -> ());
      let overhead =
        match (r.w_tree, r.w_twopin) with
        | Some a, Some b when a > 0 ->
            Printf.sprintf "%+.0f%%" (100. *. ((float_of_int b /. float_of_int a) -. 1.))
        | _ -> "-"
      in
      Tab.add_row t
        [ r.spec_b.F.Circuits.circuit; opt_cell r.w_tree; opt_cell r.w_twopin; overhead ])
    rows;
  if !total_tree > 0 then
    Tab.add_note t
      (Printf.sprintf
         "Two-pin decomposition needs %.0f%% more channel width overall (paper reports 17-26%% \
          for SEGA/GBP/CGE)."
         (100. *. ((float_of_int !total_twopin /. float_of_int !total_tree) -. 1.)));
  t
