(** Regeneration of the paper's Table 1.

    For each congestion level (k ∈ {0, 10, 20} pre-routed nets) and net
    size (5 and 8 pins), [nets_per_config] uniformly distributed nets are
    routed on freshly congested 20×20 grids with all eight algorithms.
    Per net, wirelength is normalized to KMB's and the maximum source–sink
    pathlength to the optimal (the max shortest-path distance); the table
    reports mean percentages, with positive = worse, exactly as the
    paper. *)

type alg_result = {
  alg : string;
  wire_pct : float;  (** mean wirelength % w.r.t. KMB *)
  path_pct : float;  (** mean max-pathlength % w.r.t. optimal *)
}

type section = {
  level : string;  (** none / low / medium *)
  k_preroutes : int;
  mean_edge_weight : float;  (** measured w̄ (averaged over instances) *)
  by_size : (int * alg_result list) list;  (** net size -> rows *)
}

val run : ?nets_per_config:int -> ?seed:int -> ?sizes:int list -> unit -> section list
(** Defaults: 50 nets per configuration (the paper's count), seed 1,
    sizes [5; 8]. *)

val to_table : section list -> Fr_util.Tab.t
(** Paper-style rendering, with the published Table 1 values juxtaposed. *)
