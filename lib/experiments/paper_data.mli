(** Published numbers from the paper, used for side-by-side reporting.

    These are constants transcribed from the paper's tables — the closed or
    unavailable comparators (CGE, SEGA, GBP) and the authors' own measured
    results — so every regenerated table can juxtapose "paper" and
    "measured" exactly the way the original does.  Per-circuit channel
    widths live with the circuit specs in {!Fr_fpga.Circuits}. *)

type table1_row = {
  alg : string;
  wire5 : float;  (** 5-pin wirelength % w.r.t. KMB *)
  path5 : float;  (** 5-pin max pathlength % w.r.t. optimal *)
  wire8 : float;
  path8 : float;
}

val table1 : (string * float * table1_row list) list
(** Per congestion level: (label, published mean edge weight w̄, rows in
    the paper's algorithm order). *)

val table1_row : level:string -> alg:string -> table1_row option

val table2_ratio_cge : float
(** CGE needs 22% more channel width than the paper's router (Table 2). *)

val table3_ratio_sega : float
(** 26% (Table 3). *)

val table3_ratio_gbp : float
(** 17% (Table 3). *)

val table5_avg_pfa_wire : float
val table5_avg_idom_wire : float
val table5_avg_pfa_path : float
val table5_avg_idom_path : float
