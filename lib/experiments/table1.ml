module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng
module Stats = Fr_util.Stats
module Tab = Fr_util.Tab

type alg_result = {
  alg : string;
  wire_pct : float;
  path_pct : float;
}

type section = {
  level : string;
  k_preroutes : int;
  mean_edge_weight : float;
  by_size : (int * alg_result list) list;
}

let route_one rng ~k ~size =
  (* A fresh congested grid per net, as in the paper. *)
  let grid = Congestion.congested_grid rng ~k in
  let g = grid.G.Grid.graph in
  let terminals = G.Random_graph.random_net rng g ~k:size in
  let net = C.Net.of_terminals terminals in
  let cache = G.Dist_cache.create g in
  let opt_path =
    let r = G.Dist_cache.result cache ~src:net.C.Net.source in
    List.fold_left (fun acc s -> max acc (G.Dijkstra.dist r s)) 0. net.C.Net.sinks
  in
  let results =
    List.map
      (fun alg ->
        let tree = alg.C.Routing_alg.solve cache ~net in
        let m = C.Eval.metrics cache ~net ~tree in
        (alg.C.Routing_alg.name, m.C.Eval.cost, m.C.Eval.max_path))
      C.Routing_alg.all
  in
  let kmb_cost =
    match List.find_opt (fun (n, _, _) -> n = "KMB") results with
    | Some (_, c, _) -> c
    | None -> assert false
  in
  ( G.Gstate.mean_edge_weight g,
    List.map
      (fun (name, cost, path) ->
        (name, Stats.percent_vs cost kmb_cost, Stats.percent_vs path opt_path))
      results )

let run ?(nets_per_config = 50) ?(seed = 1) ?(sizes = [ 5; 8 ]) () =
  List.map
    (fun (level, k) ->
      let weights = ref [] in
      let by_size =
        List.map
          (fun size ->
            let rng = Rng.make (seed + (1000 * k) + size) in
            let per_alg = Hashtbl.create 8 in
            for _ = 1 to nets_per_config do
              let w, rows = route_one rng ~k ~size in
              weights := w :: !weights;
              List.iter
                (fun (name, wire, path) ->
                  let ws, ps =
                    try Hashtbl.find per_alg name with Not_found -> ([], [])
                  in
                  Hashtbl.replace per_alg name (wire :: ws, path :: ps))
                rows
            done;
            let rows =
              List.map
                (fun alg ->
                  let name = alg.C.Routing_alg.name in
                  let ws, ps = try Hashtbl.find per_alg name with Not_found -> ([], []) in
                  { alg = name; wire_pct = Stats.mean ws; path_pct = Stats.mean ps })
                C.Routing_alg.all
            in
            (size, rows))
          sizes
      in
      { level; k_preroutes = k; mean_edge_weight = Stats.mean !weights; by_size })
    Congestion.levels

let to_table sections =
  let t =
    Tab.create
      ~title:
        "Table 1: average wirelength % (w.r.t. KMB) and max pathlength % (w.r.t. optimal)"
      ~header:
        [ "Algorithm"; "Wire5 meas"; "Wire5 paper"; "Path5 meas"; "Path5 paper"; "Wire8 meas";
          "Wire8 paper"; "Path8 meas"; "Path8 paper" ]
  in
  List.iter
    (fun s ->
      Tab.add_separator t;
      Tab.add_row t
        [
          Printf.sprintf "-- %s congestion (k=%d, measured w=%.2f)" s.level s.k_preroutes
            s.mean_edge_weight;
        ];
      let find size alg =
        match List.assoc_opt size s.by_size with
        | None -> None
        | Some rows -> List.find_opt (fun r -> r.alg = alg) rows
      in
      List.iter
        (fun alg ->
          let name = alg.C.Routing_alg.name in
          let paper = Paper_data.table1_row ~level:s.level ~alg:name in
          let cell f = Tab.fmt_signed f in
          let paper_cell f = match paper with Some p -> Tab.fmt_signed (f p) | None -> "-" in
          let m5 = find 5 name and m8 = find 8 name in
          let meas_cell m f = match m with Some r -> cell (f r) | None -> "-" in
          Tab.add_row t
            [
              name;
              meas_cell m5 (fun r -> r.wire_pct);
              paper_cell (fun p -> p.Paper_data.wire5);
              meas_cell m5 (fun r -> r.path_pct);
              paper_cell (fun p -> p.Paper_data.path5);
              meas_cell m8 (fun r -> r.wire_pct);
              paper_cell (fun p -> p.Paper_data.wire8);
              meas_cell m8 (fun r -> r.path_pct);
              paper_cell (fun p -> p.Paper_data.path8);
            ])
        C.Routing_alg.all)
    sections;
  Tab.add_note t
    "Positive = worse (more wire / longer paths); arborescence algorithms are 0.00 on Path by \
     construction.";
  t
