module G = Fr_graph
module C = Fr_core
module F = Fr_fpga
module Rng = Fr_util.Rng
module Tab = Fr_util.Tab

let fig3 ?(seed = 3) () =
  let rng = Rng.make seed in
  let grid = Congestion.congested_grid rng ~k:20 in
  let g = grid.G.Grid.graph in
  let t =
    Tab.create
      ~title:"Figure 3: congestion detours — shortest-path vs rectilinear distance (k=20)"
      ~header:[ "Pair"; "Rectilinear"; "Weighted shortest path"; "Stretch" ]
  in
  let total_stretch = ref [] in
  for i = 1 to 8 do
    let a = Rng.int rng (G.Gstate.num_nodes g) and b = Rng.int rng (G.Gstate.num_nodes g) in
    if a <> b then begin
      let rect = float_of_int (G.Grid.manhattan grid a b) in
      let d = G.Dijkstra.dist (G.Dijkstra.run g ~src:a) b in
      let ax, ay = G.Grid.coords grid a and bx, by = G.Grid.coords grid b in
      if rect > 0. then begin
        total_stretch := (d /. rect) :: !total_stretch;
        Tab.add_row t
          [
            Printf.sprintf "%d: (%d,%d)-(%d,%d)" i ax ay bx by;
            Printf.sprintf "%.0f" rect;
            Printf.sprintf "%.2f" d;
            Printf.sprintf "%.2f" (d /. rect);
          ]
      end
    end
  done;
  Tab.add_note t
    (Printf.sprintf "Mean stretch %.2f; mean edge weight w=%.2f — distances no longer rectilinear."
       (Fr_util.Stats.mean !total_stretch)
       (G.Gstate.mean_edge_weight g));
  Tab.to_string t

(* Deterministic search for a 4-pin instance exhibiting the figure's
   qualitative relations: KMB strictly worse in wirelength than IKMB and
   IDOM, and strictly worse in max pathlength than IKMB, which in turn is
   worse than IDOM (= optimal). *)
let find_fig4_instance () =
  let try_seed seed =
    let rng = Rng.make seed in
    let grid = Congestion.congested_grid rng ~k:12 ~width:8 ~height:8 in
    let g = grid.G.Grid.graph in
    let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:4) in
    let cache = G.Dist_cache.create g in
    let solve (alg : C.Routing_alg.t) = alg.C.Routing_alg.solve cache ~net in
    let m alg = C.Eval.metrics cache ~net ~tree:(solve alg) in
    let kmb = m C.Routing_alg.kmb
    and ikmb = m C.Routing_alg.ikmb
    and djka = m C.Routing_alg.djka
    and idom = m C.Routing_alg.idom in
    let open C.Eval in
    if
      kmb.cost > ikmb.cost +. 1e-6
      && idom.cost <= kmb.cost +. 1e-6
      && kmb.max_path > ikmb.max_path +. 1e-6
      && ikmb.max_path > idom.max_path +. 1e-6
    then Some (seed, kmb, ikmb, djka, idom)
    else None
  in
  let rec search seed = if seed > 4000 then None else
      match try_seed seed with Some r -> Some r | None -> search (seed + 1)
  in
  search 0

let fig4 () =
  match find_fig4_instance () with
  | None -> "Figure 4: no qualifying instance found in the search budget."
  | Some (seed, kmb, ikmb, djka, idom) ->
      let open C.Eval in
      let t =
        Tab.create
          ~title:
            (Printf.sprintf
               "Figure 4: one 4-pin net, four routing solutions (congested 8x8 grid, seed %d)"
               seed)
          ~header:[ "Solution"; "Wirelength"; "Max pathlength"; "Pathlength optimal?" ]
      in
      let row name m =
        Tab.add_row t
          [
            name;
            Printf.sprintf "%.2f" m.cost;
            Printf.sprintf "%.2f" m.max_path;
            (if m.arborescence then "yes" else "no");
          ]
      in
      row "KMB (a)" kmb;
      row "IKMB/IGMST (b)" ikmb;
      row "DJKA (c)" djka;
      row "IDOM (d)" idom;
      Tab.add_note t
        (Printf.sprintf "KMB uses %.1f%% more wirelength than IKMB; max-path improvements over \
                         KMB: IKMB %.1f%%, IDOM %.1f%% (paper's instance: 12.5%%, 25%%, 50%%)."
           (Fr_util.Stats.percent_vs kmb.cost ikmb.cost)
           (100. *. (kmb.max_path -. ikmb.max_path) /. kmb.max_path)
           (100. *. (kmb.max_path -. idom.max_path) /. kmb.max_path));
      Tab.to_string t

(* Fig 6's walk-through instance: terminals A,B,C,D; hub S2 serves A,B,C;
   hub S3 shortens the C-D connection. *)
let fig6_instance () =
  let g = G.Wgraph.create 6 in
  let a = 0 and b = 1 and c = 2 and d = 3 and s2 = 4 and s3 = 5 in
  let ( += ) (u, v) w = ignore (G.Wgraph.add_edge g u v w) in
  (a, b) += 1.9;
  (b, c) += 1.9;
  (c, d) += 2.5;
  (s2, a) += 1.;
  (s2, b) += 1.;
  (s2, c) += 1.;
  (s3, c) += 1.;
  (s3, d) += 1.;
  (G.Gstate.of_builder g, [ a; b; c; d ], [ s2; s3 ])

let fig6 () =
  let g, terminals, hubs = fig6_instance () in
  let cache = G.Dist_cache.create g in
  let steiner = C.Igmst.steiner_nodes C.Igmst.kmb cache ~terminals in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Figure 6: IKMB execution trace (terminals A,B,C,D; hubs S2,S3)\n";
  let cost_with s = C.Kmb.cost cache ~terminals:(s @ terminals) in
  Buffer.add_string buf (Printf.sprintf "  initial KMB cost          : %.2f\n" (cost_with []));
  let rec walk accepted = function
    | [] -> ()
    | s :: rest ->
        let accepted = s :: accepted in
        Buffer.add_string buf
          (Printf.sprintf "  + Steiner node %s -> cost : %.2f\n"
             (if s = List.nth hubs 0 then "S2" else if s = List.nth hubs 1 then "S3" else string_of_int s)
             (cost_with accepted));
        walk accepted rest
  in
  walk [] (List.rev steiner);
  let final = C.Igmst.ikmb cache ~terminals in
  Buffer.add_string buf
    (Printf.sprintf "  final IKMB tree cost      : %.2f (KMB alone: %.2f)\n"
       (G.Tree.cost g final) (C.Kmb.cost cache ~terminals));
  Buffer.contents buf

let worst_case_table title header rows notes =
  let t = Tab.create ~title ~header in
  List.iter (Tab.add_row t) rows;
  List.iter (Tab.add_note t) notes;
  Tab.to_string t

let fig10 ?(ks = [ 4; 6; 8; 12; 16 ]) () =
  let rows =
    List.map
      (fun k ->
        let inst = C.Worst_case.pfa_graph ~k in
        let cache = G.Dist_cache.create inst.C.Worst_case.graph in
        let net = inst.C.Worst_case.net in
        let pfa = G.Tree.cost inst.C.Worst_case.graph (C.Pfa.solve cache ~net) in
        let idom = G.Tree.cost inst.C.Worst_case.graph (C.Idom.solve cache ~net) in
        let opt = inst.C.Worst_case.reference_cost in
        [
          string_of_int k;
          Printf.sprintf "%.2f" opt;
          Printf.sprintf "%.2f" pfa;
          Printf.sprintf "%.2f" (pfa /. opt);
          Printf.sprintf "%.2f" idom;
          Printf.sprintf "%.2f" (idom /. opt);
        ])
      ks
  in
  worst_case_table "Figure 10: PFA's Theta(N) worst case on weighted graphs"
    [ "k sinks"; "OPT"; "PFA"; "PFA/OPT"; "IDOM"; "IDOM/OPT" ]
    rows
    [ "PFA's ratio grows linearly with k; IDOM solves these instances optimally (paper §4.2)." ]

let fig11 ?(ns = [ 4; 8; 12; 16 ]) () =
  let rows =
    List.map
      (fun n ->
        let inst = C.Worst_case.pfa_grid ~n in
        let cache = G.Dist_cache.create inst.C.Worst_case.graph in
        let net = inst.C.Worst_case.net in
        let pfa = G.Tree.cost inst.C.Worst_case.graph (C.Pfa.solve cache ~net) in
        let opt = inst.C.Worst_case.reference_cost in
        [
          string_of_int n;
          Printf.sprintf "%.1f" opt;
          Printf.sprintf "%.1f" pfa;
          Printf.sprintf "%.3f" (pfa /. opt);
        ])
      ns
  in
  worst_case_table
    "Figure 11: PFA on the staircase family (horizontal spacing 1, vertical 2)"
    [ "n"; "OPT (interval DP)"; "PFA"; "PFA/OPT" ]
    rows
    [
      "RSA's merge order alone approaches 2x opt on staircases; PFA's final nearest-dominated \
       refold (Fig 9's output step) repairs them — see EXPERIMENTS.md.";
      "PFA remains within the proven [1,2] window, and is strictly suboptimal on congested \
       grids (test suite exhibits a 10x10 instance).";
    ]

(* Fig 13's walk-through: source A, sinks B..E; hub M1 folds B and C, hub
   M2 (one step beyond M1) folds D and E — IDOM accepts both in turn. *)
let fig13_instance () =
  let g = G.Wgraph.create 7 in
  let a = 0 and b = 1 and c = 2 and d = 3 and e = 4 and m1 = 5 and m2 = 6 in
  let ( += ) (u, v) w = ignore (G.Wgraph.add_edge g u v w) in
  (a, m1) += 2.;
  (m1, b) += 1.;
  (m1, c) += 1.;
  (m1, m2) += 1.;
  (m2, d) += 1.;
  (m2, e) += 1.;
  (a, b) += 3.;
  (a, c) += 3.;
  (a, d) += 4.;
  (a, e) += 4.;
  (G.Gstate.of_builder g, C.Net.make ~source:a ~sinks:[ b; c; d; e ], [ m1; m2 ])

let fig13 () =
  let g, net, hubs = fig13_instance () in
  ignore hubs;
  let cache = G.Dist_cache.create g in
  let trace = C.Idom.distance_graph_cost_trace cache ~net in
  let steiner = C.Idom.steiner_nodes cache ~net in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Figure 13: IDOM execution trace (source A; sinks B,C,D,E; hubs M1,M2)\n";
  Buffer.add_string buf
    (Printf.sprintf "  distance-graph cost trace : %s\n"
       (String.concat " -> " (List.map (Printf.sprintf "%.2f") trace)));
  Buffer.add_string buf
    (Printf.sprintf "  Steiner nodes accepted    : %s\n"
       (String.concat ", " (List.map (fun s -> if s = 5 then "M1" else if s = 6 then "M2" else string_of_int s) steiner)));
  let tree = C.Idom.solve cache ~net in
  Buffer.add_string buf
    (Printf.sprintf "  final IDOM tree cost      : %.2f (DOM alone: %.2f); pathlengths optimal: %b\n"
       (G.Tree.cost g tree)
       (G.Tree.cost g (C.Dom.solve cache ~net))
       (C.Eval.is_arborescence cache ~net ~tree));
  Buffer.contents buf

let fig14 ?(levels_list = [ 2; 3; 4; 5; 6 ]) () =
  let rows =
    List.map
      (fun levels ->
        let inst = C.Worst_case.idom_graph ~levels in
        let cache = G.Dist_cache.create inst.C.Worst_case.graph in
        let net = inst.C.Worst_case.net in
        let idom = G.Tree.cost inst.C.Worst_case.graph (C.Idom.solve cache ~net) in
        let opt = inst.C.Worst_case.reference_cost in
        let nsinks = List.length net.C.Net.sinks in
        [
          string_of_int levels;
          string_of_int nsinks;
          Printf.sprintf "%.3f" opt;
          Printf.sprintf "%.3f" idom;
          Printf.sprintf "%.2f" (idom /. opt);
        ])
      levels_list
  in
  worst_case_table "Figure 14: IDOM's Omega(log N) worst case (set-cover gadget)"
    [ "levels"; "N sinks"; "OPT"; "IDOM"; "IDOM/OPT" ]
    rows
    [
      "IDOM greedily picks the exponentially shrinking decoy boxes (cost ~ levels) while two \
       good boxes suffice (cost ~ 2) — consistent with the ln(n) set-cover hardness of GSA.";
    ]

let fig16 ?(circuit = "busc") ?channel_width () =
  match F.Circuits.find_spec circuit with
  | None -> Printf.sprintf "Figure 16: unknown circuit %s" circuit
  | Some spec -> (
      let cir = F.Circuits.generate spec in
      let w =
        match channel_width with
        | Some w -> w
        | None -> (
            match spec.F.Circuits.published.F.Circuits.ours_ikmb with
            | Some w -> w
            | None -> 10)
      in
      let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:w) in
      match F.Router.route rrg cir with
      | Ok stats ->
          Printf.sprintf "Figure 16: routed %s at W=%d\n%s\n%s" circuit w
            (F.Render.summary rrg stats) (F.Render.occupancy_map rrg)
      | Error f ->
          Printf.sprintf "Figure 16: %s unroutable at W=%d (%d nets failed)" circuit w
            (List.length f.F.Router.failed_nets))
