module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng

let congested_grid ?(width = 20) ?(height = 20) rng ~k =
  let grid = G.Grid.create ~width ~height () in
  let g = grid.G.Grid.graph in
  for _ = 1 to k do
    let pins = 2 + Rng.int rng 4 in
    let terminals = G.Random_graph.random_net rng g ~k:pins in
    let cache = G.Dist_cache.create g in
    let tree = C.Kmb.solve cache ~terminals in
    List.iter (fun e -> G.Gstate.add_weight g e 1.) tree.G.Tree.edges
  done;
  grid

let levels = [ ("none", 0); ("low", 10); ("medium", 20) ]
