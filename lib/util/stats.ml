let sum l = List.fold_left ( +. ) 0. l

let mean = function
  | [] -> 0.
  | l -> sum l /. float_of_int (List.length l)

let mean_arr a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean l in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. l in
      sqrt (sq /. float_of_int (List.length l))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: rest -> List.fold_left min x rest

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: rest -> List.fold_left max x rest

let percent_vs x reference =
  if reference = 0. then 0. else 100. *. (x -. reference) /. reference
