(** Deterministic pseudo-random helpers.

    All experiment workloads are generated from named seeds so that every
    table and figure is reproducible run-to-run. *)

type t = Random.State.t

val make : int -> t
(** [make seed] is a fresh generator from an integer seed. *)

val of_name : string -> t
(** [of_name s] derives a deterministic generator from a string (used to
    give each benchmark circuit its own stable stream). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k n] is [k] distinct integers drawn uniformly from
    [\[0, n)].  Requires [k <= n]. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child generator, for giving each worker
    domain its own deterministic stream.  Consumes one value from the
    parent, so derive children in a fixed order (e.g. [Array.init n (split t)]).
    @raise Invalid_argument if [i < 0]. *)
