type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  cap_hint : int;  (* requested initial capacity; applied at first push *)
}

(* A polymorphic vector cannot allocate storage before it has a value to
   fill it with, so [capacity] is recorded and honored on the first push. *)
let create ?(capacity = 0) () = { data = [||]; len = 0; cap_hint = max capacity 0 }

let make n x = { data = Array.make (max n 1) x; len = n; cap_hint = 0 }

let length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then max 8 v.cap_hint else 2 * cap in
  let data = Array.make ncap x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* [what] names the public entry point so the Invalid_argument points at
   the call that actually tripped the bounds check. *)
let check v i what =
  if i < 0 || i >= v.len then invalid_arg ("Vec." ^ what ^ ": index out of bounds")

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let clear v = v.len <- 0

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0
