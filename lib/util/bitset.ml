(* Packed bit vector over an int array.  16 bits per word keeps the shift
   arithmetic valid on every OCaml int width while staying a single load +
   mask per access — the enable flags of the routing substrate live here. *)

type t = {
  words : int array;
  size : int;
}

let bits_per_word = 16

let shift = 4

let mask = 15

let words_for n = (n + bits_per_word - 1) lsr shift

let create ?(value = true) n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { words = Array.make (max 1 (words_for n)) (if value then 0xFFFF else 0); size = n }

let length t = t.size

let get t i = (Array.unsafe_get t.words (i lsr shift) lsr (i land mask)) land 1 = 1

let set t i b =
  let w = i lsr shift and bit = 1 lsl (i land mask) in
  let cur = Array.unsafe_get t.words w in
  Array.unsafe_set t.words w (if b then cur lor bit else cur land lnot bit)

let copy t = { words = Array.copy t.words; size = t.size }

let count t =
  let c = ref 0 in
  for i = 0 to t.size - 1 do
    if get t i then incr c
  done;
  !c
