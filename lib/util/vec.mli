(** Growable arrays (OCaml 5.1 has no [Dynarray] yet).

    A [Vec.t] is a mutable sequence supporting amortized O(1) [push] and
    O(1) random access.  Used throughout the graph substrate for adjacency
    lists and edge stores. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty vector.  [capacity] pre-sizes the backing store
    (applied at the first push, since a polymorphic vector has no element to
    fill preallocated slots with) so that pushing up to [capacity] elements
    never reallocates. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end of [v]. *)

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array
(** [to_array v] is a fresh array with the elements of [v].
    @raise Invalid_argument on an empty vector of unknown element type is
    impossible: an empty vector yields [[||]]. *)

val of_list : 'a list -> 'a t

val clear : 'a t -> unit
(** [clear v] removes all elements (capacity is retained). *)

val exists : ('a -> bool) -> 'a t -> bool
