(* A fixed pool of worker domains, reused across waves.

   One wave = one [run]/[map] call.  Workers park on [wake] between waves
   and re-arm off a generation counter, so a pool created once at router
   entry amortizes domain spawn cost over every batch of every pass.  Work
   distribution is an atomic cursor over the index space: claiming is
   wait-free, and the chunk size bounds how uneven job costs can skew the
   split.  The caller is worker 0 and works its own share of the wave
   rather than blocking, so [domains = n] means n executing domains, not
   n + 1. *)

type wave = {
  job : worker:int -> int -> unit;
  count : int;
  cursor : int Atomic.t;
  abort : bool Atomic.t;  (* set on first failure: stop claiming chunks *)
  (* Smallest-index failure among jobs that ran; guarded by the pool mutex. *)
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
  mutable live : int;  (* spawned workers still inside this wave *)
}

type t = {
  domains : int;
  chunk : int;
  m : Mutex.t;
  wake : Condition.t;  (* workers: a new wave (or stop) is available *)
  finished : Condition.t;  (* caller: all spawned workers left the wave *)
  mutable wave : wave option;
  mutable gen : int;  (* bumped per wave; workers re-arm on change *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable shut : bool;
}

(* Run jobs until the cursor passes [count] or a failure aborts the wave.
   Indices inside an already-claimed chunk still run after an abort; only
   new claims stop.  Per-job exceptions are recorded, not propagated, so
   one domain's failure cannot leave another's chunk half-done. *)
let work t ~worker w =
  let rec loop () =
    if not (Atomic.get w.abort) then begin
      let lo = Atomic.fetch_and_add w.cursor t.chunk in
      if lo < w.count then begin
        let hi = Int.min w.count (lo + t.chunk) in
        for i = lo to hi - 1 do
          try w.job ~worker i
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Atomic.set w.abort true;
            Mutex.lock t.m;
            (match w.failed with
            | Some (j, _, _) when j <= i -> ()
            | _ -> w.failed <- Some (i, e, bt));
            Mutex.unlock t.m
        done;
        loop ()
      end
    end
  in
  loop ()

let rec worker_loop t ~worker last_gen =
  Mutex.lock t.m;
  while (not t.stop) && t.gen = last_gen do
    Condition.wait t.wake t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let gen = t.gen in
    let w = match t.wave with Some w -> w | None -> assert false in
    Mutex.unlock t.m;
    work t ~worker w;
    Mutex.lock t.m;
    w.live <- w.live - 1;
    if w.live = 0 then Condition.broadcast t.finished;
    Mutex.unlock t.m;
    worker_loop t ~worker gen
  end

let create ?(chunk = 1) ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if chunk < 1 then invalid_arg "Pool.create: chunk must be >= 1";
  let t =
    {
      domains;
      chunk;
      m = Mutex.create ();
      wake = Condition.create ();
      finished = Condition.create ();
      wave = None;
      gen = 0;
      stop = false;
      workers = [];
      shut = false;
    }
  in
  t.workers <-
    List.init (domains - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t ~worker:(k + 1) 0));
  t

let size t = t.domains

let run t ~count f =
  if t.shut then invalid_arg "Pool.run: pool is shut down";
  if count < 0 then invalid_arg "Pool.run: negative count";
  if count = 0 then ()
  else if t.domains = 1 then
    (* Inline fast path: same job order a 1-worker wave would use, without
       touching the mutex or condition variables. *)
    for i = 0 to count - 1 do
      f ~worker:0 i
    done
  else begin
    let w =
      {
        job = f;
        count;
        cursor = Atomic.make 0;
        abort = Atomic.make false;
        failed = None;
        live = t.domains - 1;
      }
    in
    Mutex.lock t.m;
    t.wave <- Some w;
    t.gen <- t.gen + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    work t ~worker:0 w;
    Mutex.lock t.m;
    while w.live > 0 do
      Condition.wait t.finished t.m
    done;
    t.wave <- None;
    let failed = w.failed in
    Mutex.unlock t.m;
    match failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map t ~count f =
  let out = Array.make count None in
  run t ~count (fun ~worker i -> out.(i) <- Some (f ~worker i));
  (* [run] returned normally, so every index executed and filled its slot. *)
  Array.map (function Some v -> v | None -> assert false) out

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
