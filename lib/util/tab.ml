type row =
  | Cells of string list
  | Rule

type t = {
  title : string;
  header : string list;
  mutable rows : row list; (* stored reversed *)
  mutable notes : string list; (* stored reversed *)
}

let create ~title ~header = { title; header; rows = []; notes = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Rule :: t.rows

let add_note t s = t.notes <- s :: t.notes

let cell_of_row ncols = function
  | Cells cs ->
      let len = List.length cs in
      if len >= ncols then cs else cs @ List.init (ncols - len) (fun _ -> "")
  | Rule -> []

let to_string t =
  let rows = List.rev t.rows in
  let ncols = List.length t.header in
  let all_cell_rows =
    t.header :: List.filter_map (fun r -> match r with Cells _ -> Some (cell_of_row ncols r) | Rule -> None) rows
  in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure all_cell_rows;
  let total_width = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  let buf = Buffer.create 1024 in
  let pad i c =
    let w = widths.(i) in
    let s = if i = 0 then c ^ String.make (w - String.length c) ' ' else String.make (w - String.length c) ' ' ^ c in
    s
  in
  let emit_cells cells =
    let padded = List.mapi pad cells in
    Buffer.add_string buf (String.concat " | " padded);
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  rule ();
  emit_cells (cell_of_row ncols (Cells t.header));
  rule ();
  List.iter
    (fun r -> match r with Cells _ -> emit_cells (cell_of_row ncols r) | Rule -> rule ())
    rows;
  rule ();
  List.iter
    (fun n ->
      Buffer.add_string buf n;
      Buffer.add_char buf '\n')
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (to_string t ^ "\n")

let fmt_f x = Printf.sprintf "%.2f" x

let fmt_signed x = Printf.sprintf "%+.2f" x
