(** Small statistics helpers for aggregating experiment results. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val mean_arr : float array -> float

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val minimum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val percent_vs : float -> float -> float
(** [percent_vs x reference] is the signed percent difference
    [100 * (x - reference) / reference] — the normalization used throughout
    the paper's Table 1 (negative = improvement). *)

val sum : float list -> float
