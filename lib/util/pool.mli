(** A fixed pool of worker domains for data-parallel waves.

    The router's parallel path repeatedly fans a batch of independent jobs
    out over the same small set of domains; spawning a domain per batch
    would cost more than the batch itself, so the pool keeps [domains - 1]
    persistent workers parked on a condition variable and reuses them for
    every {!run}/{!map} call ("wave") until {!shutdown}.

    Scheduling is a chunked shared counter: workers (and the calling
    domain, which participates as worker 0) repeatedly grab the next
    [chunk] indices from an atomic cursor until the wave is exhausted.
    Each submitted index is executed exactly once, by exactly one worker.

    Exceptions raised by jobs are caught per-worker; after the wave
    completes, the recorded exception with the smallest index is re-raised
    in the caller (with its original backtrace).  Once a failure is
    recorded, workers stop claiming new chunks — jobs already claimed
    still finish, so a wave that raises may leave later indices
    unexecuted.

    A pool with [domains = 1] spawns nothing and runs every wave inline in
    the caller; results and raised exceptions are identical to the
    multi-domain case by construction.  Pools are not themselves
    thread-safe: drive a given pool from one domain at a time. *)

type t

val create : ?chunk:int -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains.  [chunk]
    (default 1) is the number of consecutive indices claimed per grab —
    leave it at 1 for coarse jobs like per-net routing.
    @raise Invalid_argument if [domains < 1] or [chunk < 1]. *)

val size : t -> int
(** The [domains] the pool was created with (workers + caller). *)

val run : t -> count:int -> (worker:int -> int -> unit) -> unit
(** [run p ~count f] executes [f ~worker i] for every [i] in
    [0 .. count - 1], distributed over the pool; [worker] is the executing
    worker's index in [0 .. size - 1] (stable across waves, usable as an
    index into per-domain scratch).  Returns when every claimed job has
    finished.  Re-raises the smallest-index job exception, if any.
    @raise Invalid_argument after {!shutdown}. *)

val map : t -> count:int -> (worker:int -> int -> 'a) -> 'a array
(** [map p ~count f] is {!run} collecting results: element [i] of the
    returned array is [f ~worker i].  Same exception semantics as {!run}. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  Idempotent.  Subsequent
    {!run}/{!map} calls raise [Invalid_argument]. *)
