(** Plain-text table rendering for the experiment harnesses.

    Tables are built as a header row plus data rows of strings; columns are
    right-aligned except the first, mirroring the layout of the paper's
    tables. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val add_separator : t -> unit
(** A horizontal rule between row groups (used for the congestion-level
    sections of Table 1). *)

val add_note : t -> string -> unit
(** Free-form caption line printed beneath the table. *)

val to_string : t -> string

val print : t -> unit
(** [to_string] followed by a newline on stdout. *)

val fmt_f : float -> string
(** Two-decimal fixed formatting used for percent columns. *)

val fmt_signed : float -> string
(** Like [fmt_f] but with an explicit sign, matching the paper's +/-
    improvement columns. *)
