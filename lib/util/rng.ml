type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

let of_name name = make (Hashtbl.hash name)

let int t bound = Random.State.int t bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound

let bool t = Random.State.bool t

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(Random.State.int t (Array.length a))

let sample_distinct t k n =
  assert (k <= n);
  (* For small k relative to n, rejection sampling; otherwise shuffle a
     prefix of the identity permutation. *)
  if 4 * k <= n then begin
    let seen = Hashtbl.create (2 * k) in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let x = Random.State.int t n in
        if Hashtbl.mem seen x then draw acc remaining
        else begin
          Hashtbl.add seen x ();
          draw (x :: acc) (remaining - 1)
        end
    in
    draw [] k
  end
  else begin
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative stream index";
  (* Consumes one draw from the parent, so derivation order matters; the
     mix constants keep child 0 from replaying the parent's stream. *)
  let base = Random.State.bits t in
  Random.State.make [| base; i; 0x6c078965; base lxor (i * 0x9e3779b9) |]
