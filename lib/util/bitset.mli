(** Fixed-size packed bit vectors.

    Backs the node/edge enable flags of the routing substrate: a get or set
    is one word load plus mask arithmetic, and copying the whole set is an
    [Array.copy] of [n/16] words instead of [n] bytes.

    Accesses are bounds-checked only by the backing array, so an index in
    [0 .. length-1] is the caller's responsibility. *)

type t

val create : ?value:bool -> int -> t
(** [create n] is a bit set of [n] bits, all initialized to [value]
    (default [true] — the substrate's enable flags start enabled).
    @raise Invalid_argument on a negative size. *)

val length : t -> int

val get : t -> int -> bool

val set : t -> int -> bool -> unit

val copy : t -> t

val count : t -> int
(** Number of set bits. *)
