(** The detailed FPGA router (paper §5).

    Nets are routed one at a time on the routing-resource graph with any of
    the paper's constructions.  After each net: the consumed wires and pins
    are disabled (subsequent nets stay electrically disjoint) and edge
    weights around the used channel segments are increased to reflect
    congestion.  When some nets cannot be routed, a pass fails; the failed
    nets move to the front of the ordering (the paper's move-to-front
    heuristic) and the whole circuit is re-routed, up to [max_passes]
    passes (the paper's feasibility threshold of 20), after which the
    circuit is declared unroutable at that channel width.

    Steiner-candidate scans are pruned to the net's bounding box plus
    [bbox_margin] blocks; if a net fails under pruning it is retried on the
    full graph before being counted as failed.

    {b Batched waves and parallelism.}  Each pass partitions its wave,
    first-fit in wave order, into batches of nets with pairwise-disjoint
    terminal bounding boxes (at most [par_batch] nets per batch).  A
    batch's nets are solved speculatively against the state frozen at the
    batch's start, then committed serially in wave order; a speculative
    tree that lost a wire to an earlier commit of its own batch is
    re-solved on the spot against the live state (counted in
    [par_conflicts]).  [route ~domains:n] fans the speculative solves of
    each batch out over [n] domains holding read-only graph views and
    per-domain distance caches; because those solves are pure functions of
    the frozen state and everything else is serial and order-fixed, the
    routed result is bit-identical for every [domains] value — only the
    wall time and the Dijkstra work counters change.

    {b Negotiated congestion} ([mode = Negotiated]) replaces the rip-up
    scheduling above with PathFinder-style Lagrangian pricing
    ({!Fr_graph.Cost_model}): every iteration, {e all} nets route
    independently against shared, over-subscribable resources — one
    parallel wave over the whole netlist, not disjoint batches — and a
    resource used by more than one net is overused, which is legal
    mid-flight.  Between iterations the overused resources' prices
    escalate (present pressure geometrically, history by a sub-gradient
    step on the overuse) until the cheapest trees are mutually disjoint,
    at which point the trees are committed in canonical net order at base
    weights.  Solves are pure functions of each iteration's frozen priced
    graph and the pricing reads only iteration-start state, so negotiated
    results are also bit-identical across [domains]. *)

type strategy =
  | Tree_alg of Fr_core.Routing_alg.t
      (** route each multi-pin net as one unit (the paper's approach) *)
  | Two_pin_decomposition
      (** break nets into independent source–sink connections — the
          strategy of CGE/SEGA/GBP that the paper credits its channel-width
          win against *)

type mode =
  | Waves  (** rip-up passes over disjoint speculative batches (default) *)
  | Negotiated  (** PathFinder-style negotiated congestion *)

type config = {
  strategy : strategy;
  mode : mode;
  critical_strategy : (Netlist.net -> bool) option;
      (** §2's net classification: nets satisfying the predicate are
          "critical" and routed with [critical_alg] (shortest paths first),
          the rest with [strategy].  [None] (default) routes everything
          with [strategy]. *)
  critical_alg : Fr_core.Routing_alg.t;  (** default IDOM *)
  max_passes : int;  (** default 20 *)
  congestion_increment : float;
      (** weight added (scaled by 1/W) to edges near a consumed wire's
          channel segment; default 3.0 — strong pressure spreads nets
          across channels and measurably lowers achievable widths *)
  bbox_margin : float;  (** candidate/search pruning margin in blocks; default 3. *)
  max_candidates : int;  (** cap on Steiner-candidate scans; default 2500 *)
  targeted_dijkstra : bool;
      (** run target-bounded, resumable Dijkstra searches (default [true]);
          [false] forces every search to settle its whole (restricted)
          graph — the pre-targeting behavior, kept for A/B benchmarking.
          Routed trees are identical either way; only the work differs. *)
  astar : bool;
      (** goal-direct every targeted search with the admissible Manhattan
          future-cost bound ({!Rrg.future_cost}) — one heuristic per net
          over all its terminals, or per sink in two-pin decomposition
          (default [true]).  Because relaxation canonicalizes
          equal-distance parents (see {!Fr_graph.Dijkstra}), routed trees
          are bit-identical with or without it; only the number of settled
          nodes changes. *)
  heap : Fr_graph.Pq.impl;
      (** frontier implementation behind every search (default
          {!Fr_graph.Pq.Bucket}, calibrated to the RRG's 0.5 base-cost
          quantum).  Trees are bit-identical across implementations. *)
  par_batch : int;
      (** cap on nets per speculative batch (default 8); [1] disables
          batching — every net solves against the live state serially *)
  neg_max_iterations : int;
      (** negotiated mode: iteration cap before declaring failure
          (default 64) *)
  neg_stall_limit : int;
      (** negotiated mode: give up after this many consecutive iterations
          without a new best total overuse (default 12) *)
  neg_present_factor : float;
      (** {!Fr_graph.Cost_model.params.present_factor} (default 0.5) *)
  neg_present_growth : float;
      (** {!Fr_graph.Cost_model.params.present_growth} (default 1.3) *)
  neg_history_factor : float;
      (** {!Fr_graph.Cost_model.params.history_factor} (default 0.4) *)
}

val default_config : config

val config_with :
  ?alg:Fr_core.Routing_alg.t ->
  ?max_passes:int ->
  ?mode:mode ->
  ?astar:bool ->
  ?heap:Fr_graph.Pq.impl ->
  unit ->
  config

type routed_net = {
  net : Netlist.net;
  tree : Fr_graph.Tree.t;
  wires_used : float;  (** wirelength in wire segments *)
  max_path : float;  (** max source–sink pathlength (base weights) *)
}

val candidates_for : Rrg.t -> config -> (int -> bool) -> int list
(** Candidate Steiner nodes for one net: enabled wire nodes satisfying the
    predicate (the net's bounding box), thinned by a uniform stride to at
    most [max_candidates].  Exposed so tests can pin the thinning bounds:
    when the scan finds [count > max_candidates] nodes, the kept count is
    at most [max_candidates] and more than [max_candidates / 2]. *)

type stats = {
  passes : int;
      (** waves: rip-up passes run; negotiated: pricing iterations run *)
  routed : routed_net list;
  total_wirelength : float;
  total_max_path : float;
  peak_occupancy : int;  (** max wires consumed in any channel segment *)
  dijkstra_runs : int;
      (** Dijkstra searches started across all passes (shared-cache misses) *)
  settled_nodes : int;
      (** total nodes settled by those searches — the work metric targeted
          mode reduces *)
  mutations : int;
      (** effective graph mutations (journal entries written) across all
          passes *)
  rollbacks : int;
      (** journal rollbacks performed (one per rip-up pass, plus one per
          two-pin connection batch) *)
  journal_depth : int;
      (** peak undo-journal depth during {e this} call (the high-water mark
          is reset at entry) — the per-pass restore cost, to compare
          against the O(V+E) full-graph snapshot scans it replaced *)
  domains : int;  (** domain count this route ran with *)
  par_batches : int;
      (** waves: multi-net speculative batches formed across all passes —
          the parallelism actually available; negotiated: whole-netlist
          parallel waves run (one per iteration when [domains > 1]) *)
  par_conflicts : int;
      (** speculative trees invalidated by a batch-mate's commit and
          re-solved serially *)
  future_cost_evals : int;
      (** heuristic evaluations performed by goal-directed searches
          (0 when [astar = false]) *)
  heap_impl : string;
      (** {!Fr_graph.Pq.impl_name} of the frontier implementation used *)
}

type failure = {
  failed_nets : string list;  (** nets still failing in the last pass *)
  passes_tried : int;
}

val max_path_of_tree :
  weight:(Fr_graph.Gstate.edge -> float) ->
  Fr_graph.Gstate.t ->
  Fr_graph.Tree.t ->
  net_src:int ->
  sinks:int list ->
  float
(** Max source-sink pathlength of a routed tree under the given per-edge
    weight.  The router measures committed trees with the pre-congestion
    base weights; exposed for tests and analysis.
    @raise Invalid_argument if some sink is not spanned by the tree —
    silently skipping it would under-report pathlength. *)

val route :
  ?config:config -> ?domains:int -> Rrg.t -> Netlist.circuit -> (stats, failure) result
(** Routes the whole circuit.  The RRG is left in the final pass's state
    (useful for rendering); a journal checkpoint is taken at entry and each
    rip-up pass rolls back to it in time proportional to the entries the
    previous pass wrote ({!Fr_graph.Gstate.rollback}), not O(V+E).

    [domains] (default 1) is the number of domains speculative batch
    solves run on; the routed trees and all quality stats are identical
    for every value (see the batching note above).  Worker domains are
    spawned once per call and shut down before returning.

    All work counters in {!stats} are per-call: calling [route] twice on
    the same (reusable) graph state reports each call's own work, not the
    state's lifetime totals.
    @raise Invalid_argument when the circuit does not fit the RRG or does
    not validate, or when [domains < 1]. *)

val min_channel_width :
  ?config:config ->
  ?domains:int ->
  arch_of_width:(int -> Arch.t) ->
  circuit:Netlist.circuit ->
  start:int ->
  ?max_width:int ->
  unit ->
  (int * stats) option
(** Smallest channel width at which the circuit routes completely,
    assuming feasibility is monotone in the width: bisects between the last
    failing and first succeeding width, galloping upward from [start]
    until [max_width] (default [start + 15]) when [start] itself fails.
    [None] if even [max_width] fails.

    The search is confined to [[1, max_width]]: the first probe is
    [min start max_width] (so a [start] above the cap can never report a
    width past it), the gallop's clamped probe sequence always attempts
    [max_width] itself before giving up, and a [max_width < 1] bracket is
    empty, hence [None].
    @raise Invalid_argument when [start < 1]. *)

(** {2 Incremental (ECO) re-routing}

    A long-lived routing session over one RRG: the journal is kept live
    (never truncated) above the session's base checkpoint, so a netlist
    delta only needs a {e targeted rollback} — to the first wave batch the
    edit invalidates (waves mode) or to the base state (negotiated mode) —
    followed by a re-route of the affected suffix against the live state
    on the session's persistent domain pool.

    The contract is differential exactness, not best effort: after
    {!Eco.apply}, the maintained routing (trees, wirelength, pathlength,
    pass count, failure verdicts) is bit-identical to a from-scratch
    {!route} of the edited netlist with the same config — waves mode
    because the kept schedule prefix is a pure function of the batch
    sequence and later passes run the scratch loop verbatim, negotiated
    mode because reused iteration-1 trees are pure functions of the base
    state.  What the ECO path saves is the work for the kept prefix /
    memoized solves, reported per request in {!Eco.eco_stats}. *)

module Eco : sig
  type t
  (** A routing session: the RRG, its live journal, persistent distance
      caches and worker pool, the maintained routing, and the replay
      ledger incremental requests roll back into. *)

  type delta =
    | Add_net of Netlist.net  (** append a net (name must be fresh) *)
    | Remove_net of string  (** drop a net by name *)
    | Retime_net of string * Netlist.pin_ref * Netlist.pin_ref list
        (** replace a net's terminals: name, new source, new sinks *)

  type eco_stats = {
    stats : stats;  (** per-request router stats (counters are deltas) *)
    nets_total : int;  (** nets in the edited netlist *)
    nets_ripped : int;  (** nets this request ripped up and re-solved *)
    nets_reused : int;  (** nets whose routing survived untouched *)
  }

  val create :
    ?config:config ->
    ?domains:int ->
    Rrg.t ->
    Netlist.circuit ->
    (t * eco_stats, failure) result
  (** Route the circuit from scratch and open a session maintaining the
      result.  The session owns its worker pool until {!close}; on
      [Error] no session is created, the pool is torn down and the graph
      is restored to its entry state.
      @raise Invalid_argument as {!route}. *)

  val apply : t -> delta list -> (eco_stats, failure) result
  (** Apply the deltas (in order) to the maintained netlist and re-route
      incrementally.  On [Ok] the session maintains the edited netlist's
      routing; on [Error] (the edited netlist does not route at this
      width) the pre-request netlist and routing are restored, so the
      session remains usable.
      @raise Invalid_argument on a malformed delta (unknown or duplicate
      net name, invalid pins, a pin already used by another net) or on a
      closed session; the session is unchanged. *)

  val circuit : t -> Netlist.circuit
  (** The maintained netlist (reflects all applied deltas). *)

  val routed : t -> routed_net list
  (** The maintained routing, in the same order {!route} reports. *)

  val last_stats : t -> stats option
  (** Router stats of the most recent successful request. *)

  val close : t -> unit
  (** Shut the session's worker pool down (idempotent).  The graph keeps
      the maintained routing's state. *)
end
