(** The detailed FPGA router (paper §5).

    Nets are routed one at a time on the routing-resource graph with any of
    the paper's constructions.  After each net: the consumed wires and pins
    are disabled (subsequent nets stay electrically disjoint) and edge
    weights around the used channel segments are increased to reflect
    congestion.  When some nets cannot be routed, a pass fails; the failed
    nets move to the front of the ordering (the paper's move-to-front
    heuristic) and the whole circuit is re-routed, up to [max_passes]
    passes (the paper's feasibility threshold of 20), after which the
    circuit is declared unroutable at that channel width.

    Steiner-candidate scans are pruned to the net's bounding box plus
    [bbox_margin] blocks; if a net fails under pruning it is retried on the
    full graph before being counted as failed.

    {b Batched waves and parallelism.}  Each pass partitions its wave,
    first-fit in wave order, into batches of nets with pairwise-disjoint
    terminal bounding boxes (at most [par_batch] nets per batch).  A
    batch's nets are solved speculatively against the state frozen at the
    batch's start, then committed serially in wave order; a speculative
    tree that lost a wire to an earlier commit of its own batch is
    re-solved on the spot against the live state (counted in
    [par_conflicts]).  [route ~domains:n] fans the speculative solves of
    each batch out over [n] domains holding read-only graph views and
    per-domain distance caches; because those solves are pure functions of
    the frozen state and everything else is serial and order-fixed, the
    routed result is bit-identical for every [domains] value — only the
    wall time and the Dijkstra work counters change. *)

type strategy =
  | Tree_alg of Fr_core.Routing_alg.t
      (** route each multi-pin net as one unit (the paper's approach) *)
  | Two_pin_decomposition
      (** break nets into independent source–sink connections — the
          strategy of CGE/SEGA/GBP that the paper credits its channel-width
          win against *)

type config = {
  strategy : strategy;
  critical_strategy : (Netlist.net -> bool) option;
      (** §2's net classification: nets satisfying the predicate are
          "critical" and routed with [critical_alg] (shortest paths first),
          the rest with [strategy].  [None] (default) routes everything
          with [strategy]. *)
  critical_alg : Fr_core.Routing_alg.t;  (** default IDOM *)
  max_passes : int;  (** default 20 *)
  congestion_increment : float;
      (** weight added (scaled by 1/W) to edges near a consumed wire's
          channel segment; default 3.0 — strong pressure spreads nets
          across channels and measurably lowers achievable widths *)
  bbox_margin : float;  (** candidate/search pruning margin in blocks; default 3. *)
  max_candidates : int;  (** cap on Steiner-candidate scans; default 2500 *)
  targeted_dijkstra : bool;
      (** run target-bounded, resumable Dijkstra searches (default [true]);
          [false] forces every search to settle its whole (restricted)
          graph — the pre-targeting behavior, kept for A/B benchmarking.
          Routed trees are identical either way; only the work differs. *)
  par_batch : int;
      (** cap on nets per speculative batch (default 8); [1] disables
          batching — every net solves against the live state serially *)
}

val default_config : config

val config_with : ?alg:Fr_core.Routing_alg.t -> ?max_passes:int -> unit -> config

type routed_net = {
  net : Netlist.net;
  tree : Fr_graph.Tree.t;
  wires_used : float;  (** wirelength in wire segments *)
  max_path : float;  (** max source–sink pathlength (base weights) *)
}

type stats = {
  passes : int;
  routed : routed_net list;
  total_wirelength : float;
  total_max_path : float;
  peak_occupancy : int;  (** max wires consumed in any channel segment *)
  dijkstra_runs : int;
      (** Dijkstra searches started across all passes (shared-cache misses) *)
  settled_nodes : int;
      (** total nodes settled by those searches — the work metric targeted
          mode reduces *)
  mutations : int;
      (** effective graph mutations (journal entries written) across all
          passes *)
  rollbacks : int;
      (** journal rollbacks performed (one per rip-up pass, plus one per
          two-pin connection batch) *)
  journal_depth : int;
      (** peak undo-journal depth — the per-pass restore cost, to compare
          against the O(V+E) full-graph snapshot scans it replaced *)
  domains : int;  (** domain count this route ran with *)
  par_batches : int;
      (** multi-net speculative batches formed across all passes — the
          parallelism actually available in the waves *)
  par_conflicts : int;
      (** speculative trees invalidated by a batch-mate's commit and
          re-solved serially *)
}

type failure = {
  failed_nets : string list;  (** nets still failing in the last pass *)
  passes_tried : int;
}

val max_path_of_tree :
  weight:(Fr_graph.Gstate.edge -> float) ->
  Fr_graph.Gstate.t ->
  Fr_graph.Tree.t ->
  net_src:int ->
  sinks:int list ->
  float
(** Max source-sink pathlength of a routed tree under the given per-edge
    weight.  The router measures committed trees with the pre-congestion
    base weights; exposed for tests and analysis.
    @raise Invalid_argument if some sink is not spanned by the tree —
    silently skipping it would under-report pathlength. *)

val route :
  ?config:config -> ?domains:int -> Rrg.t -> Netlist.circuit -> (stats, failure) result
(** Routes the whole circuit.  The RRG is left in the final pass's state
    (useful for rendering); a journal checkpoint is taken at entry and each
    rip-up pass rolls back to it in time proportional to the entries the
    previous pass wrote ({!Fr_graph.Gstate.rollback}), not O(V+E).

    [domains] (default 1) is the number of domains speculative batch
    solves run on; the routed trees and all quality stats are identical
    for every value (see the batching note above).  Worker domains are
    spawned once per call and shut down before returning.
    @raise Invalid_argument when the circuit does not fit the RRG or does
    not validate, or when [domains < 1]. *)

val min_channel_width :
  ?config:config ->
  ?domains:int ->
  arch_of_width:(int -> Arch.t) ->
  circuit:Netlist.circuit ->
  start:int ->
  ?max_width:int ->
  unit ->
  (int * stats) option
(** Smallest channel width at which the circuit routes completely,
    assuming feasibility is monotone in the width: bisects between the last
    failing and first succeeding width, galloping upward from [start]
    until [max_width] (default [start + 15]) when [start] itself fails.
    [None] if even [max_width] fails. *)
