module G = Fr_graph

let digit n =
  if n <= 9 then Char.chr (Char.code '0' + n)
  else if n <= 15 then Char.chr (Char.code 'a' + n - 10)
  else '*'

(* The device drawn as a (2R+1) x (2C+1) cell matrix: even/even cells are
   switch blocks, odd/odd are logic blocks, the rest are channel segments. *)
let draw cell_h cell_v rrg =
  let a = rrg.Rrg.arch in
  let r = a.Arch.rows and c = a.Arch.cols in
  let buf = Buffer.create (4 * r * c) in
  for gy = (2 * r) downto 0 do
    for gx = 0 to 2 * c do
      let s =
        if gy mod 2 = 0 && gx mod 2 = 0 then "+"
        else if gy mod 2 = 1 && gx mod 2 = 1 then "[]"
        else if gy mod 2 = 0 then
          (* horizontal channel y = gy/2, segment x = (gx-1)/2 *)
          Printf.sprintf "-%c-" (cell_h rrg ~y:(gy / 2) ~x:((gx - 1) / 2))
        else
          (* vertical channel x = gx/2, segment y = (gy-1)/2 *)
          Printf.sprintf "%c" (cell_v rrg ~x:(gx / 2) ~y:((gy - 1) / 2))
      in
      (* pad: switch "+", block "[]", h-seg "-d-", v-seg "d" — align by
         column type: even gx columns are width 1, odd are width 3. *)
      let padded =
        if gx mod 2 = 0 then Printf.sprintf "%-1s" s else Printf.sprintf "%-3s" (if s = "[]" then "[]" else s)
      in
      Buffer.add_string buf padded
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let occupancy_map rrg =
  let h rrg ~y ~x = digit (Rrg.segment_occupancy rrg (Rrg.H (y, x))) in
  let v rrg ~x ~y = digit (Rrg.segment_occupancy rrg (Rrg.V (x, y))) in
  draw h v rrg

let net_map rrg tree =
  let used = Hashtbl.create 64 in
  List.iter
    (fun n ->
      match Rrg.segment_of_node rrg n with
      | Some seg -> Hashtbl.replace used seg ()
      | None -> ())
    (G.Tree.nodes rrg.Rrg.graph tree);
  let mark seg = if Hashtbl.mem used seg then '#' else '.' in
  let h rrg' ~y ~x =
    ignore rrg';
    mark (Rrg.H (y, x))
  in
  let v rrg' ~x ~y =
    ignore rrg';
    mark (Rrg.V (x, y))
  in
  draw h v rrg

let summary rrg stats =
  let a = rrg.Rrg.arch in
  let par =
    if stats.Router.domains = 1 then ""
    else
      Printf.sprintf "; %d domains (%d batches, %d conflicts)" stats.Router.domains
        stats.Router.par_batches stats.Router.par_conflicts
  in
  let search =
    Printf.sprintf "; %d searches settled %d nodes (%s heap%s)" stats.Router.dijkstra_runs
      stats.Router.settled_nodes stats.Router.heap_impl
      (if stats.Router.future_cost_evals > 0 then
         Printf.sprintf ", A* %d h-evals" stats.Router.future_cost_evals
       else "")
  in
  Printf.sprintf
    "%s: %d nets routed in %d pass(es); wirelength %.0f wires; max pathlength sum %.1f; peak \
     channel occupancy %d/%d%s%s"
    (Arch.describe a) (List.length stats.Router.routed) stats.Router.passes
    stats.Router.total_wirelength stats.Router.total_max_path stats.Router.peak_occupancy
    a.Arch.channel_width par search
