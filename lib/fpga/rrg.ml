module G = Fr_graph

type side =
  | North
  | East
  | South
  | West

let side_index = function North -> 0 | East -> 1 | South -> 2 | West -> 3

let side_of_index = function
  | 0 -> North
  | 1 -> East
  | 2 -> South
  | 3 -> West
  | _ -> invalid_arg "Rrg.side_of_index: index outside 0..3"

let all_sides = [ North; East; South; West ]

type seg =
  | H of int * int
  | V of int * int

(* Typed total order on segments (H before V, then coordinates), so hot
   paths sorting touched segments never fall back to polymorphic compare. *)
let compare_seg a b =
  match (a, b) with
  | H (a1, a2), H (b1, b2) | V (a1, a2), V (b1, b2) ->
      let c = Int.compare a1 b1 in
      if c <> 0 then c else Int.compare a2 b2
  | H _, V _ -> -1
  | V _, H _ -> 1

type kind =
  | Wire of seg * int
  | Pin of int * int * side * int

type t = {
  arch : Arch.t;
  graph : G.Gstate.t;
  (* Minimum enabled base cost per unit of Manhattan channel distance,
     computed once at build over every edge: the admissible scale for
     {!future_cost}.  (1.0 for this builder: every edge's base weight
     equals its endpoints' L1 separation, jogs only add.) *)
  min_unit_cost : float;
}

(* Node layout: horizontal wires, then vertical wires, then pins. *)

let dims a = (a.Arch.rows, a.Arch.cols, a.Arch.channel_width, a.Arch.pin_slots)

let n_hwires a =
  let r, c, w, _ = dims a in
  (r + 1) * c * w

let n_vwires a =
  let r, c, w, _ = dims a in
  (c + 1) * r * w

let n_pins a =
  let r, c, _, s = dims a in
  r * c * 4 * s

let hwire_id a ~y ~x ~track =
  let r, c, w, _ = dims a in
  if y < 0 || y > r || x < 0 || x >= c || track < 0 || track >= w then
    invalid_arg "Rrg.hwire_id: out of range";
  (((y * c) + x) * w) + track

let vwire_id a ~x ~y ~track =
  let r, c, w, _ = dims a in
  if x < 0 || x > c || y < 0 || y >= r || track < 0 || track >= w then
    invalid_arg "Rrg.vwire_id: out of range";
  n_hwires a + (((x * r) + y) * w) + track

let pin_id a ~row ~col ~side ~slot =
  let r, c, _, s = dims a in
  if row < 0 || row >= r || col < 0 || col >= c || slot < 0 || slot >= s then
    invalid_arg "Rrg.pin_id: out of range";
  n_hwires a + n_vwires a + ((((row * c) + col) * 4 + side_index side) * s) + slot

let hwire t ~y ~x ~track = hwire_id t.arch ~y ~x ~track
let vwire t ~x ~y ~track = vwire_id t.arch ~x ~y ~track
let pin t ~row ~col ~side ~slot = pin_id t.arch ~row ~col ~side ~slot

let kind_of a v =
  let r, c, w, s = dims a in
  let nh = n_hwires a and nv = n_vwires a in
  if v < 0 || v >= nh + nv + n_pins a then invalid_arg "Rrg.kind_of: node out of range";
  if v < nh then begin
    let track = v mod w and seg = v / w in
    let x = seg mod c and y = seg / c in
    Wire (H (y, x), track)
  end
  else if v < nh + nv then begin
    let v' = v - nh in
    let track = v' mod w and seg = v' / w in
    let y = seg mod r and x = seg / r in
    Wire (V (x, y), track)
  end
  else begin
    let v' = v - nh - nv in
    let slot = v' mod s in
    let rest = v' / s in
    let side = side_of_index (rest mod 4) in
    let blk = rest / 4 in
    Pin (blk / c, blk mod c, side, slot)
  end

let kind t v = kind_of t.arch v

let num_wires t = n_hwires t.arch + n_vwires t.arch

let is_wire t v = v < num_wires t

(* Channel-coordinate geometry: a horizontal wire sits at the middle of
   its segment on channel line y, a vertical wire at the middle of its
   segment on channel line x, a pin at its block's center.  Adjacent
   switch edges span exactly L1 distance 1.0 (wire-wire) or 0.5
   (pin-wire) under this embedding — the fact {!future_cost}'s
   admissibility rests on. *)
let pos_of a v =
  match kind_of a v with
  | Wire (H (y, x), _) -> (float_of_int x +. 0.5, float_of_int y)
  | Wire (V (x, y), _) -> (float_of_int x, float_of_int y +. 0.5)
  | Pin (row, col, _, _) -> (float_of_int col +. 0.5, float_of_int row +. 0.5)

let pos t v = pos_of t.arch v

let wires_of_segment t seg =
  let w = t.arch.Arch.channel_width in
  match seg with
  | H (y, x) -> List.init w (fun track -> hwire t ~y ~x ~track)
  | V (x, y) -> List.init w (fun track -> vwire t ~x ~y ~track)

let segment_of_node t v = match kind t v with Wire (seg, _) -> Some seg | Pin _ -> None

let segments t =
  let r, c, _, _ = dims t.arch in
  let acc = ref [] in
  for y = 0 to r do
    for x = 0 to c - 1 do
      acc := H (y, x) :: !acc
    done
  done;
  for x = 0 to c do
    for y = 0 to r - 1 do
      acc := V (x, y) :: !acc
    done
  done;
  List.rev !acc

let segment_occupancy t seg =
  List.fold_left
    (fun n v -> if G.Gstate.node_enabled t.graph v then n else n + 1)
    0 (wires_of_segment t seg)

let wirelength t tree =
  let used = G.Tree.nodes t.graph tree in
  float_of_int (List.length (List.filter (is_wire t) used))

(* Switch-block construction: at intersection (x, y) the four incident
   channel segments are joined pairwise; each wire is offered
   [per_side = fs/3 (rounded up)] target tracks on each other side, with a
   rotating offset so fs=3 is the disjoint pattern and fs=6 doubles it. *)
let build ?(jog_penalty = 0.) arch =
  if jog_penalty < 0. then invalid_arg "Rrg.build: negative jog penalty";
  let r, c, w, s = dims arch in
  let n = n_hwires arch + n_vwires arch + n_pins arch in
  let per_side_cap = max 1 ((arch.Arch.fs + 2) / 3) in
  (* Upper bound on the edge count: every intersection joins at most 4
     sides (6 pairs) with [w * per_side] edges each, and every pin fans out
     to [fc] tracks. *)
  let edge_capacity =
    ((r + 1) * (c + 1) * 6 * w * per_side_cap) + (r * c * 4 * s * arch.Arch.fc)
  in
  let g = G.Wgraph.create ~edge_capacity n in
  (* [`H] / [`V] tag the side orientation so turning connections can carry
     the jog penalty. *)
  let wire_wire ou u ov v =
    let extra = if ou <> ov then jog_penalty else 0. in
    ignore (G.Wgraph.add_edge g u v (1.0 +. extra))
  in
  let pin_wire u v = ignore (G.Wgraph.add_edge g u v 0.5) in
  let per_side = max 1 ((arch.Arch.fs + 2) / 3) in
  for x = 0 to c do
    for y = 0 to r do
      (* incident segment accessors, None when at the device boundary *)
      let west =
        if x >= 1 then Some (`H, fun track -> hwire_id arch ~y ~x:(x - 1) ~track) else None
      in
      let east = if x <= c - 1 then Some (`H, fun track -> hwire_id arch ~y ~x ~track) else None in
      let south =
        if y >= 1 then Some (`V, fun track -> vwire_id arch ~x ~y:(y - 1) ~track) else None
      in
      let north = if y <= r - 1 then Some (`V, fun track -> vwire_id arch ~x ~y ~track) else None in
      let sides = List.filter_map (fun o -> o) [ west; east; south; north ] in
      let rec join = function
        | [] -> ()
        | (oa, a) :: rest ->
            List.iter
              (fun (ob, b) ->
                for track = 0 to w - 1 do
                  for o = 0 to per_side - 1 do
                    let target = (track + o) mod w in
                    wire_wire oa (a track) ob (b target)
                  done
                done)
              rest;
            join rest
      in
      join sides
    done
  done;
  (* Connection blocks: each pin reaches fc evenly spaced tracks of its
     adjacent channel segment, with a position-dependent stagger. *)
  let fc = arch.Arch.fc in
  for row = 0 to r - 1 do
    for col = 0 to c - 1 do
      List.iter
        (fun side ->
          let seg_wire =
            match side with
            | North -> fun track -> hwire_id arch ~y:(row + 1) ~x:col ~track
            | South -> fun track -> hwire_id arch ~y:row ~x:col ~track
            | West -> fun track -> vwire_id arch ~x:col ~y:row ~track
            | East -> fun track -> vwire_id arch ~x:(col + 1) ~y:row ~track
          in
          for slot = 0 to s - 1 do
            let p = pin_id arch ~row ~col ~side ~slot in
            let stagger = (row + col + side_index side + slot) mod w in
            for i = 0 to fc - 1 do
              let track = ((i * w / fc) + stagger) mod w in
              pin_wire p (seg_wire track)
            done
          done)
        all_sides
    done
  done;
  let graph = G.Gstate.of_builder g in
  (* The admissible per-unit scale: min over edges of base weight / L1
     endpoint separation.  Every edge above has weight >= its L1 length
     (wire-wire: 1 (+ jog) over distance 1; pin-wire: 0.5 over 0.5), so
     this is 1.0 — but computing it keeps the bound correct if the
     builder's costs ever change. *)
  let min_unit_cost = ref infinity in
  for e = 0 to G.Gstate.num_edges graph - 1 do
    let u, v = G.Gstate.endpoints graph e in
    let ux, uy = pos_of arch u and vx, vy = pos_of arch v in
    let l1 = abs_float (ux -. vx) +. abs_float (uy -. vy) in
    if l1 > 1e-9 then begin
      let ratio = G.Gstate.weight graph e /. l1 in
      if ratio < !min_unit_cost then min_unit_cost := ratio
    end
  done;
  let min_unit_cost = if !min_unit_cost < infinity then !min_unit_cost else 0. in
  { arch; graph; min_unit_cost }

let min_unit_cost t = t.min_unit_cost

(* Admissible, consistent future-cost bound toward [targets]: Manhattan
   channel distance to the nearest target, scaled by the minimum base
   cost per unit distance.

   Admissible: any path from v to a target t traverses edges whose base
   weights sum to at least [min_unit_cost * L1(v, t)] (each edge costs at
   least min_unit_cost times its own L1 span, and L1 is a metric), and
   run-time prices only inflate base weights — Waves congestion adds
   positive increments, {!Fr_graph.Cost_model} multiplies by factors
   >= 1, and disabling resources removes paths — so the bound only gets
   slacker.  A jog_penalty likewise only adds to turning edges, so the
   bound needs no term for it to stay admissible.
   Consistent: |h(u) - h(v)| <= min_unit_cost * L1(u, v) <= w(u, v) by
   the triangle inequality, for every enabled edge.
   Both properties hold at every node for any target set, so the bound is
   valid for queries against any subset of [targets] (min over a superset
   is still a lower bound) — the router builds one heuristic per net over
   all its terminals and uses it for every query of that net's solve. *)
let future_cost t ~targets =
  let scale = t.min_unit_cost in
  let k = List.length targets in
  let xs = Array.make k 0. and ys = Array.make k 0. in
  List.iteri
    (fun i v ->
      let x, y = pos_of t.arch v in
      xs.(i) <- x;
      ys.(i) <- y)
    targets;
  G.Dijkstra.heuristic (fun v ->
      if k = 0 then 0.
      else begin
        let x, y = pos_of t.arch v in
        let best = ref infinity in
        for i = 0 to k - 1 do
          let d = abs_float (x -. xs.(i)) +. abs_float (y -. ys.(i)) in
          if d < !best then best := d
        done;
        scale *. !best
      end)

let read_only_view t = { t with graph = G.Gstate.read_only_view t.graph }
