(** ASCII rendering of a routed FPGA (the Fig 16 analogue).

    Logic blocks render as [[]] cells; each channel segment shows its track
    occupancy as a hex digit (0–9, then a–f, '*' beyond 15), so channel
    pressure and hotspots are visible at a glance. *)

val occupancy_map : Rrg.t -> string
(** Device map with per-segment occupancy digits, after routing. *)

val net_map : Rrg.t -> Fr_graph.Tree.t -> string
(** Map highlighting one routed net: '#' on channel segments the net's
    tree passes through, '.' elsewhere. *)

val summary : Rrg.t -> Router.stats -> string
(** One-paragraph routing summary: passes, wirelength, peak occupancy. *)
