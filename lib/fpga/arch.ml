type series =
  | Series_3000
  | Series_4000

type t = {
  name : string;
  series : series;
  rows : int;
  cols : int;
  channel_width : int;
  fs : int;
  fc : int;
  pin_slots : int;
}

let make ?(name = "custom") ?(pin_slots = 2) ~series ~rows ~cols ~channel_width ~fs ~fc () =
  if rows < 1 || cols < 1 then invalid_arg "Arch.make: non-positive array size";
  if channel_width < 1 then invalid_arg "Arch.make: channel_width < 1";
  if fs < 1 then invalid_arg "Arch.make: fs < 1";
  if fc < 1 || fc > channel_width then invalid_arg "Arch.make: fc outside 1..W";
  if pin_slots < 1 then invalid_arg "Arch.make: pin_slots < 1";
  { name; series; rows; cols; channel_width; fs; fc; pin_slots }

let fc_3000 w = int_of_float (ceil (0.6 *. float_of_int w))

let xc3000 ~rows ~cols ~channel_width =
  make ~name:"xc3000" ~series:Series_3000 ~rows ~cols ~channel_width ~fs:6
    ~fc:(fc_3000 channel_width) ()

let xc4000 ~rows ~cols ~channel_width =
  make ~name:"xc4000" ~series:Series_4000 ~rows ~cols ~channel_width ~fs:3 ~fc:channel_width ()

let with_channel_width t w =
  let fc = match t.series with Series_3000 -> fc_3000 w | Series_4000 -> w in
  make ~name:t.name ~pin_slots:t.pin_slots ~series:t.series ~rows:t.rows ~cols:t.cols
    ~channel_width:w ~fs:t.fs ~fc ()

let describe t =
  Printf.sprintf "%s %dx%d W=%d Fs=%d Fc=%d" t.name t.rows t.cols t.channel_width t.fs t.fc
