type pin_ref = {
  row : int;
  col : int;
  side : Rrg.side;
  slot : int;
}

type net = {
  net_name : string;
  source : pin_ref;
  sinks : pin_ref list;
}

type circuit = {
  circuit_name : string;
  rows : int;
  cols : int;
  nets : net list;
}

(* Typed total order on pin references (row, col, side, slot), so pin
   dedup never falls back to polymorphic compare. *)
let compare_pin a b =
  let c = Int.compare a.row b.row in
  if c <> 0 then c
  else
    let c = Int.compare a.col b.col in
    if c <> 0 then c
    else
      let c = Int.compare (Rrg.side_index a.side) (Rrg.side_index b.side) in
      if c <> 0 then c else Int.compare a.slot b.slot

let equal_pin a b = compare_pin a b = 0

(* Order-sensitive: the first pin is the source and the sink order feeds
   the construction, so a pin permutation is a different net for routing
   purposes. *)
let same_net a b =
  String.equal a.net_name b.net_name
  && equal_pin a.source b.source
  && Int.equal (List.length a.sinks) (List.length b.sinks)
  && List.for_all2 equal_pin a.sinks b.sinks

let make_net ~name ~source ~sinks =
  if sinks = [] then invalid_arg "Netlist.make_net: no sinks";
  let all = source :: sinks in
  let n_all = List.length all in
  let n_distinct = List.length (List.sort_uniq compare_pin all) in
  if n_distinct <> n_all then invalid_arg "Netlist.make_net: duplicate pins";
  { net_name = name; source; sinks }

let net_pins n = n.source :: n.sinks

let pin_count n = 1 + List.length n.sinks

let validate c =
  let pin_ok p = p.row >= 0 && p.row < c.rows && p.col >= 0 && p.col < c.cols && p.slot >= 0 in
  let seen = Hashtbl.create 1024 in
  let rec check_nets = function
    | [] -> Ok ()
    | n :: rest ->
        let rec check_pins = function
          | [] -> check_nets rest
          | p :: ps ->
              if not (pin_ok p) then
                Error (Printf.sprintf "net %s: pin out of array bounds" n.net_name)
              else if Hashtbl.mem seen p then
                Error (Printf.sprintf "net %s: pin shared with another net" n.net_name)
              else begin
                Hashtbl.add seen p ();
                check_pins ps
              end
        in
        check_pins (net_pins n)
  in
  check_nets c.nets

let pin_histogram c =
  List.fold_left
    (fun (small, med, big) n ->
      let k = pin_count n in
      if k <= 3 then (small + 1, med, big)
      else if k <= 10 then (small, med + 1, big)
      else (small, med, big + 1))
    (0, 0, 0) c.nets

let rrg_pin rrg p = Rrg.pin rrg ~row:p.row ~col:p.col ~side:p.side ~slot:p.slot

let rrg_net rrg n =
  Fr_core.Net.make ~source:(rrg_pin rrg n.source) ~sinks:(List.map (rrg_pin rrg) n.sinks)

let bounding_box n =
  List.fold_left
    (fun (x0, y0, x1, y1) p -> (min x0 p.col, min y0 p.row, max x1 p.col, max y1 p.row))
    (max_int, max_int, min_int, min_int)
    (net_pins n)

let side_letter = function Rrg.North -> "N" | Rrg.East -> "E" | Rrg.South -> "S" | Rrg.West -> "W"

let side_of_letter = function
  | "N" -> Some Rrg.North
  | "E" -> Some Rrg.East
  | "S" -> Some Rrg.South
  | "W" -> Some Rrg.West
  | _ -> None

let pin_to_string p = Printf.sprintf "%d,%d,%s,%d" p.row p.col (side_letter p.side) p.slot

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "circuit %s %d %d\n" c.circuit_name c.rows c.cols);
  List.iter
    (fun n ->
      Buffer.add_string buf (Printf.sprintf "net %s" n.net_name);
      List.iter
        (fun p ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (pin_to_string p))
        (net_pins n);
      Buffer.add_char buf '\n')
    c.nets;
  Buffer.contents buf

let pin_of_string s =
  match String.split_on_char ',' s with
  | [ r; c; side; slot ] -> (
      match (int_of_string_opt r, int_of_string_opt c, side_of_letter side, int_of_string_opt slot)
      with
      | Some row, Some col, Some side, Some slot -> Some { row; col; side; slot }
      | _ -> None)
  | _ -> None

let net_to_string n = String.concat " " ("net" :: n.net_name :: List.map pin_to_string (net_pins n))

let parse_words l = String.split_on_char ' ' l |> List.filter (fun w -> w <> "")

let net_of_string line =
  match parse_words line with
  | "net" :: net_name :: (_ :: _ :: _ as pins) -> (
      let parsed = List.map pin_of_string pins in
      if List.exists (fun p -> p = None) parsed then
        Error (Printf.sprintf "net %s: malformed pin" net_name)
      else
        match List.filter_map (fun p -> p) parsed with
        | source :: sinks -> (
            match make_net ~name:net_name ~source ~sinks with
            | n -> Ok n
            | exception Invalid_argument msg -> Error msg)
        | [] -> Error "impossible: empty pin list")
  | _ -> Error (Printf.sprintf "malformed net line: %s" line)

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty netlist"
  | header :: rest -> (
      match parse_words header with
      | [ "circuit"; name; rows; cols ] -> (
          match (int_of_string_opt rows, int_of_string_opt cols) with
          | Some rows, Some cols ->
              let rec parse_nets acc = function
                | [] -> Ok { circuit_name = name; rows; cols; nets = List.rev acc }
                | line :: more -> (
                    match net_of_string line with
                    | Ok n -> parse_nets (n :: acc) more
                    | Error e -> Error e)
              in
              parse_nets [] rest
          | _ -> Error "malformed circuit header"
        )
      | _ -> Error "missing circuit header")
