module Rng = Fr_util.Rng

type published = {
  cge : int option;
  sega : int option;
  gbp : int option;
  ours_ikmb : int option;
  ours_pfa : int option;
  ours_idom : int option;
  table5_width : int option;
  table5_pfa_wire : float option;
  table5_idom_wire : float option;
  table5_pfa_path : float option;
  table5_idom_path : float option;
}

type spec = {
  circuit : string;
  series : Arch.series;
  rows : int;
  cols : int;
  nets_small : int;
  nets_medium : int;
  nets_large : int;
  published : published;
}

let total_nets s = s.nets_small + s.nets_medium + s.nets_large

let no_data =
  {
    cge = None;
    sega = None;
    gbp = None;
    ours_ikmb = None;
    ours_pfa = None;
    ours_idom = None;
    table5_width = None;
    table5_pfa_wire = None;
    table5_idom_wire = None;
    table5_pfa_path = None;
    table5_idom_path = None;
  }

let spec3000 circuit rows cols nets_small nets_medium nets_large ~cge ~ours =
  {
    circuit;
    series = Arch.Series_3000;
    rows;
    cols;
    nets_small;
    nets_medium;
    nets_large;
    published = { no_data with cge = Some cge; ours_ikmb = Some ours };
  }

let spec4000 circuit rows cols nets_small nets_medium nets_large ~sega ~gbp ~ikmb ~pfa ~idom ~w5
    ~pw ~iw ~pp ~ip =
  {
    circuit;
    series = Arch.Series_4000;
    rows;
    cols;
    nets_small;
    nets_medium;
    nets_large;
    published =
      {
        cge = None;
        sega = Some sega;
        gbp = Some gbp;
        ours_ikmb = Some ikmb;
        ours_pfa = Some pfa;
        ours_idom = Some idom;
        table5_width = Some w5;
        table5_pfa_wire = Some pw;
        table5_idom_wire = Some iw;
        table5_pfa_path = Some pp;
        table5_idom_path = Some ip;
      };
  }

(* Table 2 (3000-series, Fs=6, Fc=ceil(0.6W)). *)
let specs_3000 =
  [
    spec3000 "busc" 12 13 115 28 8 ~cge:10 ~ours:7;
    spec3000 "dma" 16 18 139 52 22 ~cge:10 ~ours:9;
    spec3000 "bnre" 21 22 255 70 27 ~cge:12 ~ours:9;
    spec3000 "dfsm" 22 23 361 26 33 ~cge:10 ~ours:9;
    spec3000 "z03" 26 27 398 176 34 ~cge:13 ~ours:11;
  ]

(* Tables 3-5 (4000-series, Fs=3, Fc=W). *)
let specs_4000 =
  [
    spec4000 "alu4" 19 17 165 69 21 ~sega:15 ~gbp:14 ~ikmb:11 ~pfa:14 ~idom:13 ~w5:14 ~pw:20.9
      ~iw:15.8 ~pp:(-15.2) ~ip:(-16.9);
    spec4000 "apex7" 12 10 83 30 2 ~sega:13 ~gbp:11 ~ikmb:10 ~pfa:11 ~idom:11 ~w5:11 ~pw:15.3
      ~iw:9.2 ~pp:(-4.2) ~ip:(-6.8);
    spec4000 "term1" 10 9 65 21 2 ~sega:10 ~gbp:10 ~ikmb:8 ~pfa:9 ~idom:9 ~w5:9 ~pw:11.4 ~iw:12.0
      ~pp:(-6.2) ~ip:(-2.0);
    spec4000 "example2" 14 12 171 25 9 ~sega:17 ~gbp:13 ~ikmb:11 ~pfa:13 ~idom:13 ~w5:13 ~pw:13.1
      ~iw:8.1 ~pp:(-4.6) ~ip:(-5.6);
    spec4000 "too_large" 14 14 128 46 12 ~sega:12 ~gbp:12 ~ikmb:10 ~pfa:12 ~idom:12 ~w5:12
      ~pw:17.9 ~iw:15.2 ~pp:(-9.7) ~ip:(-9.4);
    spec4000 "k2" 22 20 241 146 17 ~sega:17 ~gbp:17 ~ikmb:15 ~pfa:17 ~idom:17 ~w5:17 ~pw:24.5
      ~iw:17.6 ~pp:(-7.1) ~ip:(-7.2);
    spec4000 "vda" 17 16 132 80 13 ~sega:13 ~gbp:13 ~ikmb:12 ~pfa:14 ~idom:13 ~w5:14 ~pw:18.7
      ~iw:11.9 ~pp:(-9.9) ~ip:(-11.5);
    spec4000 "9symml" 11 10 60 11 8 ~sega:10 ~gbp:9 ~ikmb:8 ~pfa:9 ~idom:8 ~w5:9 ~pw:18.3 ~iw:11.4
      ~pp:(-14.0) ~ip:(-14.4);
    spec4000 "alu2" 15 13 109 26 18 ~sega:11 ~gbp:11 ~ikmb:9 ~pfa:11 ~idom:10 ~w5:11 ~pw:23.9
      ~iw:14.1 ~pp:(-14.7) ~ip:(-18.0);
  ]

let all_specs = specs_3000 @ specs_4000

let find_spec name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun s -> String.equal (String.lowercase_ascii s.circuit) lower) all_specs

let arch_for s ~channel_width =
  match s.series with
  | Arch.Series_3000 -> Arch.xc3000 ~rows:s.rows ~cols:s.cols ~channel_width
  | Arch.Series_4000 -> Arch.xc4000 ~rows:s.rows ~cols:s.cols ~channel_width

(* ------------------------------------------------------------------ *)
(* Synthetic generation                                                *)
(* ------------------------------------------------------------------ *)

let pin_slots_per_side = 2 (* must match Arch default *)

(* Pin counts within each published bucket: small nets lean to 2 pins,
   medium to the low end, large nets have a geometric tail. *)
let draw_pins rng = function
  | `Small -> if Rng.int rng 10 < 6 then 2 else 3
  | `Medium ->
      let rec tail k = if k >= 10 || Rng.int rng 2 = 0 then k else tail (k + 1) in
      tail 4
  | `Large ->
      let rec tail k = if k >= 30 || Rng.int rng 4 < 3 then k else tail (k + 2) in
      tail 11

(* Bounding-box halfwidth for a k-pin net: local nets cluster near a seed
   block; ~8% are chip-spanning (clocks, resets). *)
let draw_halfwidth rng ~rows ~cols k =
  if Rng.int rng 100 < 8 then max rows cols
  else begin
    let base = 1 + int_of_float (ceil (sqrt (float_of_int k))) in
    base + Rng.int rng 3
  end

let generate s =
  let rng = Rng.of_name s.circuit in
  let taken = Hashtbl.create 4096 in
  let free_pins_in_box ~r0 ~r1 ~c0 ~c1 =
    let acc = ref [] in
    for row = max 0 r0 to min (s.rows - 1) r1 do
      for col = max 0 c0 to min (s.cols - 1) c1 do
        List.iter
          (fun side ->
            for slot = 0 to pin_slots_per_side - 1 do
              let p = { Netlist.row; col; side; slot } in
              if not (Hashtbl.mem taken p) then acc := p :: !acc
            done)
          Rrg.all_sides
      done
    done;
    !acc
  in
  let make_one_net idx bucket =
    let k = draw_pins rng bucket in
    let seed_r = Rng.int rng s.rows and seed_c = Rng.int rng s.cols in
    let rec with_halfwidth h =
      let free =
        free_pins_in_box ~r0:(seed_r - h) ~r1:(seed_r + h) ~c0:(seed_c - h) ~c1:(seed_c + h)
      in
      if List.length free < k && h < s.rows + s.cols then with_halfwidth (h + 1)
      else begin
        let arr = Array.of_list free in
        Rng.shuffle rng arr;
        Array.to_list (Array.sub arr 0 k)
      end
    in
    let pins = with_halfwidth (draw_halfwidth rng ~rows:s.rows ~cols:s.cols k) in
    List.iter (fun p -> Hashtbl.replace taken p ()) pins;
    match pins with
    | source :: sinks -> Netlist.make_net ~name:(Printf.sprintf "n%d" idx) ~source ~sinks
    | [] -> assert false
  in
  let buckets =
    List.concat
      [
        List.init s.nets_small (fun _ -> `Small);
        List.init s.nets_medium (fun _ -> `Medium);
        List.init s.nets_large (fun _ -> `Large);
      ]
  in
  (* Interleave bucket order so pin slots don't fill up region-by-region. *)
  let order = Array.of_list buckets in
  Rng.shuffle rng order;
  let nets = Array.to_list (Array.mapi make_one_net order) in
  { Netlist.circuit_name = s.circuit; rows = s.rows; cols = s.cols; nets }
