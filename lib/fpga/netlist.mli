(** Circuits and nets at the architecture level.

    A net's pins are logic-block pin references (block position, side,
    slot); the router maps them onto routing-resource-graph nodes.  Pin
    references are exclusive — two nets may not share a pin — mirroring the
    electrical reality the benchmark generator enforces. *)

type pin_ref = {
  row : int;
  col : int;
  side : Rrg.side;
  slot : int;
}

type net = {
  net_name : string;
  source : pin_ref;
  sinks : pin_ref list;  (** non-empty, distinct, source excluded *)
}

type circuit = {
  circuit_name : string;
  rows : int;
  cols : int;
  nets : net list;
}

val compare_pin : pin_ref -> pin_ref -> int
(** Typed total order on pin references: row, then column, side, slot. *)

val equal_pin : pin_ref -> pin_ref -> bool

val same_net : net -> net -> bool
(** Same name, same source, same sink list.  Order-sensitive: pin order
    determines the router's source/sink mapping, so a permutation is a
    different net. *)

val make_net : name:string -> source:pin_ref -> sinks:pin_ref list -> net
(** @raise Invalid_argument on an empty sink list or duplicate pins. *)

val net_pins : net -> pin_ref list
(** Source first. *)

val pin_count : net -> int

val validate : circuit -> (unit, string) result
(** Checks that all pins are within the array and that no pin reference is
    shared between nets. *)

val pin_histogram : circuit -> int * int * int
(** Nets with 2–3 pins, 4–10 pins, and more than 10 pins — the breakdown
    reported in the paper's Tables 2 and 3. *)

val rrg_net : Rrg.t -> net -> Fr_core.Net.t
(** The net as routing-graph terminals.
    @raise Invalid_argument when the circuit does not fit the RRG's
    architecture. *)

val bounding_box : net -> int * int * int * int
(** [(min_col, min_row, max_col, max_row)] over the net's pins. *)

val to_string : circuit -> string
(** Textual netlist format:
    {v
    circuit <name> <rows> <cols>
    net <name> <row>,<col>,<N|E|S|W>,<slot> <row>,<col>,<side>,<slot> ...
    v}
    First pin is the source. *)

val of_string : string -> (circuit, string) result
(** Parser for {!to_string}'s format (round-trips). *)

val pin_to_string : pin_ref -> string
(** [<row>,<col>,<N|E|S|W>,<slot>] — one pin of {!to_string}'s format. *)

val pin_of_string : string -> pin_ref option

val net_to_string : net -> string
(** [net <name> <pin> <pin> ...] — one line of {!to_string}'s format. *)

val net_of_string : string -> (net, string) result
(** Parser for a single {!net_to_string} line — the wire format the serve
    protocol uses for netlist deltas. *)
