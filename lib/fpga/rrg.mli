(** Routing-resource graph for symmetrical-array FPGAs (paper §2, Fig 2).

    The graph mirrors the complete FPGA architecture: one node per channel
    wire segment (channel segment × track) and one node per logic-block pin;
    edges are programmable switches (switch-block connections between wires,
    following the architecture's [fs] pattern) and connection-block switches
    (pin to [fc] tracks of the adjacent channel).  Paths in this graph
    correspond exactly to feasible routes on the FPGA.

    Edge weights count wirelength: wire–wire switches weigh 1.0 and
    pin–wire connections 0.5, so the cost of a pin-to-pin path equals the
    number of wire segments it occupies.  The router adds congestion on top
    of these base weights and disables consumed nodes.

    Geometry: logic block (r,c) occupies the cell between horizontal
    channels y=r (south) and y=r+1 (north) and vertical channels x=c (west)
    and x=c+1 (east).  Horizontal channel y ∈ [0..R] has C segments;
    vertical channel x ∈ [0..C] has R segments. *)

type side =
  | North
  | East
  | South
  | West

val side_index : side -> int
val side_of_index : int -> side
val all_sides : side list

type seg =
  | H of int * int  (** H (y, x): horizontal channel y, segment x *)
  | V of int * int  (** V (x, y): vertical channel x, segment y *)

val compare_seg : seg -> seg -> int
(** Typed total order (all H before all V, then by coordinates) — the
    comparator for hot-path segment sorts. *)

type kind =
  | Wire of seg * int  (** segment and track *)
  | Pin of int * int * side * int  (** row, col, side, slot *)

type t = private {
  arch : Arch.t;
  graph : Fr_graph.Gstate.t;
  min_unit_cost : float;
      (** minimum enabled base cost per unit of Manhattan channel
          distance, computed at build — the admissible {!future_cost}
          scale (1.0 for this builder) *)
}

val build : ?jog_penalty:float -> Arch.t -> t
(** [jog_penalty] (default 0.) is added to every switch edge that turns a
    route between a horizontal and a vertical wire — the jog-minimization
    objective of the authors' multi-weighted-graph routing framework
    (paper references [4, 7]).  Straight-through and pin connections are
    unaffected. *)

val hwire : t -> y:int -> x:int -> track:int -> int
val vwire : t -> x:int -> y:int -> track:int -> int

val pin : t -> row:int -> col:int -> side:side -> slot:int -> int
(** @raise Invalid_argument out of range. *)

val kind : t -> int -> kind

val num_wires : t -> int
(** Total number of wire nodes (pins excluded). *)

val is_wire : t -> int -> bool

val pos : t -> int -> float * float
(** (x, y) channel-coordinate position: a horizontal wire at the middle
    of its segment on channel line y, a vertical wire at the middle of
    its segment on channel line x, a pin at its block's center.  Used for
    bounding-box candidate pruning and as the geometry under
    {!future_cost} — adjacent switch edges span exactly L1 distance 1.0
    (wire–wire) or 0.5 (pin–wire) in this embedding. *)

val min_unit_cost : t -> float
(** Minimum enabled base cost per unit of Manhattan channel distance
    (1.0 for this builder); also the natural {!Fr_graph.Pq.Bucket} cost
    quantum divided by 2 (pin edges cost half a unit). *)

val future_cost : t -> targets:int list -> Fr_graph.Dijkstra.heuristic
(** Admissible, consistent future-cost lower bound toward [targets]:
    Manhattan channel distance from {!pos} to the nearest target, scaled
    by {!min_unit_cost}.  Admissibility holds at every node for any
    target set and survives every run-time repricing the router performs
    (Waves congestion adds, {!Fr_graph.Cost_model} multiplies by factors
    >= 1, jog penalties only add, disabling removes paths), so one per-net
    heuristic over all terminals is valid for every query of that net's
    solve.  Verified by property test on seeded random architectures in
    both base-cost and Cost_model-priced states. *)

val wires_of_segment : t -> seg -> int list
(** All W wire nodes of a channel segment (enabled or not). *)

val segment_of_node : t -> int -> seg option
(** [None] for pin nodes. *)

val segments : t -> seg list
(** Every channel segment of the device. *)

val segment_occupancy : t -> seg -> int
(** Number of consumed (disabled) wires in the segment — the channel-width
    pressure the router tracks. *)

val wirelength : t -> Fr_graph.Tree.t -> float
(** Number of wire nodes a routed tree occupies (the paper's wirelength on
    FPGAs). *)

val read_only_view : t -> t
(** The same RRG over {!Fr_graph.Gstate.read_only_view} of its graph: what
    the parallel router hands to worker domains so speculative solves can
    read the live routing state but any attempted mutation raises. *)
