(** The fourteen industry benchmark circuits of Tables 2–5, as synthetic
    reconstructions.

    The original netlists (obtained by the authors from Rose/Brown) are not
    redistributable, so each circuit is regenerated from its *published
    statistics* — array size, net count, and pin-count histogram — with a
    locality model (net pins cluster in a bounding box around a seed block,
    with a small fraction of chip-spanning nets) and a per-circuit
    deterministic seed.  Every published statistic of the original is
    matched exactly; see DESIGN.md §3 for why this preserves the paper's
    comparisons. *)

type published = {
  cge : int option;  (** Table 2: CGE's channel width (3000-series) *)
  sega : int option;  (** Tables 3–4: SEGA's channel width (4000-series) *)
  gbp : int option;  (** Tables 3–4: GBP's channel width *)
  ours_ikmb : int option;  (** the paper's router with IKMB *)
  ours_pfa : int option;  (** Table 4: the paper's router with PFA *)
  ours_idom : int option;  (** Table 4: the paper's router with IDOM *)
  table5_width : int option;  (** Table 5's common fixed channel width *)
  table5_pfa_wire : float option;  (** Table 5: PFA wirelength increase % *)
  table5_idom_wire : float option;
  table5_pfa_path : float option;  (** Table 5: PFA max-path decrease % *)
  table5_idom_path : float option;
}

type spec = {
  circuit : string;
  series : Arch.series;
  rows : int;
  cols : int;
  nets_small : int;  (** 2–3 pins *)
  nets_medium : int;  (** 4–10 pins *)
  nets_large : int;  (** over 10 pins *)
  published : published;
}

val total_nets : spec -> int

val specs_3000 : spec list
(** busc, dma, bnre, dfsm, z03 (Table 2 rows, in order). *)

val specs_4000 : spec list
(** alu4, apex7, term1, example2, too_large, k2, vda, 9symml, alu2
    (Table 3 rows, in order). *)

val all_specs : spec list

val find_spec : string -> spec option
(** Case-insensitive by circuit name. *)

val generate : spec -> Netlist.circuit
(** Deterministic synthetic circuit matching the spec's statistics; the
    result always passes {!Netlist.validate} and has exactly the published
    pin-count histogram. *)

val arch_for : spec -> channel_width:int -> Arch.t
(** The series-appropriate architecture preset at the given width. *)
