(** Symmetrical-array FPGA architecture parameters (paper §2, Fig 1).

    An architecture is an R×C array of logic blocks with routing channels
    of [channel_width] tracks between them, switch blocks of flexibility
    [fs] at channel intersections, and connection blocks that let each
    logic-block pin reach [fc] tracks of the adjacent channel.

    The two presets mirror the paper's experimental setups:
    - Xilinx 3000-series (CGE's architecture): [fs = 6],
      [fc = ⌈0.6·W⌉]  (Table 2);
    - Xilinx 4000-series (SEGA/GBP's architecture): [fs = 3], [fc = W]
      (Table 3 — the paper's §5 text says F_s=4 but Table 3's caption and
      the SEGA architecture both use 3; we follow the caption). *)

type series =
  | Series_3000
  | Series_4000

type t = private {
  name : string;
  series : series;
  rows : int;  (** logic-block rows (R) *)
  cols : int;  (** logic-block columns (C) *)
  channel_width : int;  (** W: tracks per channel *)
  fs : int;  (** switch-block flexibility *)
  fc : int;  (** connection-block flexibility, <= W *)
  pin_slots : int;  (** pin nodes per block side (electrically distinct) *)
}

val make :
  ?name:string ->
  ?pin_slots:int ->
  series:series ->
  rows:int ->
  cols:int ->
  channel_width:int ->
  fs:int ->
  fc:int ->
  unit ->
  t
(** @raise Invalid_argument on non-positive dimensions, [channel_width < 1],
    [fs < 1], or [fc] outside [1..channel_width]. *)

val xc3000 : rows:int -> cols:int -> channel_width:int -> t
(** [fs = 6], [fc = ⌈0.6·W⌉]. *)

val xc4000 : rows:int -> cols:int -> channel_width:int -> t
(** [fs = 3], [fc = W]. *)

val with_channel_width : t -> int -> t
(** Same architecture at a different channel width (recomputes the
    series-dependent [fc]). *)

val describe : t -> string
