module G = Fr_graph
module C = Fr_core

type strategy =
  | Tree_alg of C.Routing_alg.t
  | Two_pin_decomposition

type mode =
  | Waves
  | Negotiated

type config = {
  strategy : strategy;
  mode : mode;
  critical_strategy : (Netlist.net -> bool) option;
  critical_alg : C.Routing_alg.t;
  max_passes : int;
  congestion_increment : float;
  bbox_margin : float;
  max_candidates : int;
  targeted_dijkstra : bool;
  astar : bool;
  heap : G.Pq.impl;
  par_batch : int;
  neg_max_iterations : int;
  neg_stall_limit : int;
  neg_present_factor : float;
  neg_present_growth : float;
  neg_history_factor : float;
}

let default_config =
  {
    strategy = Tree_alg C.Routing_alg.ikmb;
    mode = Waves;
    critical_strategy = None;
    critical_alg = C.Routing_alg.idom;
    max_passes = 20;
    congestion_increment = 3.0;
    bbox_margin = 3.;
    max_candidates = 2500;
    targeted_dijkstra = true;
    astar = true;
    heap = G.Pq.Bucket;
    par_batch = 8;
    neg_max_iterations = 64;
    neg_stall_limit = 12;
    neg_present_factor = 0.5;
    neg_present_growth = 1.3;
    neg_history_factor = 0.4;
  }

let config_with ?alg ?max_passes ?mode ?astar ?heap () =
  let cfg = default_config in
  let cfg = match alg with Some a -> { cfg with strategy = Tree_alg a } | None -> cfg in
  let cfg = match mode with Some m -> { cfg with mode = m } | None -> cfg in
  let cfg = match astar with Some a -> { cfg with astar = a } | None -> cfg in
  let cfg = match heap with Some h -> { cfg with heap = h } | None -> cfg in
  match max_passes with Some p -> { cfg with max_passes = p } | None -> cfg

type routed_net = {
  net : Netlist.net;
  tree : G.Tree.t;
  wires_used : float;
  max_path : float;
}

type stats = {
  passes : int;
  routed : routed_net list;
  total_wirelength : float;
  total_max_path : float;
  peak_occupancy : int;
  dijkstra_runs : int;
  settled_nodes : int;
  mutations : int;
  rollbacks : int;
  journal_depth : int;
  domains : int;
  par_batches : int;
  par_conflicts : int;
  future_cost_evals : int;
  heap_impl : string;
}

type failure = {
  failed_nets : string list;
  passes_tried : int;
}

(* ------------------------------------------------------------------ *)
(* Net ordering                                                        *)
(* ------------------------------------------------------------------ *)

let half_perimeter net =
  let c0, r0, c1, r1 = Netlist.bounding_box net in
  c1 - c0 + (r1 - r0)

let initial_order nets =
  List.stable_sort
    (fun a b ->
      match Int.compare (Netlist.pin_count b) (Netlist.pin_count a) with
      | 0 -> (
          match Int.compare (half_perimeter b) (half_perimeter a) with
          | 0 -> String.compare a.Netlist.net_name b.Netlist.net_name
          | c -> c)
      | c -> c)
    nets

let move_to_front failed order =
  let failed_set = Hashtbl.create (2 * List.length failed) in
  List.iter (fun name -> Hashtbl.replace failed_set name ()) failed;
  let is_failed n = Hashtbl.mem failed_set n.Netlist.net_name in
  let front, back = List.partition is_failed order in
  front @ back

(* ------------------------------------------------------------------ *)
(* Shared distance caches                                              *)
(* ------------------------------------------------------------------ *)

let bbox_pred rrg cfg net =
  let c0, r0, c1, r1 = Netlist.bounding_box net in
  let m = cfg.bbox_margin in
  let x0 = float_of_int c0 -. m
  and x1 = float_of_int (c1 + 1) +. m
  and y0 = float_of_int r0 -. m
  and y1 = float_of_int (r1 + 1) +. m in
  fun v ->
    let x, y = Rrg.pos rrg v in
    x >= x0 && x <= x1 && y >= y0 && y <= y1

(* One [Dist_cache] per restriction footprint, shared by every net with
   that footprint and persisting across passes.  A restricted search is
   fully determined by the net's bounding box (plus the constant margin),
   so the box is the key.  Entries are invalidated — not rebuilt — when a
   commit mutates the graph, and the counters accumulate over the whole
   [route] call, which is exactly the before/after work metric the bench
   reports. *)
type cache_key =
  | Full
  | Bbox of int * int * int * int

type cache_pool = {
  caches : (cache_key, G.Dist_cache.t) Hashtbl.t;
  pool_graph : G.Gstate.t;
  targeted : bool;
  pq_impl : G.Pq.impl;
}

let make_pool cfg g =
  {
    caches = Hashtbl.create 32;
    pool_graph = g;
    targeted = cfg.targeted_dijkstra;
    pq_impl = cfg.heap;
  }

let pool_cache pool rrg cfg net ~restricted =
  let key =
    if restricted then begin
      let c0, r0, c1, r1 = Netlist.bounding_box net in
      Bbox (c0, r0, c1, r1)
    end
    else Full
  in
  match Hashtbl.find_opt pool.caches key with
  | Some cache -> cache
  | None ->
      let restrict = if restricted then Some (bbox_pred rrg cfg net) else None in
      (* The bucket-queue quantum is calibrated to the RRG's cost grid:
         pin edges cost half a distance unit, so half the per-unit
         minimum is the finest base-cost granularity. *)
      let delta = 0.5 *. Rrg.min_unit_cost rrg in
      let delta = if delta > 0. then delta else 0.5 in
      let cache =
        G.Dist_cache.create ?restrict ~targeted:pool.targeted ~heap:pool.pq_impl ~delta
          pool.pool_graph
      in
      Hashtbl.add pool.caches key cache;
      cache

let pool_invalidate pool = Hashtbl.iter (fun _ c -> G.Dist_cache.invalidate c) pool.caches

let pool_runs pool = Hashtbl.fold (fun _ c acc -> acc + G.Dist_cache.runs c) pool.caches 0

let pool_settled pool =
  Hashtbl.fold (fun _ c acc -> acc + G.Dist_cache.settled_nodes c) pool.caches 0

let pool_h_evals pool =
  Hashtbl.fold (fun _ c acc -> acc + G.Dist_cache.future_cost_evals c) pool.caches 0

(* ------------------------------------------------------------------ *)
(* Per-net routing                                                     *)
(* ------------------------------------------------------------------ *)

(* Candidate Steiner nodes: wire nodes inside the bounding box, thinned to
   the configured cap. *)
let candidates_for rrg cfg pred =
  let acc = ref [] in
  let count = ref 0 in
  for v = Rrg.num_wires rrg - 1 downto 0 do
    if G.Gstate.node_enabled rrg.Rrg.graph v && pred v then begin
      acc := v :: !acc;
      incr count
    end
  done;
  if !count <= cfg.max_candidates then !acc
  else begin
    (* ceil(count/cap): the smallest stride whose kept count
       (ceil(count/stride)) still fits the budget.  The previous
       [1 + count/cap] overshoots the stride by one and keeps up to ~2x
       fewer candidates than the cap allows. *)
    let stride = (!count + cfg.max_candidates - 1) / cfg.max_candidates in
    List.filteri (fun i _ -> i mod stride = 0) !acc
  end

(* One heuristic per net, over all its terminals: a lower bound to the
   nearest of a superset is still a lower bound to any queried subset, so
   every targeted query the construction makes through this cache shares
   it (and the per-net identity keys the cache entries, see Dist_cache).
   Cleared when A* is off so the solve runs plain. *)
let set_net_heuristic cache rrg cfg (cnet : C.Net.t) =
  G.Dist_cache.set_future_cost cache
    (if cfg.astar then
       Some (Rrg.future_cost rrg ~targets:(cnet.C.Net.source :: cnet.C.Net.sinks))
     else None)

let solve_tree_alg pool alg rrg cfg net ~restricted =
  let cnet = Netlist.rrg_net rrg net in
  let cache = pool_cache pool rrg cfg net ~restricted in
  set_net_heuristic cache rrg cfg cnet;
  let pred = if restricted then bbox_pred rrg cfg net else fun _ -> true in
  let candidates = candidates_for rrg cfg pred in
  alg.C.Routing_alg.solve ~candidates cache ~net:cnet

(* The CGE/SEGA/GBP-style baseline: each source-sink connection is routed
   as an independent two-pin net on its own wires.  Each connection is a
   single-target query, so in targeted mode the search stops at its sink;
   claiming a connection's wires bumps the graph version, which makes the
   shared cache recompute for the next sink exactly as a fresh run would. *)
let solve_two_pin pool rrg cfg net ~restricted =
  let g = rrg.Rrg.graph in
  let cnet = Netlist.rrg_net rrg net in
  let src = cnet.C.Net.source in
  let cache = pool_cache pool rrg cfg net ~restricted in
  (* The wires claimed per connection are released wholesale by rolling the
     journal back to this mark — no per-node bookkeeping. *)
  let cp = G.Gstate.checkpoint g in
  let route_sink edges sink =
    (* Per-sink heuristic: each connection is a pure point-to-point
       search, the sharpest case for goal-direction.  Claiming the
       previous connection's wires bumped the graph version, so no
       frontier survives between sinks anyway. *)
    G.Dist_cache.set_future_cost cache
      (if cfg.astar then Some (Rrg.future_cost rrg ~targets:[ sink ]) else None);
    let r = G.Dist_cache.result_for cache ~src ~targets:[ sink ] in
    if not (G.Dijkstra.reachable r sink) then begin
      G.Gstate.rollback g cp;
      C.Routing_err.fail "two-pin"
    end;
    let path = G.Dijkstra.path_edges r sink in
    (* Claim this connection's wires so the next connection cannot reuse
       them — the decomposition's inefficiency. *)
    List.iter
      (fun v -> if Rrg.is_wire rrg v then G.Gstate.disable_node g v)
      (G.Dijkstra.path_nodes r sink);
    path @ edges
  in
  let edges = List.fold_left route_sink [] cnet.C.Net.sinks in
  G.Gstate.rollback g cp;
  G.Tree.of_edges edges

let solve_net pool cfg rrg net ~restricted =
  let critical = match cfg.critical_strategy with Some p -> p net | None -> false in
  if critical then solve_tree_alg pool cfg.critical_alg rrg cfg net ~restricted
  else
    match cfg.strategy with
    | Tree_alg alg -> solve_tree_alg pool alg rrg cfg net ~restricted
    | Two_pin_decomposition -> solve_two_pin pool rrg cfg net ~restricted

(* Commit a routed net: consume its resources and add congestion pressure
   around the channel segments it used. *)
let commit cfg rrg net tree =
  let g = rrg.Rrg.graph in
  let w = rrg.Rrg.arch.Arch.channel_width in
  let used_nodes = G.Tree.nodes g tree in
  let touched_segments =
    List.filter_map (fun v -> Rrg.segment_of_node rrg v) used_nodes
    |> List.sort_uniq Rrg.compare_seg
  in
  (* Disable consumed wires and the net's own pins. *)
  List.iter (fun v -> if Rrg.is_wire rrg v then G.Gstate.disable_node g v) used_nodes;
  List.iter
    (fun p ->
      G.Gstate.disable_node g (Rrg.pin rrg ~row:p.Netlist.row ~col:p.Netlist.col ~side:p.Netlist.side ~slot:p.Netlist.slot))
    (Netlist.net_pins net);
  (* Congestion: edges incident to the remaining free wires of each touched
     segment become more expensive, proportional to the new occupancy. *)
  let inc = cfg.congestion_increment /. float_of_int w in
  List.iter
    (fun seg ->
      List.iter
        (fun wire ->
          if G.Gstate.node_enabled g wire then begin
            let edges = G.Gstate.fold_adj g wire (fun acc e _ _ -> e :: acc) [] in
            List.iter (fun e -> G.Gstate.add_weight g e inc) edges
          end)
        (Rrg.wires_of_segment rrg seg))
    touched_segments

(* Max source-sink pathlength of a routed tree under the given per-edge
   weight (the router passes the pre-congestion base weights, so this is
   physical wirelength along the path). *)
let max_path_of_tree ~weight g tree ~net_src ~sinks =
  let adj = Hashtbl.create 64 in
  let add u x =
    let cur = try Hashtbl.find adj u with Not_found -> [] in
    Hashtbl.replace adj u (x :: cur)
  in
  List.iter
    (fun e ->
      let u, v = G.Gstate.endpoints g e in
      add u (v, weight e);
      add v (u, weight e))
    tree.G.Tree.edges;
  let dist = Hashtbl.create 64 in
  (* Explicit DFS stack: a routed tree can be path-shaped and hundreds of
     thousands of nodes deep at ROADMAP-scale circuits, far past what the
     native call stack survives. *)
  let stack = ref [ (net_src, 0.) ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (u, d) :: rest ->
        stack := rest;
        if not (Hashtbl.mem dist u) then begin
          Hashtbl.replace dist u d;
          List.iter
            (fun (v, w) -> if not (Hashtbl.mem dist v) then stack := (v, d +. w) :: !stack)
            (try Hashtbl.find adj u with Not_found -> [])
        end
  done;
  List.fold_left
    (fun acc s ->
      match Hashtbl.find_opt dist s with
      | Some d -> max acc d
      | None ->
          (* A committed tree must span every sink; reaching this means the
             construction (or the commit bookkeeping) is broken, and
             silently skipping the sink would under-report pathlength. *)
          invalid_arg (Printf.sprintf "Router.max_path_of_tree: sink %d not spanned by tree" s))
    0. sinks

let base_max_path base_w g tree ~net_src ~sinks =
  max_path_of_tree ~weight:(Array.get base_w) g tree ~net_src ~sinks

(* ------------------------------------------------------------------ *)
(* Wave batching                                                       *)
(* ------------------------------------------------------------------ *)

(* The rip-up wave is partitioned into an ordered sequence of batches.  A
   batch's nets are solved speculatively against the routing state frozen
   at the batch's start (that is what the parallel path fans out over
   worker domains), then committed one at a time in wave order; a
   speculative tree invalidated by an earlier commit of its own batch is
   re-solved serially on the spot.  The partition, the speculative solves
   (pure functions of the frozen state) and the serial commit order are
   all independent of the domain count, which is the determinism argument:
   [~domains:1] and [~domains:n] run the exact same pipeline and produce
   bit-identical trees.

   Batches are formed first-fit over the wave order: a net joins the
   earliest batch whose nets' terminal bounding boxes are all disjoint
   from its own (capped at [par_batch] nets), else opens a new batch.
   Disjoint boxes make same-batch nets unlikely to want the same wires, so
   conflicts stay rare — but the test is purely a throughput heuristic;
   correctness comes from the commit-time validation. *)

(* Two-pin decomposition claims wires through the live journal while it
   solves, so those nets cannot run on a frozen view; each one becomes a
   singleton batch solved serially at commit time — exactly the pre-batch
   behavior. *)
let serial_only cfg net =
  match cfg.strategy with
  | Tree_alg _ -> false
  | Two_pin_decomposition -> (
      match cfg.critical_strategy with Some p -> not (p net) | None -> true)

let boxes_disjoint (ac0, ar0, ac1, ar1) (bc0, br0, bc1, br1) =
  ac1 < bc0 || bc1 < ac0 || ar1 < br0 || br1 < ar0

type batch = {
  serial : bool;
  (* wave-reversed during construction; finalized to wave order *)
  mutable members : (Netlist.net * (int * int * int * int)) list;
  mutable size : int;
}

let partition_wave cfg order =
  (* [rev_batches] is newest-first; first-fit scans creation order. *)
  let rev_batches = ref [] in
  List.iter
    (fun net ->
      if serial_only cfg net then
        rev_batches :=
          { serial = true; members = [ (net, (0, 0, 0, 0)) ]; size = 1 } :: !rev_batches
      else begin
        let box = Netlist.bounding_box net in
        let fits b =
          (not b.serial)
          && b.size < cfg.par_batch
          && List.for_all (fun (_, b2) -> boxes_disjoint box b2) b.members
        in
        match List.find_opt fits (List.rev !rev_batches) with
        | Some b ->
            b.members <- (net, box) :: b.members;
            b.size <- b.size + 1
        | None ->
            rev_batches := { serial = false; members = [ (net, box) ]; size = 1 } :: !rev_batches
      end)
    order;
  List.rev_map
    (fun b ->
      b.members <- List.rev b.members;
      b)
    !rev_batches

(* A speculative tree survives its batch-mates' commits iff every resource
   it uses is still enabled; weight changes never invalidate it (they only
   mean a fresh solve might have chosen differently). *)
let tree_usable g tree =
  List.for_all
    (fun e ->
      G.Gstate.edge_enabled g e
      &&
      let u, v = G.Gstate.endpoints g e in
      G.Gstate.node_enabled g u && G.Gstate.node_enabled g v)
    tree.G.Tree.edges

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)
(* ------------------------------------------------------------------ *)

(* Worker-domain context: the pool plus, per worker, an RRG view and
   distance caches of its own.  Caches are never shared across domains
   (Dist_cache is not thread-safe); the graph views are shared read-only. *)
type par_ctx = {
  wpool : Fr_util.Pool.t;
  wrrg : Rrg.t;
  dcaches : cache_pool array;
}

(* Restricted solve first, full-graph retry on failure (unchanged). *)
let attempt caches cfg rrg net =
  let go restricted =
    match solve_net caches cfg rrg net ~restricted with
    | tree -> Some tree
    | exception C.Routing_err.Unroutable _ -> None
  in
  match go true with Some t -> Some t | None -> go false

(* The two speculative-solve worker bodies, as named module-level functions
   partial-applied at their Pool.map sites.  Everything a worker touches is
   an explicit parameter: frdomcheck checks these as worker roots, and the
   allowlist carries the ownership argument for the per-worker dcaches
   (ctx.dcaches.(worker) is indexed by the worker's own id, so the writes
   the analysis sees on [ctx] never cross domains). *)
let solve_batch_job ctx cfg members ~worker i =
  attempt ctx.dcaches.(worker) cfg ctx.wrrg (fst members.(i))
  [@@frdomcheck.worker]

let solve_negotiated_job ctx cfg nets par_idx ~worker k =
  attempt ctx.dcaches.(worker) cfg ctx.wrrg nets.(par_idx.(k))
  [@@frdomcheck.worker]

(* Run an already-partitioned batch sequence: speculative fan-out per
   batch, then ordered landing.  [record], when given, observes every
   landed batch — the journal mark taken before any of its commits and
   the nets it committed, in commit order.  That pair is the ECO layer's
   replay ledger: rolling the journal back to a batch's mark and re-running
   the schedule suffix from that batch reproduces exactly what a full pass
   over the same schedule would have done from there. *)
let run_batches ~par ~par_batches ~par_conflicts ?record caches cfg rrg batches base_w =
  let g = rrg.Rrg.graph in
  let routed = ref [] and failed = ref [] in
  let routed_count = ref 0 in
  let commit_tree net tree =
    let cnet = Netlist.rrg_net rrg net in
    let max_path =
      base_max_path base_w g tree ~net_src:cnet.C.Net.source ~sinks:cnet.C.Net.sinks
    in
    let wires_used = Rrg.wirelength rrg tree in
    commit cfg rrg net tree;
    (* The commit just mutated weights/enables; version checks would
       catch it lazily, but dropping the stale entries here keeps the
       dependency explicit.  (The per-domain caches go stale the same
       way and drop their entries on their next versioned lookup.) *)
    pool_invalidate caches;
    routed := { net; tree; wires_used; max_path } :: !routed;
    incr routed_count
  in
  let land_result net = function
    | None ->
        (* Failed against the frozen state on the *full* graph.  Commits
           only disable resources within a pass, so the live state offers
           a subset of the frozen one — no point re-solving. *)
        failed := net.Netlist.net_name :: !failed
    | Some tree ->
        if tree_usable g tree then commit_tree net tree
        else begin
          (* A batch-mate committed first and took one of this tree's
             wires: re-solve against the live state, serially. *)
          incr par_conflicts;
          match attempt caches cfg rrg net with
          | Some tree -> commit_tree net tree
          | None -> failed := net.Netlist.net_name :: !failed
        end
  in
  let run_batch b =
    if b.serial then
      List.iter (fun (net, _) -> land_result net (attempt caches cfg rrg net)) b.members
    else begin
      let members = Array.of_list b.members in
      let count = Array.length members in
      if count >= 2 then incr par_batches;
      let solved =
        match par with
        | Some ctx when count >= 2 ->
            Fr_util.Pool.map ctx.wpool ~count (solve_batch_job ctx cfg members)
        | _ -> Array.map (fun (net, _) -> attempt caches cfg rrg net) members
      in
      Array.iteri (fun i r -> land_result (fst members.(i)) r) solved
    end
  in
  List.iter
    (fun b ->
      match record with
      | None -> run_batch b
      | Some f ->
          let cp_b = G.Gstate.checkpoint g in
          let count0 = !routed_count in
          run_batch b;
          (* The batch's own commits, restored to commit order from the
             head of the (reversed) accumulator. *)
          let added = ref [] and rest = ref !routed in
          for _ = count0 + 1 to !routed_count do
            match !rest with
            | r :: tl ->
                added := r :: !added;
                rest := tl
            | [] -> ()
          done;
          f ~cp:cp_b b !added)
    batches;
  (List.rev !routed, List.rev !failed)

let route_one_pass ~par ~par_batches ~par_conflicts ?record caches cfg rrg order base_w =
  run_batches ~par ~par_batches ~par_conflicts ?record caches cfg rrg (partition_wave cfg order)
    base_w

(* Early cutoff shared by [route] and the ECO layer: if the number of
   failing nets has not improved for this many consecutive passes, the
   width is hopeless — declaring failure early saves most of the
   downward-infeasible probes. *)
let waves_stall_limit = 6

(* The rip-up pass loop (waves mode), shared by [route] and the ECO layer.
   [run ~pass order] routes one pass and returns its (routed, failed);
   the caller owns all state discipline (which checkpoint to roll back to,
   whether to truncate the journal afterwards) inside [run].  Both callers
   feed the exact same loop, which is the ECO identity argument for
   multi-pass circuits: once pass 1's outcome matches, every subsequent
   pass is literally the same code on the same inputs. *)
let rec waves_loop ~run cfg order n ~best ~stalled =
  let routed, failed = run ~pass:n order in
  if failed = [] then Ok (routed, n)
  else begin
    let count = List.length failed in
    let best, stalled = if count < best then (count, 0) else (best, stalled + 1) in
    if n >= cfg.max_passes || stalled >= waves_stall_limit then
      Error { failed_nets = failed; passes_tried = n }
    else waves_loop ~run cfg (move_to_front failed order) (n + 1) ~best ~stalled
  end

(* ------------------------------------------------------------------ *)
(* Negotiated congestion (PathFinder / Lagrangian pricing)             *)
(* ------------------------------------------------------------------ *)

(* One negotiated iteration: every net solves independently against the
   epoch's frozen priced graph — resources are shared and over-subscribable,
   so there is no disjointness partition and the fan-out spans the whole
   netlist in a single wave.  Tree-algorithm solves are pure reads of the
   frozen state, hence domain-count-independent; two-pin nets claim wires
   through the live journal while solving (and roll back to the epoch state
   when done), so they run serially after the wave and still see exactly
   the epoch state. *)
let negotiated_iteration ~par ~par_waves caches cfg rrg nets =
  let n = Array.length nets in
  let results = Array.make n None in
  let par_idx = ref [] in
  for i = n - 1 downto 0 do
    if not (serial_only cfg nets.(i)) then par_idx := i :: !par_idx
  done;
  let par_idx = Array.of_list !par_idx in
  let count = Array.length par_idx in
  (match par with
  | Some ctx when count >= 2 ->
      incr par_waves;
      let solved =
        Fr_util.Pool.map ctx.wpool ~count (solve_negotiated_job ctx cfg nets par_idx)
      in
      Array.iteri (fun k r -> results.(par_idx.(k)) <- r) solved
  | _ -> Array.iter (fun i -> results.(i) <- attempt caches cfg rrg nets.(i)) par_idx);
  Array.iteri
    (fun i net -> if serial_only cfg net then results.(i) <- attempt caches cfg rrg net)
    nets;
  results

let cost_model_params cfg =
  {
    G.Cost_model.present_factor = cfg.neg_present_factor;
    present_growth = cfg.neg_present_growth;
    history_factor = cfg.neg_history_factor;
    capacity = 1;
  }

let peak_occupancy rrg =
  List.fold_left (fun acc seg -> Int.max acc (Rrg.segment_occupancy rrg seg)) 0 (Rrg.segments rrg)

(* ------------------------------------------------------------------ *)
(* Shared route-call plumbing                                          *)
(* ------------------------------------------------------------------ *)

let check_route_args ~fname cfg rrg circuit domains =
  (match Netlist.validate circuit with
  | Ok () -> ()
  | Error msg -> invalid_arg (fname ^ ": " ^ msg));
  if
    circuit.Netlist.rows <> rrg.Rrg.arch.Arch.rows
    || circuit.Netlist.cols <> rrg.Rrg.arch.Arch.cols
  then invalid_arg (fname ^ ": circuit does not fit architecture");
  if domains < 1 then invalid_arg (fname ^ ": domains must be >= 1");
  if cfg.par_batch < 1 then invalid_arg (fname ^ ": par_batch must be >= 1")

let make_par cfg domains rrg =
  if domains = 1 then None
  else begin
    let wrrg = Rrg.read_only_view rrg in
    Some
      {
        wpool = Fr_util.Pool.create ~domains ();
        wrrg;
        dcaches = Array.init domains (fun _ -> make_pool cfg wrrg.Rrg.graph);
      }
  end

(* Work counters summed over the serial cache pool and every worker
   domain's pools, snapshotted at call entry so a long-lived state (the
   ECO layer, the serve daemon) reports per-call deltas rather than
   lifetime totals. *)
type counters = {
  c_runs : int;
  c_settled : int;
  c_h_evals : int;
  c_mut : int;
  c_rb : int;
}

let snapshot_counters caches par g =
  let sum f =
    f caches
    + match par with
      | None -> 0
      | Some ctx -> Array.fold_left (fun a p -> a + f p) 0 ctx.dcaches
  in
  {
    c_runs = sum pool_runs;
    c_settled = sum pool_settled;
    c_h_evals = sum pool_h_evals;
    c_mut = G.Gstate.mutations g;
    c_rb = G.Gstate.rollbacks g;
  }

let mk_stats ~caches ~par ~domains ~par_batches ~par_conflicts ~base cfg rrg routed n =
  let g = rrg.Rrg.graph in
  let now = snapshot_counters caches par g in
  {
    passes = n;
    routed;
    total_wirelength = List.fold_left (fun a r -> a +. r.wires_used) 0. routed;
    total_max_path = List.fold_left (fun a r -> a +. r.max_path) 0. routed;
    peak_occupancy = peak_occupancy rrg;
    dijkstra_runs = now.c_runs - base.c_runs;
    settled_nodes = now.c_settled - base.c_settled;
    mutations = now.c_mut - base.c_mut;
    rollbacks = now.c_rb - base.c_rb;
    journal_depth = G.Gstate.peak_journal_depth g;
    domains;
    par_batches = !par_batches;
    par_conflicts = !par_conflicts;
    future_cost_evals = now.c_h_evals - base.c_h_evals;
    heap_impl = G.Pq.impl_name cfg.heap;
  }

(* Negotiated congestion: nets route against shared, over-subscribable
   resources priced by the cost model.  Overuse is legal mid-flight; the
   price escalation (present pressure growing geometrically, history
   rising by a sub-gradient step on each resource's overuse) drives it
   to zero.  The first iteration routes the whole netlist at base
   prices; afterwards every net touching an overused resource is ripped
   out of the usage counts and re-solved — one parallel fan-out over
   ALL conflicted nets, no disjointness partition — against the graph
   priced from the remaining (kept) usage plus history, which is the
   rip-up discipline of the sub-gradient router (arXiv 1803.03885).
   Each iteration's solves are pure functions of the epoch's frozen
   priced graph, the conflicted set is a pure function of the previous
   iteration, and nets are committed in canonical order only after
   convergence — so results are bit-identical across [~domains].

   Shared by [route] and the ECO layer.  On [Ok (routed, iters, iter1)]
   the graph holds the final trees committed at base prices with the
   journal still live above [cp] — the caller decides whether to truncate
   ([route]) or keep the entries undoable (ECO).  On [Error] the graph is
   rolled back to [cp].  [iter1] is the iteration-1 tree of every net: a
   pure function of the base-priced state, which is what makes it a sound
   cross-call memo.  [reuse] may serve a net's iteration-1 solve from such
   a memo — soundness requires it return exactly the tree a fresh solve
   would (solves are deterministic, so a memo keyed on the net's terminals
   qualifies).  [note_solved] observes every net actually (re)solved, on
   every iteration. *)
let negotiate_run ~par ~par_waves ?reuse ?(note_solved = fun _ -> ()) caches cfg rrg cp base_w
    nets =
  let g = rrg.Rrg.graph in
  let cm = G.Cost_model.create ~params:(cost_model_params cfg) g in
  let n_nets = Array.length nets in
  let trees = Array.make n_nets G.Tree.empty in
  let iter1 = Array.make n_nets G.Tree.empty in
  let rec iterate n ~active ~best ~stalled =
    let active =
      if n = 1 then
        Array.of_list
          (List.filter
             (fun i ->
               match reuse with
               | None -> true
               | Some f -> (
                   match f nets.(i) with
                   | Some tree ->
                       trees.(i) <- tree;
                       false
                   | None -> true))
             (Array.to_list active))
      else active
    in
    Array.iter (fun i -> note_solved nets.(i)) active;
    let active_nets = Array.map (fun i -> nets.(i)) active in
    let results = negotiated_iteration ~par ~par_waves caches cfg rrg active_nets in
    let missing = ref [] in
    Array.iteri
      (fun k r ->
        match r with
        | Some t -> trees.(active.(k)) <- t
        | None -> missing := nets.(active.(k)).Netlist.net_name :: !missing)
      results;
    if n = 1 then Array.blit trees 0 iter1 0 n_nets;
    if !missing <> [] then begin
      (* Some net is unroutable even with every resource shared: no
         price schedule can fix that.  Restore the entry state. *)
      G.Gstate.rollback g cp;
      Error { failed_nets = List.rev !missing; passes_tried = n }
    end
    else begin
      G.Cost_model.begin_iteration cm;
      Array.iter (fun t -> G.Cost_model.use_nodes cm (G.Tree.nodes g t)) trees;
      let overuse = G.Cost_model.overuse cm in
      if overuse = 0 then begin
        (* Converged: the trees are mutually disjoint.  Roll the prices
           back to the base weights, then land the trees exactly as the
           waves mode does — measured and congestion-priced in
           pre-negotiation units, in canonical net order. *)
        G.Gstate.rollback g cp;
        let routed =
          Array.to_list
            (Array.mapi
               (fun i tree ->
                 let net = nets.(i) in
                 let cnet = Netlist.rrg_net rrg net in
                 let max_path =
                   base_max_path base_w g tree ~net_src:cnet.C.Net.source
                     ~sinks:cnet.C.Net.sinks
                 in
                 let wires_used = Rrg.wirelength rrg tree in
                 commit cfg rrg net tree;
                 { net; tree; wires_used; max_path })
               trees)
        in
        Ok (routed, n, iter1)
      end
      else begin
        let best, stalled = if overuse < best then (overuse, 0) else (best, stalled + 1) in
        let over = Hashtbl.create 64 in
        List.iter (fun v -> Hashtbl.replace over v ()) (G.Cost_model.overused_nodes cm);
        let conflicted = ref [] in
        for i = n_nets - 1 downto 0 do
          if List.exists (Hashtbl.mem over) (G.Tree.nodes g trees.(i)) then
            conflicted := i :: !conflicted
        done;
        if n >= cfg.neg_max_iterations || stalled >= cfg.neg_stall_limit then begin
          (* Price escalation stopped helping: report the nets still
             fighting over an overused resource and restore the entry
             state. *)
          G.Gstate.rollback g cp;
          Error
            {
              failed_nets = List.map (fun i -> nets.(i).Netlist.net_name) !conflicted;
              passes_tried = n;
            }
        end
        else begin
          (* History escalates on the full usage (the overuse actually
             observed); then the conflicted nets are ripped out so the
             present term prices only the kept nets' occupancy. *)
          G.Cost_model.escalate cm;
          List.iter
            (fun i -> G.Cost_model.release_nodes cm (G.Tree.nodes g trees.(i)))
            !conflicted;
          G.Cost_model.apply cm;
          (* The apply bumped the graph version; dropping stale entries
             here keeps the dependency explicit, as in the waves mode. *)
          pool_invalidate caches;
          iterate (n + 1) ~active:(Array.of_list !conflicted) ~best ~stalled
        end
      end
    end
  in
  iterate 1 ~active:(Array.init n_nets (fun i -> i)) ~best:max_int ~stalled:0

let route ?(config = default_config) ?(domains = 1) rrg circuit =
  check_route_args ~fname:"Router.route" config rrg circuit domains;
  let g = rrg.Rrg.graph in
  (* Per-call stats hygiene: the peak journal depth is a high-water mark
     on the state, and the state may outlive this call. *)
  G.Gstate.reset_peak_journal_depth g;
  (* Entry weights, for measuring committed trees in pre-congestion units. *)
  let base_w = Array.init (G.Gstate.num_edges g) (G.Gstate.weight g) in
  (* Each pass rips up the previous one by rolling the journal back to this
     mark — O(entries the pass wrote), not O(V+E). *)
  let cp = G.Gstate.checkpoint g in
  let caches = make_pool config g in
  (* The worker pool outlives every pass: spawning domains costs more than
     routing a batch, so it is paid once per [route] call. *)
  let par = make_par config domains rrg in
  let finally () = match par with Some ctx -> Fr_util.Pool.shutdown ctx.wpool | None -> () in
  Fun.protect ~finally @@ fun () ->
  let base = snapshot_counters caches par g in
  let par_batches = ref 0 and par_conflicts = ref 0 in
  let stats routed n =
    mk_stats ~caches ~par ~domains ~par_batches ~par_conflicts ~base config rrg routed n
  in
  match config.mode with
  | Waves ->
      let run ~pass:_ order =
        G.Gstate.rollback g cp;
        route_one_pass ~par ~par_batches ~par_conflicts caches config rrg order base_w
      in
      let r =
        waves_loop ~run config (initial_order circuit.Netlist.nets) 1 ~best:max_int ~stalled:0
      in
      (* Keep the final pass's state (useful for rendering) whether it
         succeeded or stalled: accept its mutations instead of undoing
         them. *)
      G.Gstate.commit g cp;
      Result.map (fun (routed, n) -> stats routed n) r
  | Negotiated -> (
      let nets = Array.of_list (initial_order circuit.Netlist.nets) in
      match negotiate_run ~par ~par_waves:par_batches caches config rrg cp base_w nets with
      | Ok (routed, n, _iter1) ->
          G.Gstate.commit g cp;
          Ok (stats routed n)
      | Error f -> Error f)

let min_channel_width ?(config = default_config) ?(domains = 1) ~arch_of_width ~circuit
    ~start ?max_width () =
  if start < 1 then invalid_arg "Router.min_channel_width: start must be >= 1";
  let max_width = match max_width with Some m -> m | None -> start + 15 in
  let try_width w =
    let rrg = Rrg.build (arch_of_width w) in
    match route ~config ~domains rrg circuit with Ok stats -> Some stats | Error _ -> None
  in
  (* Feasibility is monotone in the channel width, so the answer is found by
     bisecting between the last failing and the first succeeding width —
     O(log) routes instead of one per width.  Infeasible probes stay cheap
     thanks to the early-stall cutoff inside [route].  Invariant: [lo]
     failed (0 = conceptual always-failing floor), [hi] succeeded. *)
  let rec bisect lo hi best =
    if hi - lo <= 1 then Some (hi, best)
    else begin
      let mid = (lo + hi) / 2 in
      match try_width mid with
      | Some stats -> bisect lo mid stats
      | None -> bisect mid hi best
    end
  in
  (* When the first probe fails, bracket a succeeding width by galloping
     upward with doubling steps, then bisect inside the last gap.  The
     probe sequence is clamped to [max_width], so the cap itself is always
     attempted before giving up. *)
  let rec gallop_up lo step =
    let w = min max_width (lo + step) in
    match try_width w with
    | Some stats -> bisect lo w stats
    | None -> if w >= max_width then None else gallop_up w (2 * step)
  in
  if max_width < 1 then None
  else begin
    (* The initial probe must stay inside the bracket: a [start] above
       [max_width] handed straight to [bisect] as its succeeding [hi]
       could report a width past the cap the caller set. *)
    let first = min start max_width in
    match try_width first with
    | Some stats -> bisect 0 first stats
    | None -> if first >= max_width then None else gallop_up first 1
  end

(* ------------------------------------------------------------------ *)
(* Incremental (ECO) re-routing                                        *)
(* ------------------------------------------------------------------ *)

module Eco = struct
  type delta =
    | Add_net of Netlist.net
    | Remove_net of string
    | Retime_net of string * Netlist.pin_ref * Netlist.pin_ref list

  (* One landed batch of the maintained pass-1 schedule: the journal mark
     taken before its first commit (rolling back to it erases this batch
     and everything after it), the member nets (the schedule key) and the
     commits it produced. *)
  type batch_rec = {
    br_cp : G.Gstate.checkpoint;
    br_serial : bool;
    br_nets : Netlist.net list;
    br_routed : routed_net list;
  }

  type t = {
    e_rrg : Rrg.t;
    e_cfg : config;
    e_domains : int;
    e_base_w : float array;
    e_cp0 : G.Gstate.checkpoint;
    e_caches : cache_pool;
    e_par : par_ctx option;
    mutable e_circuit : Netlist.circuit;
    mutable e_batches : batch_rec list;
    mutable e_routed : routed_net list;
    mutable e_memo : (string, G.Tree.t) Hashtbl.t;
    mutable e_last : stats option;
    mutable e_closed : bool;
  }

  type eco_stats = {
    stats : stats;
    nets_total : int;
    nets_ripped : int;
    nets_reused : int;
  }

  let terminal_key net =
    String.concat "|" (List.map Netlist.pin_to_string (Netlist.net_pins net))

  let batch_matches br (b : batch) =
    Bool.equal br.br_serial b.serial
    && Int.equal (List.length br.br_nets) b.size
    && List.for_all2 (fun n (m, _) -> Netlist.same_net n m) br.br_nets b.members

  (* Waves-mode (re-)route of [circuit] against the maintained ledger. *)
  let waves_route t circuit ~ripped ~reused =
    let g = t.e_rrg.Rrg.graph in
    let par_batches = ref 0 and par_conflicts = ref 0 in
    let final = ref [] and kept = ref [] in
    let record ~cp b routed_b =
      final :=
        {
          br_cp = cp;
          br_serial = b.serial;
          br_nets = List.map fst b.members;
          br_routed = routed_b;
        }
        :: !final
    in
    let rip net = Hashtbl.replace ripped net.Netlist.net_name () in
    let run ~pass order =
      final := [];
      if pass = 1 then begin
        (* Pass 1 starts exactly where a scratch route's pass 1 would.  The
           landed state after any batch is a pure function of the schedule
           prefix up to it (speculative solves read the frozen batch-start
           state, conflict re-solves and commits read the live one — all
           deterministic), so the longest prefix of the new schedule that
           matches the maintained ledger is already, verbatim, in the
           graph.  Everything from the first mismatched batch on is rolled
           back in one targeted journal rollback and re-run live. *)
        let rec split acc stored sched =
          match (stored, sched) with
          | br :: stored', b :: sched' when batch_matches br b ->
              split (br :: acc) stored' sched'
          | _ -> (List.rev acc, stored, sched)
        in
        let pre, stale, suffix = split [] t.e_batches (partition_wave t.e_cfg order) in
        (match stale with
        | br :: _ -> G.Gstate.rollback g br.br_cp
        | [] -> ());
        kept := pre;
        List.iter
          (fun br ->
            List.iter (fun n -> Hashtbl.replace reused n.Netlist.net_name ()) br.br_nets)
          pre;
        List.iter (fun b -> List.iter (fun (n, _) -> rip n) b.members) suffix;
        let routed_suffix, failed =
          run_batches ~par:t.e_par ~par_batches ~par_conflicts ~record t.e_caches t.e_cfg
            t.e_rrg suffix t.e_base_w
        in
        (List.concat_map (fun br -> br.br_routed) pre @ routed_suffix, failed)
      end
      else begin
        (* A later pass is a full re-route: scratch and ECO run the same
           loop from here on, so the differential stays exact even when
           the edit pushes the circuit into multi-pass territory. *)
        kept := [];
        Hashtbl.reset reused;
        List.iter rip circuit.Netlist.nets;
        G.Gstate.rollback g t.e_cp0;
        route_one_pass ~par:t.e_par ~par_batches ~par_conflicts ~record t.e_caches t.e_cfg
          t.e_rrg order t.e_base_w
      end
    in
    match
      waves_loop ~run t.e_cfg (initial_order circuit.Netlist.nets) 1 ~best:max_int ~stalled:0
    with
    | Ok (routed, n) ->
        t.e_batches <- !kept @ List.rev !final;
        t.e_routed <- routed;
        t.e_circuit <- circuit;
        Ok (routed, n, par_batches, par_conflicts)
    | Error f -> Error (f, par_batches, par_conflicts)

  (* Negotiated pricing has no batch structure to keep a prefix of: the
     maintained trees are torn down and the netlist re-negotiated from the
     base state, with iteration-1 solves — pure functions of that state —
     served from the previous session's memo.  Any net the pricing loop
     touches after iteration 1 is honestly counted as ripped. *)
  let negotiated_route t circuit ~ripped ~reused =
    let g = t.e_rrg.Rrg.graph in
    let par_batches = ref 0 and par_conflicts = ref 0 in
    G.Gstate.rollback g t.e_cp0;
    let reuse net =
      match Hashtbl.find_opt t.e_memo (terminal_key net) with
      | Some tree ->
          Hashtbl.replace reused net.Netlist.net_name ();
          Some tree
      | None -> None
    in
    let note_solved net =
      Hashtbl.remove reused net.Netlist.net_name;
      Hashtbl.replace ripped net.Netlist.net_name ()
    in
    let nets = Array.of_list (initial_order circuit.Netlist.nets) in
    match
      negotiate_run ~par:t.e_par ~par_waves:par_batches ~reuse ~note_solved t.e_caches
        t.e_cfg t.e_rrg t.e_cp0 t.e_base_w nets
    with
    | Ok (routed, n, iter1) ->
        let memo = Hashtbl.create (2 * Array.length nets) in
        Array.iteri (fun i net -> Hashtbl.replace memo (terminal_key net) iter1.(i)) nets;
        t.e_memo <- memo;
        t.e_routed <- routed;
        t.e_circuit <- circuit;
        Ok (routed, n, par_batches, par_conflicts)
    | Error f -> Error (f, par_batches, par_conflicts)

  (* Re-establish the maintained routing after a failed [apply]: tear the
     failed attempt down and replay the stored trees.  Committing a known
     tree is deterministic given the commit order, so this reproduces the
     exact pre-request state (with fresh journal marks for the ledger). *)
  let restore t =
    let g = t.e_rrg.Rrg.graph in
    G.Gstate.rollback g t.e_cp0;
    (match t.e_cfg.mode with
    | Waves ->
        t.e_batches <-
          List.map
            (fun br ->
              let cp = G.Gstate.checkpoint g in
              List.iter (fun r -> commit t.e_cfg t.e_rrg r.net r.tree) br.br_routed;
              { br with br_cp = cp })
            t.e_batches
    | Negotiated -> List.iter (fun r -> commit t.e_cfg t.e_rrg r.net r.tree) t.e_routed);
    pool_invalidate t.e_caches

  let run_mode t circuit ~ripped ~reused =
    match t.e_cfg.mode with
    | Waves -> waves_route t circuit ~ripped ~reused
    | Negotiated -> negotiated_route t circuit ~ripped ~reused

  let finish t ~base ~ripped ~reused circuit = function
    | Ok (routed, n, par_batches, par_conflicts) ->
        let stats =
          mk_stats ~caches:t.e_caches ~par:t.e_par ~domains:t.e_domains ~par_batches
            ~par_conflicts ~base t.e_cfg t.e_rrg routed n
        in
        t.e_last <- Some stats;
        Ok
          {
            stats;
            nets_total = List.length circuit.Netlist.nets;
            nets_ripped = Hashtbl.length ripped;
            nets_reused = Hashtbl.length reused;
          }
    | Error (f, _, _) -> Error f

  let create ?(config = default_config) ?(domains = 1) rrg circuit =
    check_route_args ~fname:"Router.Eco.create" config rrg circuit domains;
    let g = rrg.Rrg.graph in
    G.Gstate.reset_peak_journal_depth g;
    let t =
      {
        e_rrg = rrg;
        e_cfg = config;
        e_domains = domains;
        e_base_w = Array.init (G.Gstate.num_edges g) (G.Gstate.weight g);
        e_cp0 = G.Gstate.checkpoint g;
        e_caches = make_pool config g;
        e_par = make_par config domains rrg;
        e_circuit = circuit;
        e_batches = [];
        e_routed = [];
        e_memo = Hashtbl.create 64;
        e_last = None;
        e_closed = false;
      }
    in
    let base = snapshot_counters t.e_caches t.e_par g in
    let ripped = Hashtbl.create 64 and reused = Hashtbl.create 16 in
    match finish t ~base ~ripped ~reused circuit (run_mode t circuit ~ripped ~reused) with
    | Ok es -> Ok (t, es)
    | Error f ->
        (* A session never outlives a failed initial route: leave the graph
           as it entered and tear the pool down. *)
        G.Gstate.rollback g t.e_cp0;
        (match t.e_par with Some ctx -> Fr_util.Pool.shutdown ctx.wpool | None -> ());
        Error f

  let delta_name = function
    | Add_net n -> n.Netlist.net_name
    | Remove_net name | Retime_net (name, _, _) -> name

  let edit_circuit circuit d =
    let name = delta_name d in
    let mem =
      List.exists (fun n -> String.equal n.Netlist.net_name name) circuit.Netlist.nets
    in
    match d with
    | Add_net n ->
        if mem then invalid_arg ("Router.Eco.apply: net already present: " ^ name);
        { circuit with Netlist.nets = circuit.Netlist.nets @ [ n ] }
    | Remove_net _ ->
        if not mem then invalid_arg ("Router.Eco.apply: no such net: " ^ name);
        {
          circuit with
          Netlist.nets =
            List.filter
              (fun n -> not (String.equal n.Netlist.net_name name))
              circuit.Netlist.nets;
        }
    | Retime_net (_, source, sinks) ->
        if not mem then invalid_arg ("Router.Eco.apply: no such net: " ^ name);
        let replacement = Netlist.make_net ~name ~source ~sinks in
        {
          circuit with
          Netlist.nets =
            List.map
              (fun n -> if String.equal n.Netlist.net_name name then replacement else n)
              circuit.Netlist.nets;
        }

  let apply t deltas =
    if t.e_closed then invalid_arg "Router.Eco.apply: session closed";
    let circuit = List.fold_left edit_circuit t.e_circuit deltas in
    (match Netlist.validate circuit with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Router.Eco.apply: " ^ msg));
    let g = t.e_rrg.Rrg.graph in
    G.Gstate.reset_peak_journal_depth g;
    let base = snapshot_counters t.e_caches t.e_par g in
    let ripped = Hashtbl.create 64 and reused = Hashtbl.create 64 in
    let res = run_mode t circuit ~ripped ~reused in
    (match res with
    | Ok _ -> ()
    | Error _ ->
        (* The edited netlist does not route; put the pre-request routing
           back so the session stays usable. *)
        restore t);
    finish t ~base ~ripped ~reused circuit res

  let circuit t = t.e_circuit

  let routed t = t.e_routed

  let last_stats t = t.e_last

  let close t =
    if not t.e_closed then begin
      t.e_closed <- true;
      match t.e_par with Some ctx -> Fr_util.Pool.shutdown ctx.wpool | None -> ()
    end
end
