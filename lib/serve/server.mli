(** The routing daemon behind [fpga_route serve].

    Listens on a Unix domain socket and speaks the newline-delimited JSON
    protocol of {!Protocol} over it.  Each connection gets its own thread;
    all requests serialize on one global mutex around the single long-lived
    {!Fr_fpga.Router.Eco} session, whose worker-domain pool supplies the
    CPU parallelism (the pool must be driven from one thread at a time).
    Concurrent clients therefore interleave at request granularity and
    every response reports that request's own per-call stats.

    A ["route"] request opens (or replaces) the session; ["eco"] requests
    re-route its netlist incrementally under the ECO differential-exactness
    contract; ["checkpoint"] snapshots the netlist by value and restores by
    replaying a name-keyed diff as ECO deltas; ["shutdown"] stops the
    accept loop, drains the connection threads and closes the session. *)

type t

val create : socket:string -> t
(** Bind and listen on [socket] (an existing file at that path is
    removed first).  Returns once the socket accepts connections, so a
    caller may announce readiness before {!serve_forever} blocks.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val socket_path : t -> string

val serve_forever : t -> unit
(** Accept connections until a ["shutdown"] request arrives, then join
    every connection thread, close the session (shutting its domain pool
    down) and remove the socket file. *)

val run : socket:string -> unit
(** [create] + {!serve_forever}. *)
