(* Wire protocol of the routing daemon: newline-delimited JSON requests
   and responses (see protocol.mli for the grammar).  This module is the
   pure half — request parsing and response rendering — so the daemon,
   the bench client, and the tests all speak from one vocabulary. *)

module F = Fr_fpga

type route_req = {
  circuit_text : string;
  width : int;
  mode : F.Router.mode;
  domains : int;
  max_passes : int option;
}

type checkpoint_req =
  | Save
  | Restore of int

type request =
  | Route of route_req
  | Eco of F.Router.Eco.delta list
  | Stats
  | Checkpoint of checkpoint_req
  | Shutdown

let mode_name = function F.Router.Waves -> "waves" | F.Router.Negotiated -> "negotiated"

let mode_of_name = function
  | "waves" -> Some F.Router.Waves
  | "negotiated" -> Some F.Router.Negotiated
  | _ -> None

(* ---------------- request parsing ---------------- *)

let field_str j key = Option.bind (Json.member key j) Json.str

let field_int j key = Option.bind (Json.member key j) Json.int

let parse_pin s =
  match F.Netlist.pin_of_string s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "malformed pin %S" s)

let parse_delta j =
  match field_str j "op" with
  | Some "add" -> (
      match field_str j "net" with
      | None -> Error "add delta: missing \"net\""
      | Some line -> (
          match F.Netlist.net_of_string line with
          | Ok n -> Ok (F.Router.Eco.Add_net n)
          | Error e -> Error (Printf.sprintf "add delta: %s" e)))
  | Some "remove" -> (
      match field_str j "name" with
      | Some name -> Ok (F.Router.Eco.Remove_net name)
      | None -> Error "remove delta: missing \"name\"")
  | Some "retime" -> (
      match (field_str j "name", field_str j "source", Option.bind (Json.member "sinks" j) Json.arr)
      with
      | Some name, Some src, Some sink_js -> (
          let rec pins acc = function
            | [] -> Ok (List.rev acc)
            | s :: rest -> (
                match Option.bind (Json.str s) (fun x -> Result.to_option (parse_pin x)) with
                | Some p -> pins (p :: acc) rest
                | None -> Error "retime delta: malformed sink pin")
          in
          match (parse_pin src, pins [] sink_js) with
          | Ok source, Ok sinks -> Ok (F.Router.Eco.Retime_net (name, source, sinks))
          | Error e, _ -> Error (Printf.sprintf "retime delta: %s" e)
          | _, Error e -> Error e)
      | _ -> Error "retime delta: needs \"name\", \"source\" and \"sinks\"")
  | Some op -> Error (Printf.sprintf "unknown delta op %S" op)
  | None -> Error "delta: missing \"op\""

let parse_request j =
  match field_str j "cmd" with
  | Some "route" -> (
      match (field_str j "circuit", field_int j "width") with
      | Some circuit_text, Some width -> (
          let mode_s = Option.value ~default:"waves" (field_str j "mode") in
          match mode_of_name mode_s with
          | None -> Error (Printf.sprintf "unknown mode %S" mode_s)
          | Some mode ->
              Ok
                (Route
                   {
                     circuit_text;
                     width;
                     mode;
                     domains = Option.value ~default:1 (field_int j "domains");
                     max_passes = field_int j "max_passes";
                   }))
      | _ -> Error "route: needs \"circuit\" and \"width\"")
  | Some "eco" -> (
      match Option.bind (Json.member "deltas" j) Json.arr with
      | None -> Error "eco: missing \"deltas\" array"
      | Some items ->
          let rec go acc = function
            | [] -> Ok (Eco (List.rev acc))
            | d :: rest -> (
                match parse_delta d with Ok delta -> go (delta :: acc) rest | Error e -> Error e)
          in
          go [] items)
  | Some "stats" -> Ok Stats
  | Some "checkpoint" -> (
      match Json.member "restore" j with
      | None -> Ok (Checkpoint Save)
      | Some v -> (
          match Json.int v with
          | Some id -> Ok (Checkpoint (Restore id))
          | None -> Error "checkpoint: \"restore\" must be an integer id"))
  | Some "shutdown" -> Ok Shutdown
  | Some cmd -> Error (Printf.sprintf "unknown cmd %S" cmd)
  | None -> Error "missing \"cmd\""

(* ---------------- responses ---------------- *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let stats_json (s : F.Router.stats) =
  Json.Obj
    [
      ("passes", Json.of_int s.F.Router.passes);
      ("nets", Json.of_int (List.length s.F.Router.routed));
      ("wirelength", Json.Num s.F.Router.total_wirelength);
      ("max_path", Json.Num s.F.Router.total_max_path);
      ("peak_occupancy", Json.of_int s.F.Router.peak_occupancy);
      ("dijkstra_runs", Json.of_int s.F.Router.dijkstra_runs);
      ("settled_nodes", Json.of_int s.F.Router.settled_nodes);
      ("mutations", Json.of_int s.F.Router.mutations);
      ("rollbacks", Json.of_int s.F.Router.rollbacks);
      ("journal_depth", Json.of_int s.F.Router.journal_depth);
      ("domains", Json.of_int s.F.Router.domains);
      ("par_batches", Json.of_int s.F.Router.par_batches);
      ("par_conflicts", Json.of_int s.F.Router.par_conflicts);
      ("future_cost_evals", Json.of_int s.F.Router.future_cost_evals);
      ("heap", Json.Str s.F.Router.heap_impl);
    ]

(* Canonical fingerprint of a routing: net names with sorted edge-id lists,
   sorted by name, digested.  Two routings share a digest iff they are the
   same set of trees — the equality the ECO differential contract promises,
   checkable by a client that never sees the trees themselves. *)
let routing_digest routed =
  let canon =
    List.map
      (fun (r : F.Router.routed_net) ->
        let edges = List.sort Int.compare r.F.Router.tree.Fr_graph.Tree.edges in
        r.F.Router.net.F.Netlist.net_name ^ ":"
        ^ String.concat "," (List.map string_of_int edges))
      routed
    |> List.sort String.compare
  in
  Digest.to_hex (Digest.string (String.concat ";" canon))

let routed_response (es : F.Router.Eco.eco_stats) =
  ok
    [
      ("status", Json.Str "routed");
      ("stats", stats_json es.F.Router.Eco.stats);
      ("nets_total", Json.of_int es.F.Router.Eco.nets_total);
      ("nets_ripped", Json.of_int es.F.Router.Eco.nets_ripped);
      ("nets_reused", Json.of_int es.F.Router.Eco.nets_reused);
      ("digest", Json.Str (routing_digest es.F.Router.Eco.stats.F.Router.routed));
    ]

let unroutable_response (f : F.Router.failure) =
  ok
    [
      ("status", Json.Str "unroutable");
      ("failed_nets", Json.Arr (List.map (fun n -> Json.Str n) f.F.Router.failed_nets));
      ("passes_tried", Json.of_int f.F.Router.passes_tried);
    ]
