(* Minimal JSON: just enough for the newline-delimited serve protocol.
   Hand-rolled because the toolchain ships no JSON package; the subset is
   complete (all six value kinds, string escapes including \uXXXX with
   surrogate pairs) so any standard client can speak to the daemon. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- emitting ---------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add_value buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> add_escaped buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_value buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add_value buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_value buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Bad of string

type cursor = {
  text : string;
  mutable pos : int;
}

let fail cur msg = raise (Bad (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some d when Char.equal d c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.text && String.equal (String.sub cur.text cur.pos n) word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 cur =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail cur "bad hex digit in \\u escape"
  in
  let get () =
    match peek cur with
    | Some c ->
        advance cur;
        digit c
    | None -> fail cur "truncated \\u escape"
  in
  let a = get () in
  let b = get () in
  let c = get () in
  let d = get () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' ->
            advance cur;
            Buffer.add_char buf '"'
        | Some '\\' ->
            advance cur;
            Buffer.add_char buf '\\'
        | Some '/' ->
            advance cur;
            Buffer.add_char buf '/'
        | Some 'b' ->
            advance cur;
            Buffer.add_char buf '\b'
        | Some 'f' ->
            advance cur;
            Buffer.add_char buf '\012'
        | Some 'n' ->
            advance cur;
            Buffer.add_char buf '\n'
        | Some 'r' ->
            advance cur;
            Buffer.add_char buf '\r'
        | Some 't' ->
            advance cur;
            Buffer.add_char buf '\t'
        | Some 'u' ->
            advance cur;
            let u = hex4 cur in
            (* A high surrogate must pair with an immediately following
               \uDC00-\uDFFF low surrogate; anything else is malformed. *)
            if u >= 0xD800 && u <= 0xDBFF then begin
              expect cur '\\';
              expect cur 'u';
              let lo = hex4 cur in
              if lo < 0xDC00 || lo > 0xDFFF then fail cur "unpaired surrogate"
              else add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if u >= 0xDC00 && u <= 0xDFFF then fail cur "unpaired surrogate"
            else add_utf8 buf u
        | _ -> fail cur "bad escape");
        go ()
    | Some c when Char.code c < 0x20 -> fail cur "control character in string"
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let numeric c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek cur with
    | Some c when numeric c ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.text start (cur.pos - start) in
  match float_of_string_opt s with Some f -> Num f | None -> fail cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (kv :: acc)
          | Some '}' ->
              advance cur;
              List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let of_string text =
  let cur = { text; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos < String.length text then Error "trailing garbage after JSON value" else Ok v
  | exception Bad msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let str v = match v with Str s -> Some s | _ -> None

let num v = match v with Num f -> Some f | _ -> None

let int v =
  match v with Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let bool v = match v with Bool b -> Some b | _ -> None

let arr v = match v with Arr items -> Some items | _ -> None

let of_int i = Num (float_of_int i)
