(* The routing daemon: a Unix-domain-socket front end over a long-lived
   Router.Eco session.

   Concurrency model: one listener thread ([serve_forever]) accepts
   connections and hands each to its own thread; every request dispatches
   under one global mutex, so the Eco session — and the domain pool it
   owns — is only ever driven from one thread at a time (Pool is not
   thread-safe).  CPU parallelism comes from inside the router (the
   session's worker domains), not from overlapping requests; concurrent
   clients interleave at request granularity and each still sees
   serializable sessions.  Responses carry per-request stats, so an
   interleaved client reads its own request's work, not a shared total. *)

module F = Fr_fpga

type session = {
  eco : F.Router.Eco.t;
  width : int;
  mode : F.Router.mode;
  domains : int;
  mutable checkpoints : (int * F.Netlist.circuit) list;  (* newest first *)
  mutable next_checkpoint : int;
}

type t = {
  sock : Unix.file_descr;
  path : string;
  lock : Mutex.t;
  mutable session : session option;
  mutable requests : int;
  mutable stopping : bool;
  mutable conns : Thread.t list;
}

let create ~socket =
  if Sys.file_exists socket then Sys.remove socket;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock 16;
  {
    sock;
    path = socket;
    lock = Mutex.create ();
    session = None;
    requests = 0;
    stopping = false;
    conns = [];
  }

let socket_path t = t.path

let close_session t =
  match t.session with
  | None -> ()
  | Some s ->
      F.Router.Eco.close s.eco;
      t.session <- None

(* ---------------- request handlers (called under t.lock) ---------------- *)

let handle_route t (r : Protocol.route_req) =
  match F.Netlist.of_string r.Protocol.circuit_text with
  | Error e -> Protocol.error (Printf.sprintf "bad circuit: %s" e)
  | Ok circuit -> (
      let arch =
        F.Arch.xc4000 ~rows:circuit.F.Netlist.rows ~cols:circuit.F.Netlist.cols
          ~channel_width:r.Protocol.width
      in
      let rrg = F.Rrg.build arch in
      let config =
        match r.Protocol.max_passes with
        | Some p -> F.Router.config_with ~mode:r.Protocol.mode ~max_passes:p ()
        | None -> F.Router.config_with ~mode:r.Protocol.mode ()
      in
      match F.Router.Eco.create ~config ~domains:r.Protocol.domains rrg circuit with
      | Ok (eco, es) ->
          close_session t;
          t.session <-
            Some
              {
                eco;
                width = r.Protocol.width;
                mode = r.Protocol.mode;
                domains = r.Protocol.domains;
                checkpoints = [];
                next_checkpoint = 1;
              };
          Protocol.routed_response es
      | Error f ->
          (* No session opened; a previous session, if any, is kept. *)
          Protocol.unroutable_response f
      | exception Invalid_argument msg -> Protocol.error msg)

let handle_eco s deltas =
  match F.Router.Eco.apply s.eco deltas with
  | Ok es -> Protocol.routed_response es
  | Error f -> Protocol.unroutable_response f
  | exception Invalid_argument msg -> Protocol.error msg

let handle_stats t =
  match t.session with
  | None -> Protocol.ok [ ("session", Json.Bool false); ("requests", Json.of_int t.requests) ]
  | Some s ->
      let circuit = F.Router.Eco.circuit s.eco in
      let last =
        match F.Router.Eco.last_stats s.eco with
        | Some st -> Protocol.stats_json st
        | None -> Json.Null
      in
      Protocol.ok
        [
          ("session", Json.Bool true);
          ("requests", Json.of_int t.requests);
          ("circuit", Json.Str circuit.F.Netlist.circuit_name);
          ("nets", Json.of_int (List.length circuit.F.Netlist.nets));
          ("width", Json.of_int s.width);
          ("mode", Json.Str (Protocol.mode_name s.mode));
          ("domains", Json.of_int s.domains);
          ("checkpoints", Json.of_int (List.length s.checkpoints));
          ("digest", Json.Str (Protocol.routing_digest (F.Router.Eco.routed s.eco)));
          ("last", last);
        ]

(* The deltas that edit [cur] into [goal], by net name: removals first
   (freeing their pins), then terminal changes, then additions.  Eco
   validates the final netlist as a whole, so intermediate pin sharing
   between a freed and a claimed pin is fine in any order. *)
let diff_deltas (cur : F.Netlist.circuit) (goal : F.Netlist.circuit) =
  let by_name nets =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (n : F.Netlist.net) -> Hashtbl.replace tbl n.F.Netlist.net_name n) nets;
    tbl
  in
  let cur_tbl = by_name cur.F.Netlist.nets and goal_tbl = by_name goal.F.Netlist.nets in
  let removes =
    List.filter_map
      (fun (n : F.Netlist.net) ->
        if Hashtbl.mem goal_tbl n.F.Netlist.net_name then None
        else Some (F.Router.Eco.Remove_net n.F.Netlist.net_name))
      cur.F.Netlist.nets
  in
  let retimes =
    List.filter_map
      (fun (n : F.Netlist.net) ->
        match Hashtbl.find_opt cur_tbl n.F.Netlist.net_name with
        | Some old when not (F.Netlist.same_net old n) ->
            Some (F.Router.Eco.Retime_net (n.F.Netlist.net_name, n.F.Netlist.source, n.F.Netlist.sinks))
        | _ -> None)
      goal.F.Netlist.nets
  in
  let adds =
    List.filter_map
      (fun (n : F.Netlist.net) ->
        if Hashtbl.mem cur_tbl n.F.Netlist.net_name then None else Some (F.Router.Eco.Add_net n))
      goal.F.Netlist.nets
  in
  removes @ retimes @ adds

let handle_checkpoint s (c : Protocol.checkpoint_req) =
  match c with
  | Protocol.Save ->
      let id = s.next_checkpoint in
      s.next_checkpoint <- id + 1;
      s.checkpoints <- (id, F.Router.Eco.circuit s.eco) :: s.checkpoints;
      Protocol.ok [ ("id", Json.of_int id) ]
  | Protocol.Restore id -> (
      match List.assoc_opt id s.checkpoints with
      | None -> Protocol.error (Printf.sprintf "no checkpoint %d" id)
      | Some goal -> handle_eco s (diff_deltas (F.Router.Eco.circuit s.eco) goal))

let dispatch t req =
  Mutex.lock t.lock;
  let resp =
    match
      match req with
      | Protocol.Route r -> handle_route t r
      | Protocol.Eco deltas -> (
          match t.session with
          | None -> Protocol.error "no session: send a \"route\" request first"
          | Some s -> handle_eco s deltas)
      | Protocol.Stats -> handle_stats t
      | Protocol.Checkpoint c -> (
          match t.session with
          | None -> Protocol.error "no session: send a \"route\" request first"
          | Some s -> handle_checkpoint s c)
      | Protocol.Shutdown ->
          t.stopping <- true;
          Protocol.ok [ ("status", Json.Str "bye") ]
    with
    | resp -> resp
    | exception e -> Protocol.error (Printf.sprintf "internal error: %s" (Printexc.to_string e))
  in
  t.requests <- t.requests + 1;
  let stop_now = t.stopping in
  Mutex.unlock t.lock;
  (resp, stop_now)

(* Wake the listener out of [Unix.accept] by connecting to ourselves; the
   accept loop re-checks [stopping] after every accept. *)
let poke t =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX t.path) with
      | () -> Unix.close fd
      | exception Unix.Unix_error _ -> Unix.close fd)
  | exception Unix.Unix_error _ -> ()

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        let resp, stop_now =
          match Json.of_string line with
          | Error e -> (Protocol.error (Printf.sprintf "bad JSON: %s" e), false)
          | Ok j -> (
              match Protocol.parse_request j with
              | Error e -> (Protocol.error e, false)
              | Ok req -> dispatch t req)
        in
        output_string oc (Json.to_string resp);
        output_char oc '\n';
        flush oc;
        if stop_now then poke t else loop ()
  in
  loop ();
  (match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ())

let serve_forever t =
  let rec accept_loop () =
    let stop = Mutex.protect t.lock (fun () -> t.stopping) in
    if not stop then begin
      match Unix.accept t.sock with
      | fd, _ ->
          let th = Thread.create (fun () -> handle_conn t fd) () in
          Mutex.protect t.lock (fun () -> t.conns <- th :: t.conns);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  accept_loop ();
  let conns = Mutex.protect t.lock (fun () -> t.conns) in
  List.iter Thread.join conns;
  Mutex.protect t.lock (fun () -> close_session t);
  Unix.close t.sock;
  if Sys.file_exists t.path then Sys.remove t.path

let run ~socket = serve_forever (create ~socket)
