(* Blocking client for the daemon's newline-delimited JSON protocol —
   what the bench driver, the CI smoke and the tests connect with. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
      Unix.close fd;
      raise e

let request t req =
  output_string t.oc (Json.to_string req);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> Json.of_string line
  | exception End_of_file -> Error "connection closed by server"

let close t =
  match Unix.close t.fd with () -> () | exception Unix.Unix_error _ -> ()
