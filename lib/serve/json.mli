(** Minimal JSON codec for the serve protocol.

    The toolchain ships no JSON package, so the daemon carries its own:
    the full value grammar (RFC 8259) with string escapes including
    [\uXXXX] and surrogate pairs, emitted compactly on one line — the
    framing unit of the newline-delimited protocol.  Integers round-trip
    exactly below [1e15]; objects preserve field order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no newlines, ever — emitted strings
    escape them), so a value is always exactly one protocol frame. *)

val of_string : string -> (t, string) result
(** Parse one complete value; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val str : t -> string option

val num : t -> float option

val int : t -> int option
(** [Some] only for integral numbers. *)

val bool : t -> bool option

val arr : t -> t list option

val of_int : int -> t
