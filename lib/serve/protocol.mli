(** Wire protocol of the routing daemon — the pure half.

    One request per line, one JSON object per request; one response line
    per request, always an object with an ["ok"] boolean.  Grammar:

    {v
    {"cmd":"route","circuit":<netlist text>,"width":W,
     "mode":"waves"|"negotiated","domains":D,"max_passes":N}
        open (or replace) the routing session
    {"cmd":"eco","deltas":[
        {"op":"add","net":"net <name> <pin> <pin> ..."},
        {"op":"remove","name":<net>},
        {"op":"retime","name":<net>,"source":<pin>,"sinks":[<pin>,...]}]}
        incremental re-route of the edited netlist
    {"cmd":"stats"}                 session and last-request statistics
    {"cmd":"checkpoint"}            snapshot the netlist, returns an id
    {"cmd":"checkpoint","restore":I} ECO back to snapshot I's netlist
    {"cmd":"shutdown"}              stop the daemon
    v}

    Pins use the netlist text format, [<row>,<col>,<N|E|S|W>,<slot>].
    [route] and [eco] answer [{"ok":true,"status":"routed",...}] with
    per-request stats, ECO rip-up accounting and a canonical routing
    digest, or [{"ok":true,"status":"unroutable",...}] when the edited
    netlist does not route at the session width (the session keeps its
    pre-request routing).  Malformed or out-of-session requests answer
    [{"ok":false,"error":...}]. *)

type route_req = {
  circuit_text : string;  (** {!Fr_fpga.Netlist.of_string} format *)
  width : int;
  mode : Fr_fpga.Router.mode;
  domains : int;
  max_passes : int option;
}

type checkpoint_req =
  | Save
  | Restore of int

type request =
  | Route of route_req
  | Eco of Fr_fpga.Router.Eco.delta list
  | Stats
  | Checkpoint of checkpoint_req
  | Shutdown

val mode_name : Fr_fpga.Router.mode -> string

val mode_of_name : string -> Fr_fpga.Router.mode option

val parse_request : Json.t -> (request, string) result

val ok : (string * Json.t) list -> Json.t
(** An [{"ok":true}] object with the given extra fields. *)

val error : string -> Json.t

val stats_json : Fr_fpga.Router.stats -> Json.t

val routing_digest : Fr_fpga.Router.routed_net list -> string
(** Order-independent fingerprint of a routing: net names with sorted
    edge-id lists, sorted by name, MD5-digested.  Equal digests iff equal
    tree sets — how a socket client checks the ECO differential contract
    without shipping trees over the wire. *)

val routed_response : Fr_fpga.Router.Eco.eco_stats -> Json.t

val unroutable_response : Fr_fpga.Router.failure -> Json.t
