(** Blocking client for the daemon protocol (one request, one response).

    Used by the bench driver and the CI serve smoke; any program that can
    write a JSON line to a Unix socket can do the same. *)

type t

val connect : socket:string -> t
(** @raise Unix.Unix_error when the daemon is not listening. *)

val request : t -> Json.t -> (Json.t, string) result
(** Send one request line, block for the response line, parse it.
    [Error] on a protocol-framing failure (closed connection, non-JSON
    response); application-level failures come back as [Ok] objects with
    [{"ok":false}]. *)

val close : t -> unit
