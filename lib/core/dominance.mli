(** Graph dominance (paper Def 4.1) and the shared machinery of the
    arborescence constructions (§4).

    A node [p] dominates [s] (w.r.t. a source) when some shortest
    source-to-[p] path passes through [s], i.e.
    [minpath(n0,p) = minpath(n0,s) + minpath(s,p)].  All distances come from
    the memoized per-node Dijkstra results, so dominance tests are O(1)
    lookups once the participating nodes' results are cached. *)

val tol : float
(** Absolute tolerance for the dominance equality test (floating-point
    path sums). *)

val dominates : Fr_graph.Dist_cache.t -> source:int -> p:int -> s:int -> bool
(** Requires [p]'s Dijkstra result (computed on demand); [s] may be any
    node. *)

val dominates_via :
  source_dist:(int -> float) -> p_dist:(int -> float) -> p:int -> s:int -> bool
(** Low-level variant for tight scan loops: [source_dist] is distance from
    the net source, [p_dist] is distance from [p]. *)

val max_dom :
  ?allowed:(int -> bool) ->
  ?candidates:int list ->
  Fr_graph.Dist_cache.t ->
  source:int ->
  p:int ->
  q:int ->
  (int * float) option
(** [max_dom cache ~source ~p ~q] is the paper's MaxDom(p,q): a node
    dominated by both [p] and [q] farthest from the source, with its
    distance.  Always succeeds on connected inputs since the source is
    dominated by everything; [None] only if [p]/[q] are unreachable.
    [allowed] restricts the scanned node set.  [candidates] bounds the scan
    to the listed nodes plus the source — and with it the Dijkstra settling,
    via targeted queries; without it the scan settles whole per-source
    results.  Scanning candidates [cs] equals scanning all nodes with
    [allowed] = membership in [source :: cs]. *)

val nearest_dominated :
  Fr_graph.Dist_cache.t -> source:int -> members:int list -> p:int -> (int * float) option
(** The parent-selection rule shared by DOM/PFA/IDOM: the member [s ≠ p]
    that [p] dominates, at minimum [minpath(s,p)] (ties: smaller source
    distance, then smaller id).  [None] when [p] is the source or
    unreachable; otherwise at least the source qualifies. *)

val fold_tree :
  Fr_graph.Dist_cache.t ->
  source:int ->
  members:int list ->
  keep:int list ->
  Fr_graph.Tree.t
(** Builds the final arborescence shared by DOM (members = net) and PFA
    (members = net + MaxDom Steiner points): connect every member to its
    nearest dominated member via a shortest path, take the shortest-paths
    tree of the union subgraph, and prune leaves outside [keep].  The result
    provably preserves every kept sink's graph distance from the source.
    @raise Routing_err.Unroutable if some member is unreachable. *)
