module G = Fr_graph

(* Multi-source Dijkstra: every terminal starts at distance 0; [owner]
   records which terminal's wave reached each node first. *)
let voronoi g ~terminals =
  let n = G.Gstate.num_nodes g in
  let dist = Array.make n infinity in
  let owner = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = G.Heap.create ~capacity:(2 * n) () in
  List.iter
    (fun t ->
      dist.(t) <- 0.;
      owner.(t) <- t;
      G.Heap.push heap 0. t)
    terminals;
  let rec loop () =
    match G.Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          G.Gstate.iter_adj g u (fun e v w ->
              if (not settled.(v)) && d +. w < dist.(v) then begin
                dist.(v) <- d +. w;
                owner.(v) <- owner.(u);
                parent_edge.(v) <- e;
                G.Heap.push heap dist.(v) v
              end)
        end;
        loop ()
  in
  loop ();
  (owner, dist, parent_edge)

let path_to_owner g parent_edge u =
  (* Edges from u back to its region's terminal. *)
  let rec up u acc =
    let e = parent_edge.(u) in
    if e < 0 then acc else up (G.Gstate.other_end g e u) (e :: acc)
  in
  up u []

let solve g ~terminals =
  let ts = List.sort_uniq Int.compare terminals in
  match ts with
  | [] | [ _ ] -> G.Tree.empty
  | _ ->
      let owner, dist, parent_edge = voronoi g ~terminals:ts in
      (* Best bridge between each pair of adjacent regions. *)
      let bridges = Hashtbl.create 64 in
      G.Gstate.iter_edges g (fun e u v w ->
          let su = owner.(u) and sv = owner.(v) in
          if su >= 0 && sv >= 0 && su <> sv then begin
            let key = if su < sv then (su, sv) else (sv, su) in
            let len = dist.(u) +. w +. dist.(v) in
            match Hashtbl.find_opt bridges key with
            | Some (best, _, _) when best <= len -> ()
            | _ -> Hashtbl.replace bridges key (len, e, (u, v))
          end);
      let edges =
        Hashtbl.fold
          (fun (su, sv) (len, e, _) acc -> (su, sv, len, e) :: acc)
          bridges []
      in
      let chosen, cost = G.Mst.kruskal ~nodes:ts ~edges in
      if cost = infinity then Routing_err.fail "Mehlhorn";
      (* Expand each chosen bridge into real graph edges. *)
      let expanded =
        List.concat_map
          (fun (_, _, _, e) ->
            let u, v = G.Gstate.endpoints g e in
            (e :: path_to_owner g parent_edge u) @ path_to_owner g parent_edge v)
          chosen
        |> List.sort_uniq Int.compare
      in
      let sub_edges =
        List.map
          (fun e ->
            let u, v = G.Gstate.endpoints g e in
            (u, v, G.Gstate.weight g e, e))
          expanded
      in
      let chosen', cost' = G.Mst.kruskal ~nodes:ts ~edges:sub_edges in
      if cost' = infinity then Routing_err.fail "Mehlhorn";
      G.Tree.prune g (G.Tree.of_edges (List.map (fun (_, _, _, e) -> e) chosen')) ~keep:ts

let voronoi g ~terminals =
  let owner, dist, _ = voronoi g ~terminals in
  (owner, dist)

let cost g ~terminals = G.Tree.cost g (solve g ~terminals)
