module G = Fr_graph

let improvement_eps = 1e-7

let default_candidates g terminals =
  let in_net = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace in_net t ()) terminals;
  let acc = ref [] in
  for v = G.Gstate.num_nodes g - 1 downto 0 do
    if G.Gstate.node_enabled g v && not (Hashtbl.mem in_net v) then acc := v :: !acc
  done;
  !acc

(* The Fig 12 loop; returns (S in acceptance order, cost trace).

   Δ-scan datapath: with the per-member Dijkstra arrays prefetched, a
   candidate [t] is evaluated in O(k): each existing sink can only improve
   by re-parenting onto [t] (its other options are unchanged), and [t]
   itself picks its cheapest dominated member — the "combining common
   computations" the paper prescribes for IDOM's complexity.

   Every distance the scan reads lands on a member or a candidate, so the
   per-source queries are target-bounded to that set: on a bbox-restricted
   routing graph the searches stop long before settling the whole graph. *)
let grow ?candidates cache ~net =
  let g = G.Dist_cache.graph cache in
  let source = net.Net.source in
  let terminals = Net.terminals net in
  let in_net = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace in_net t ()) terminals;
  let all_candidates =
    match candidates with
    | Some c -> List.filter (fun t -> not (Hashtbl.mem in_net t)) c
    | None -> default_candidates g terminals
  in
  let sd =
    (G.Dist_cache.result_for cache ~src:source
       ~targets:(List.rev_append terminals all_candidates))
      .G.Dijkstra.dist
  in
  if List.exists (fun s -> sd.(s) = infinity) net.Net.sinks then Routing_err.fail "IDOM";
  let dominates ~p ~s ~dist_sp =
    let dp = sd.(p) and ds = sd.(s) in
    dp < infinity && ds < infinity && dist_sp < infinity
    && Float.abs (dp -. (ds +. dist_sp)) <= (Dominance.tol *. (1. +. Float.abs dp)) +. Dominance.tol
  in
  let in_s = Hashtbl.create 16 in
  (* members = source :: sinks-so-far (terminals' sinks ++ accepted S). *)
  let rec iterate s trace =
    let sinks = List.rev_append s net.Net.sinks in
    let members = Array.of_list (source :: sinks) in
    let k = Array.length members in
    let targets = Array.fold_left (fun acc m -> m :: acc) all_candidates members in
    let arr =
      Array.map
        (fun m -> (G.Dist_cache.result_for cache ~src:m ~targets).G.Dijkstra.dist)
        members
    in
    (* Best current parent cost for each sink member (index >= 1 in
       [members]); the source connects to nothing. *)
    let best_parent = Array.make k 0. in
    for i = 1 to k - 1 do
      let p = members.(i) in
      let best = ref infinity in
      for j = 0 to k - 1 do
        if j <> i then begin
          let sN = members.(j) in
          let d = arr.(j).(p) in
          if dominates ~p ~s:sN ~dist_sp:d && d < !best then best := d
        end
      done;
      best_parent.(i) <- !best
    done;
    let base = Array.fold_left ( +. ) 0. best_parent in
    if base = infinity then Routing_err.fail "IDOM";
    let eval t =
      (* t's own parent: cheapest member it dominates. *)
      let own = ref infinity in
      for j = 0 to k - 1 do
        let d = arr.(j).(t) in
        if dominates ~p:t ~s:members.(j) ~dist_sp:d && d < !own then own := d
      done;
      if !own = infinity then infinity
      else begin
        (* existing sinks may re-parent onto t *)
        let total = ref !own in
        for i = 1 to k - 1 do
          let p = members.(i) in
          let via_t =
            let d = arr.(i).(t) in
            (* dist(t, p) read from p's array at t; dominance: p dominates t *)
            if dominates ~p ~s:t ~dist_sp:d then d else infinity
          in
          total := !total +. min best_parent.(i) via_t
        done;
        !total
      end
    in
    let best_t = ref (-1) and best_cost = ref base in
    List.iter
      (fun t ->
        if not (Hashtbl.mem in_s t) then begin
          let c = eval t in
          if c < !best_cost -. improvement_eps then begin
            best_cost := c;
            best_t := t
          end
        end)
      all_candidates;
    if !best_t < 0 then (List.rev s, List.rev (base :: trace))
    else begin
      Hashtbl.replace in_s !best_t ();
      iterate (!best_t :: s) (base :: trace)
    end
  in
  iterate [] []

let steiner_nodes ?candidates cache ~net = fst (grow ?candidates cache ~net)

let distance_graph_cost_trace ?candidates cache ~net = snd (grow ?candidates cache ~net)

let solve ?candidates cache ~net =
  let s, _ = grow ?candidates cache ~net in
  let members = Net.terminals net @ s in
  Dominance.fold_tree cache ~source:net.Net.source ~members ~keep:(Net.terminals net)
