(** The Bounded-Radius Bounded-Cost tree of Cong–Kahng–Robins–Sarrafzadeh–
    Wong (paper reference [14]).

    Given a tradeoff parameter ε ≥ 0, BRBC walks depth-first around a
    low-cost backbone tree (here: the KMB Steiner tree) accumulating
    traversed length; whenever the accumulated slack at a terminal [v]
    exceeds ε·minpath(source, v), the shortest source-to-[v] path is merged
    in and the slack resets.  The shortest-paths tree of the resulting
    union has radius ≤ (1+ε)·optimal and cost ≤ (1 + 2/ε)·cost(backbone).

    With ε = 0 the construction degenerates to Dijkstra's SPT — the paper's
    §2 point that BRBC cannot produce a *minimum-wirelength* shortest-paths
    tree, which is the gap PFA/IDOM close. *)

val solve : epsilon:float -> Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t
(** Spans the net's terminals; prunes non-terminal leaves.  Requires
    [epsilon >= 0.].
    @raise Routing_err.Unroutable when some sink is unreachable. *)

val radius_bound_holds :
  epsilon:float -> Fr_graph.Dist_cache.t -> net:Net.t -> tree:Fr_graph.Tree.t -> bool
(** Checks the defining guarantee: every sink's tree pathlength is at most
    (1+ε)·minpath(source, sink) (with a small floating tolerance). *)
