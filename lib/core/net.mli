(** Nets (paper §2): a set of pins to be electrically connected, the first
    of which is the signal source. *)

type t = {
  source : int;
  sinks : int list;  (** distinct, never containing [source] *)
}

val make : source:int -> sinks:int list -> t
(** Deduplicates sinks and drops the source from them.
    @raise Invalid_argument on a negative node id. *)

val of_terminals : int list -> t
(** First element is the source. @raise Invalid_argument on []. *)

val terminals : t -> int list
(** Source first, then sinks. *)

val size : t -> int
(** Number of pins (source included). *)
