(** The Kou–Markowsky–Berman graph Steiner tree heuristic (paper §8.1,
    Fig 17; reference [26]).  Performance ratio 2·(1 − 1/L) where L is the
    maximum number of leaves in an optimal solution.

    Steps: (1) build the complete "distance graph" over the terminals with
    shortest-path weights, (2) take its MST, (3) expand each MST edge into
    the corresponding shortest path of G, (4) take an MST of that subgraph,
    (5) prune pendant non-terminal leaves. *)

val solve : Fr_graph.Dist_cache.t -> terminals:int list -> Fr_graph.Tree.t
(** @raise Routing_err.Unroutable when the terminals are not all in one
    connected component of the (enabled part of the) graph. *)

val cost : Fr_graph.Dist_cache.t -> terminals:int list -> float
(** [cost cache ~terminals] = cost of [solve]'s tree; convenience for the
    Δ-scans of {!Igmst}. *)
