(** The Iterated Dominance heuristic (paper §4.2, Fig 12).

    Greedily grows a Steiner set S: at each step the candidate [t]
    maximizing ΔDOM(G, N, S ∪ {t}) — the reduction of DOM's distance-graph
    cost — is added, until no candidate improves; the result is
    DOM(G, N∪S).  Escapes PFA's Θ(N) worst case (it solves those instances
    optimally) at the price of an Ω(log N) worst case of its own (Fig 14),
    matching the set-cover inapproximability bound of the GSA problem. *)

val solve :
  ?candidates:int list -> Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t
(** [candidates] defaults to every enabled non-terminal node (the paper's
    V − N).  @raise Routing_err.Unroutable when some sink is unreachable. *)

val steiner_nodes :
  ?candidates:int list -> Fr_graph.Dist_cache.t -> net:Net.t -> int list
(** The accepted Steiner set S, in acceptance order (trace hook for
    Fig 13). *)

val distance_graph_cost_trace :
  ?candidates:int list -> Fr_graph.Dist_cache.t -> net:Net.t -> float list
(** DOM's distance-graph cost after each acceptance (strictly decreasing —
    the paper's monotonicity claim; first element = plain DOM's cost). *)
