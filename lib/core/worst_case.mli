(** Generators for the paper's adversarial instances (Figs 10, 11, 14).

    Each instance carries a reference cost of a known optimal (or
    best-known) arborescence so the figures' ratios can be regenerated. *)

type instance = {
  graph : Fr_graph.Gstate.t;
  net : Net.t;
  reference_cost : float;  (** cost of the known good solution *)
  description : string;
}

val pfa_graph : k:int -> instance
(** Fig 10 analogue: [k] sinks reachable through one shared trunk (the
    optimal solution) or through pairwise decoy merge points that PFA's
    farthest-MaxDom rule prefers, driving PFA to Θ(k)·OPT while IDOM stays
    optimal.  Requires [k >= 2]. *)

val pfa_grid : n:int -> instance
(** Fig 11: the staircase pointset of Rao et al. on a grid with horizontal
    spacing 1 and vertical spacing 2; PFA's cost approaches twice the
    optimal as [n] grows.  [reference_cost] is the true optimum from
    {!staircase_opt}.  Requires [n >= 2]. *)

val staircase_opt : n:int -> float
(** Optimal rectilinear Steiner arborescence cost for the Fig 11 staircase,
    by interval dynamic programming over contiguous merges. *)

val idom_graph : levels:int -> instance
(** Fig 14: the set-cover macro-box gadget.  Two "good" boxes cover all
    sinks at cost ≈ 2, while IDOM's greedy selects the [levels]
    exponentially-shrinking decoy boxes for cost ≈ [levels] —
    the Ω(log N) lower bound.  Requires [1 <= levels <= 16]. *)
