(** The Path-Folding Arborescence heuristic (paper §4.1, Fig 9).

    Generalizes the RSA construction of Rao et al. [32] from the Manhattan
    plane to arbitrary weighted graphs: repeatedly replace the pair of
    active nodes {p,q} whose MaxDom(p,q) lies farthest from the source by
    that MaxDom node, then connect every accumulated node to the nearest
    node it dominates.  Produces a shortest-paths tree; wirelength is the
    secondary objective.  Worst case Θ(N)·OPT on general graphs (Fig 10)
    and →2·OPT on grids (Fig 11) — see {!Worst_case}. *)

val solve :
  ?steiner_ok:(int -> bool) ->
  ?steiner_candidates:int list ->
  Fr_graph.Dist_cache.t ->
  net:Net.t ->
  Fr_graph.Tree.t
(** [steiner_ok] restricts which nodes may serve as MaxDom merge points
    (bounding-box pruning on large routing graphs; merge points may always
    fall back to the source).  [steiner_candidates] bounds the MaxDom scan
    to the listed nodes plus the source — and, through targeted Dijkstra
    queries, the settling done on their behalf; scanning candidates [cs]
    equals scanning all nodes with [steiner_ok] = membership in [cs].
    @raise Routing_err.Unroutable when some sink is unreachable. *)

val steiner_nodes :
  ?steiner_ok:(int -> bool) ->
  ?steiner_candidates:int list ->
  Fr_graph.Dist_cache.t ->
  net:Net.t ->
  int list
(** The MaxDom merge points the construction introduced (trace hook). *)
