(** Mehlhorn's faster KMB-style Steiner approximation (paper reference
    [30]).

    Replaces KMB's all-pairs distance graph with a single multi-source
    Dijkstra: the graph is partitioned into terminal Voronoi regions, and
    every edge bridging two regions proposes a terminal-to-terminal
    connection of length d(u, s(u)) + w(u,v) + d(v, s(v)).  An MST over
    those proposals, expanded and cleaned exactly like KMB's steps 4–5,
    yields the same 2·(1−1/L) performance bound at O(|E| + |V| log |V|)
    per net — the complexity the paper quotes for KMB's fast
    implementation. *)

val solve : Fr_graph.Gstate.t -> terminals:int list -> Fr_graph.Tree.t
(** @raise Routing_err.Unroutable when the terminals are disconnected. *)

val cost : Fr_graph.Gstate.t -> terminals:int list -> float

val voronoi : Fr_graph.Gstate.t -> terminals:int list -> int array * float array
(** The underlying partition: for every node, its closest terminal (-1 if
    unreachable) and the distance to it (exposed for tests). *)
