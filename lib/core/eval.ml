module G = Fr_graph

type metrics = {
  cost : float;
  max_path : float;
  opt_max_path : float;
  arborescence : bool;
}

let path_tolerance = 1e-6

let check cache ~net ~tree =
  let g = G.Dist_cache.graph cache in
  if not (G.Tree.spans g tree (Net.terminals net)) then Error "tree does not span the net"
  else if not (G.Tree.is_tree g tree) then Error "edge set is not a tree"
  else if not (G.Tree.uses_only_enabled g tree) then Error "tree uses disabled resources"
  else Ok ()

let metrics cache ~net ~tree =
  let g = G.Dist_cache.graph cache in
  if not (G.Tree.spans g tree (Net.terminals net)) then
    invalid_arg "Eval.metrics: tree does not span net";
  let src = net.Net.source in
  let r = G.Dist_cache.result cache ~src in
  let cost = G.Tree.cost g tree in
  let lengths =
    match net.Net.sinks with
    | [] -> []
    | _ ->
        let all = G.Tree.path_table g tree ~src in
        List.map
          (fun s ->
            match Hashtbl.find_opt all s with
            | Some d -> (s, d)
            | None -> invalid_arg "Eval.metrics: sink disconnected in tree")
          net.Net.sinks
  in
  let max_path = List.fold_left (fun acc (_, d) -> Float.max acc d) 0. lengths in
  let opt_max_path =
    List.fold_left (fun acc s -> Float.max acc (G.Dijkstra.dist r s)) 0. net.Net.sinks
  in
  let arborescence =
    List.for_all
      (fun (s, d) ->
        let opt = G.Dijkstra.dist r s in
        Float.abs (d -. opt) <= path_tolerance *. (1. +. Float.abs opt))
      lengths
  in
  { cost; max_path; opt_max_path; arborescence }

let is_arborescence cache ~net ~tree = (metrics cache ~net ~tree).arborescence
