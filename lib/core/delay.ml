module G = Fr_graph

type params = {
  unit_resistance : float;
  unit_capacitance : float;
  sink_load : float;
  driver_resistance : float;
}

let default_params =
  { unit_resistance = 1.; unit_capacitance = 1.; sink_load = 1.; driver_resistance = 1. }

let elmore ?(params = default_params) g ~tree ~net =
  let src = net.Net.source in
  if not (G.Tree.spans g tree (Net.terminals net)) then
    invalid_arg "Delay.elmore: tree does not span net";
  let sink_tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace sink_tbl s ()) net.Net.sinks;
  (* Root the tree at the source. *)
  let adj = Hashtbl.create 64 in
  let add u x =
    let cur = try Hashtbl.find adj u with Not_found -> [] in
    Hashtbl.replace adj u (x :: cur)
  in
  List.iter
    (fun e ->
      let u, v = G.Gstate.endpoints g e in
      let w = G.Gstate.weight g e in
      add u (v, w);
      add v (u, w))
    tree.G.Tree.edges;
  (* Downstream capacitance per node (wire cap of the subtree plus sink
     loads), by post-order DFS. *)
  let subtree_cap = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  let rec cap_of u =
    Hashtbl.replace visited u ();
    let own = if Hashtbl.mem sink_tbl u then params.sink_load else 0. in
    let below =
      List.fold_left
        (fun acc (v, w) ->
          if Hashtbl.mem visited v then acc
          else acc +. (params.unit_capacitance *. w) +. cap_of v)
        0.
        (try Hashtbl.find adj u with Not_found -> [])
    in
    let total = own +. below in
    Hashtbl.replace subtree_cap u total;
    total
  in
  let total_cap = if tree.G.Tree.edges = [] then 0. else cap_of src in
  let driver_term = params.driver_resistance *. total_cap in
  (* Delays by pre-order DFS: accumulate R(path)·C(downstream). *)
  let delays = Hashtbl.create 16 in
  let seen = Hashtbl.create 64 in
  let rec walk u acc =
    Hashtbl.replace seen u ();
    if Hashtbl.mem sink_tbl u then Hashtbl.replace delays u (driver_term +. acc);
    List.iter
      (fun (v, w) ->
        if not (Hashtbl.mem seen v) then begin
          let r = params.unit_resistance *. w in
          let c_half_edge = params.unit_capacitance *. w /. 2. in
          let c_below = try Hashtbl.find subtree_cap v with Not_found -> 0. in
          walk v (acc +. (r *. (c_half_edge +. c_below)))
        end)
      (try Hashtbl.find adj u with Not_found -> [])
  in
  if tree.G.Tree.edges <> [] then walk src 0.;
  List.map
    (fun s ->
      match Hashtbl.find_opt delays s with
      | Some d -> (s, d)
      | None -> invalid_arg "Delay.elmore: sink not reached by tree")
    net.Net.sinks

let max_delay ?params g ~tree ~net =
  List.fold_left (fun acc (_, d) -> max acc d) 0. (elmore ?params g ~tree ~net)
