module G = Fr_graph

let solve cache ~net =
  let g = G.Dist_cache.graph cache in
  let r = G.Dist_cache.result cache ~src:net.Net.source in
  List.iter
    (fun s -> if not (G.Dijkstra.reachable r s) then Routing_err.fail "DJKA")
    net.Net.sinks;
  let tree = G.Tree.of_edges (G.Dijkstra.spt_edges r) in
  G.Tree.prune g tree ~keep:(Net.terminals net)
