exception Unroutable of string

let fail who = raise (Unroutable who)
