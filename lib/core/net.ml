type t = {
  source : int;
  sinks : int list;
}

let make ~source ~sinks =
  if source < 0 || List.exists (fun s -> s < 0) sinks then
    invalid_arg "Net.make: negative node id";
  let sinks = List.sort_uniq Int.compare (List.filter (fun s -> s <> source) sinks) in
  { source; sinks }

let of_terminals = function
  | [] -> invalid_arg "Net.of_terminals: empty net"
  | source :: sinks -> make ~source ~sinks

let terminals n = n.source :: n.sinks

let size n = 1 + List.length n.sinks
