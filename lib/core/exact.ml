module G = Fr_graph

let max_terminals = 12

(* Reconstruction decisions for dp.(mask).(v). *)
type choice =
  | Leaf  (** v is the mask's own terminal (singleton base case) *)
  | Merge of int  (** split into submask and its complement, both at v *)
  | Walk of int * int  (** reached from node u over edge e *)

let steiner g ~terminals =
  let ts = Array.of_list (List.sort_uniq Int.compare terminals) in
  let k = Array.length ts in
  if k > max_terminals then invalid_arg "Exact.steiner: too many terminals";
  if k <= 1 then G.Tree.empty
  else begin
    let n = G.Gstate.num_nodes g in
    let root = ts.(k - 1) in
    let kk = k - 1 in
    let nmasks = 1 lsl kk in
    let dp = Array.init nmasks (fun _ -> Array.make n infinity) in
    let how = Array.init nmasks (fun _ -> Array.make n Leaf) in
    (* Dijkstra relaxation of one mask layer, seeded by its current values. *)
    let relax mask =
      let d = dp.(mask) and h = how.(mask) in
      let heap = G.Heap.create ~capacity:(2 * n) () in
      let settled = Array.make n false in
      Array.iteri (fun v dv -> if dv < infinity then G.Heap.push heap dv v) d;
      let rec loop () =
        match G.Heap.pop_min heap with
        | None -> ()
        | Some (dist, u) ->
            if (not settled.(u)) && dist <= d.(u) +. 1e-12 then begin
              settled.(u) <- true;
              G.Gstate.iter_adj g u (fun e v w ->
                  if (not settled.(v)) && d.(u) +. w < d.(v) then begin
                    d.(v) <- d.(u) +. w;
                    h.(v) <- Walk (u, e);
                    G.Heap.push heap d.(v) v
                  end)
            end;
            loop ()
      in
      loop ()
    in
    (* Base cases: singleton masks. *)
    for i = 0 to kk - 1 do
      let mask = 1 lsl i in
      dp.(mask).(ts.(i)) <- 0.;
      how.(mask).(ts.(i)) <- Leaf;
      relax mask
    done;
    (* Masks in increasing popcount order; all strict submasks are done
       before a mask because submasks are numerically smaller only within
       the same popcount ordering — iterate masks in increasing numeric
       order instead, which also guarantees submasks come first. *)
    for mask = 1 to nmasks - 1 do
      if mask land (mask - 1) <> 0 then begin
        (* Merge step over proper submasks. *)
        let d = dp.(mask) and h = how.(mask) in
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let other = mask lxor !sub in
          if !sub < other then begin
            let ds = dp.(!sub) and dt = dp.(other) in
            for v = 0 to n - 1 do
              let c = ds.(v) +. dt.(v) in
              if c < d.(v) then begin
                d.(v) <- c;
                h.(v) <- Merge !sub
              end
            done
          end;
          sub := (!sub - 1) land mask
        done;
        relax mask
      end
    done;
    let full = nmasks - 1 in
    if dp.(full).(root) = infinity then Routing_err.fail "Exact";
    (* Reconstruct the edge set. *)
    let edges = ref [] in
    let rec collect mask v =
      match how.(mask).(v) with
      | Leaf -> assert (mask land (mask - 1) = 0)
      | Merge sub ->
          collect sub v;
          collect (mask lxor sub) v
      | Walk (u, e) ->
          edges := e :: !edges;
          collect mask u
    in
    collect full root;
    G.Tree.of_edges !edges
  end

let steiner_cost g ~terminals = G.Tree.cost g (steiner g ~terminals)
