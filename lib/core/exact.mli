(** Exact graph Steiner trees via the Dreyfus–Wagner dynamic program
    (with Erickson–Monma–Veinott-style Dijkstra relaxation).

    Exponential in the terminal count only — O(3^k·|V| + 2^k·Dijkstra) —
    so it is practical for the paper's net sizes (≤ ~10 pins) and serves as
    the "OPT" reference for approximation-quality tests and the optimal
    Steiner trees of Fig 4. *)

val max_terminals : int
(** Hard safety limit (12) on the number of terminals. *)

val steiner : Fr_graph.Gstate.t -> terminals:int list -> Fr_graph.Tree.t
(** A minimum-cost tree of the enabled subgraph spanning the terminals.
    @raise Invalid_argument beyond {!max_terminals} terminals.
    @raise Routing_err.Unroutable when the terminals are disconnected. *)

val steiner_cost : Fr_graph.Gstate.t -> terminals:int list -> float
