module G = Fr_graph

type heuristic = {
  name : string;
  solve : Fr_graph.Dist_cache.t -> terminals:int list -> Fr_graph.Tree.t;
}

let kmb = { name = "KMB"; solve = Kmb.solve }

let zel () =
  let memo = Zel.create_memo () in
  { name = "ZEL"; solve = (fun cache ~terminals -> Zel.solve ~memo cache ~terminals) }

let improvement_eps = 1e-7

(* How many of the best quick-ranked candidates get a full H evaluation per
   iteration. *)
let verify_top = 16

let default_candidates g terminals =
  let in_net = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace in_net t ()) terminals;
  let acc = ref [] in
  for v = G.Gstate.num_nodes g - 1 downto 0 do
    if G.Gstate.node_enabled g v && not (Hashtbl.mem in_net v) then acc := v :: !acc
  done;
  !acc

let try_cost h cache ~terminals =
  match h.solve cache ~terminals with
  | tree -> G.Tree.cost (G.Dist_cache.graph cache) tree
  | exception Routing_err.Unroutable _ -> infinity

(* Quick Δ proxy: the MST cost of the distance graph over the members plus
   one candidate.  Distances to the candidate come from the members' cached
   Dijkstra arrays, so each candidate costs O(k²) float work and no graph
   traversal.  The proxy ranks candidates; the top few are re-evaluated
   with the genuine heuristic so the accepted Steiner node always yields a
   true cost(H) improvement (keeping IGMST's performance guarantee).

   Every distance read lands on a member or a candidate, so the per-member
   queries are target-bounded to that set — the searches stop as soon as
   the scan's inputs are settled instead of covering the whole graph. *)
let quick_scan cache ~members ~candidates =
  let ms = Array.of_list members in
  let k = Array.length ms in
  let targets = List.rev_append members candidates in
  let dist_arrays =
    Array.map (fun m -> (G.Dist_cache.result_for cache ~src:m ~targets).G.Dijkstra.dist) ms
  in
  let size = k + 1 in
  let w = Array.make_matrix size size 0. in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let d = dist_arrays.(i).(ms.(j)) in
      w.(i).(j) <- d;
      w.(j).(i) <- d
    done
  done;
  let base = snd (G.Mst.prim_dense ~n:k ~weight:(fun i j -> w.(i).(j))) in
  let scored =
    List.filter_map
      (fun t ->
        for i = 0 to k - 1 do
          let d = dist_arrays.(i).(t) in
          w.(i).(k) <- d;
          w.(k).(i) <- d
        done;
        let c = snd (G.Mst.prim_dense ~n:size ~weight:(fun i j -> w.(i).(j))) in
        if c < base -. improvement_eps then Some (t, c) else None)
      candidates
  in
  List.sort (fun (_, a) (_, b) -> Float.compare a b) scored

(* The Fig 5 loop, returning the accepted Steiner set S.

   [batched] enables the paper's batch variant: instead of one acceptance
   per ranking round, every ranked candidate that still yields a true
   cost(H) improvement is accepted within the round (the "non-interference"
   criterion degenerates to re-verifying against the already-grown set,
   which is safe and keeps the monotone-improvement guarantee).  Typical
   instances need <= 3 rounds, matching the paper's observation. *)
let grow ?(batched = false) ?candidates h cache ~terminals =
  let g = G.Dist_cache.graph cache in
  let terminals = List.sort_uniq Int.compare terminals in
  if List.length terminals <= 2 then begin
    (* A single source-sink pair: the shortest path is already optimal, no
       Steiner node can improve it. *)
    let base = try_cost h cache ~terminals in
    if base = infinity then Routing_err.fail ("I" ^ h.name);
    []
  end
  else begin
    let all_candidates =
      match candidates with Some c -> c | None -> default_candidates g terminals
    in
    let in_terms = Hashtbl.create 16 in
    List.iter (fun t -> Hashtbl.replace in_terms t ()) terminals;
    let usable = List.filter (fun t -> not (Hashtbl.mem in_terms t)) all_candidates in
    let in_s = Hashtbl.create 16 in
    let rec iterate s base =
      let members = s @ terminals in
      let remaining = List.filter (fun t -> not (Hashtbl.mem in_s t)) usable in
      let ranked = quick_scan cache ~members ~candidates:remaining in
      if batched then begin
        (* Accept every ranked candidate that still truly improves.  The
           sweep accumulates the Steiner set alone (terminals are appended
           only for the cost evaluation), so nothing needs filtering back
           out afterwards. *)
        let rec sweep sl base n changed = function
          | [] -> (sl, base, changed)
          | _ when n >= verify_top -> (sl, base, changed)
          | (t, _) :: rest ->
              let c = try_cost h cache ~terminals:(t :: sl @ terminals) in
              if c < base -. improvement_eps then begin
                Hashtbl.replace in_s t ();
                sweep (t :: sl) c (n + 1) true rest
              end
              else sweep sl base (n + 1) changed rest
        in
        let s', base', changed = sweep s base 0 false ranked in
        if changed then iterate s' base' else s
      end
      else begin
        let rec verify best n = function
          | [] -> best
          | _ when n >= verify_top -> best
          | (t, _) :: rest ->
              let c = try_cost h cache ~terminals:(t :: members) in
              let best =
                match best with
                | Some (_, bc) when bc <= c -> best
                | _ when c < base -. improvement_eps -> Some (t, c)
                | _ -> best
              in
              verify best (n + 1) rest
        in
        match verify None 0 ranked with
        | None -> s
        | Some (t, c) ->
            Hashtbl.replace in_s t ();
            iterate (t :: s) c
      end
    in
    let base = try_cost h cache ~terminals in
    if base = infinity then Routing_err.fail ("I" ^ h.name);
    iterate [] base
  end

let steiner_nodes ?batched ?candidates h cache ~terminals =
  grow ?batched ?candidates h cache ~terminals

let solve ?batched ?candidates h cache ~terminals =
  let s = grow ?batched ?candidates h cache ~terminals in
  h.solve cache ~terminals:(s @ terminals)

let ikmb ?candidates cache ~terminals = solve ?candidates kmb cache ~terminals

let izel ?candidates cache ~terminals = solve ?candidates (zel ()) cache ~terminals
