module G = Fr_graph

let solve ~c cache ~net =
  if c < 0. || c > 1. then invalid_arg "Ahhk.solve: c outside [0,1]";
  let g = G.Dist_cache.graph cache in
  let n = G.Gstate.num_nodes g in
  let source = net.Net.source in
  (* Prim/Dijkstra hybrid: label ℓ(v) = tree pathlength once attached;
     priority of attaching v through (u,v) is c·ℓ(u) + w. *)
  let in_tree = Array.make n false in
  let path_len = Array.make n infinity in
  let best_key = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let heap = G.Heap.create ~capacity:(2 * n) () in
  path_len.(source) <- 0.;
  best_key.(source) <- 0.;
  G.Heap.push heap 0. source;
  let rec loop () =
    match G.Heap.pop_min heap with
    | None -> ()
    | Some (_, u) ->
        if not in_tree.(u) then begin
          in_tree.(u) <- true;
          (if parent_edge.(u) >= 0 then
             let p = G.Gstate.other_end g parent_edge.(u) u in
             path_len.(u) <- path_len.(p) +. G.Gstate.weight g parent_edge.(u));
          G.Gstate.iter_adj g u (fun e v w ->
              if not in_tree.(v) then begin
                let key = (c *. path_len.(u)) +. w in
                if key < best_key.(v) then begin
                  best_key.(v) <- key;
                  parent_edge.(v) <- e;
                  G.Heap.push heap key v
                end
              end)
        end;
        loop ()
  in
  loop ();
  List.iter
    (fun s -> if not in_tree.(s) then Routing_err.fail "AHHK")
    net.Net.sinks;
  let edges = ref [] in
  (* Keep only parent edges on paths to terminals: prune afterwards. *)
  Array.iteri (fun v e -> if e >= 0 && in_tree.(v) then edges := e :: !edges) parent_edge;
  let tree = G.Tree.of_edges !edges in
  G.Tree.prune g tree ~keep:(Net.terminals net)

let max_radius_ratio cache ~net ~tree =
  let g = G.Dist_cache.graph cache in
  let r = G.Dist_cache.result cache ~src:net.Net.source in
  let lengths = G.Tree.path_table g tree ~src:net.Net.source in
  List.fold_left
    (fun acc s ->
      let opt = G.Dijkstra.dist r s in
      match Hashtbl.find_opt lengths s with
      | Some d when opt > 0. -> Float.max acc (d /. opt)
      | _ -> acc)
    1. net.Net.sinks
