(** The AHHK Prim–Dijkstra tradeoff tree (paper reference [9]:
    Alpert–Hu–Huang–Kahng–Karger).

    Grows a tree from the source like Prim, but scores a frontier edge
    (u, v) by [c·ℓ(u) + w(u,v)] where ℓ(u) is the pathlength from the
    source to [u] inside the growing tree.  [c = 0] is Prim's MST (minimum
    wirelength, unbounded pathlength); [c = 1] is Dijkstra's SPT.  The
    paper (§2) cites this method as achieving wirelength–radius tradeoffs
    but — at the pathlength-optimal end — only reproducing Dijkstra's tree,
    which is exactly what PFA/IDOM improve on; the ablation example
    regenerates that comparison. *)

val solve : c:float -> Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t
(** [solve ~c cache ~net] spans the net's terminals, pruning non-terminal
    leaves.  Requires [0. <= c <= 1.].
    @raise Routing_err.Unroutable when some sink is unreachable. *)

val max_radius_ratio : Fr_graph.Dist_cache.t -> net:Net.t -> tree:Fr_graph.Tree.t -> float
(** Max over sinks of (tree pathlength / graph distance) — the radius
    dilation a tradeoff point accepts (1.0 = shortest-paths tree). *)
