(** The Iterated Graph Minimal Steiner Tree template (paper §3, Fig 5).

    Given any GMST heuristic [H], repeatedly find the Steiner candidate [t]
    maximizing the savings ΔH(G, N, S ∪ {t}) = cost(H(G,N∪S)) −
    cost(H(G,N∪S∪{t})) and grow S while some Δ is positive; the result is
    H(G, N∪S).  The performance bound of the composite construction is never
    worse than H's, and empirically much better (Table 1).

    This generalizes the Iterated 1-Steiner heuristic of Kahng–Robins
    (references [21,24,25]) from rectilinear MSTs to arbitrary graph Steiner
    heuristics. *)

type heuristic = {
  name : string;
  solve : Fr_graph.Dist_cache.t -> terminals:int list -> Fr_graph.Tree.t;
}

val kmb : heuristic

val zel : unit -> heuristic
(** Fresh ZEL instance carrying its own triple memo (safe to share across
    calls on the same graph; invalidated by graph version). *)

val solve :
  ?batched:bool ->
  ?candidates:int list ->
  heuristic ->
  Fr_graph.Dist_cache.t ->
  terminals:int list ->
  Fr_graph.Tree.t
(** [candidates] defaults to every enabled non-terminal node of the graph
    (the paper's V − N); the router passes a bounding-box subset on large
    routing graphs.  Candidates that cannot improve or are unreachable are
    simply never selected.

    [batched] (default false) accepts Steiner nodes in rounds rather than
    one at a time — the paper's remark that candidates "may be added in
    batches", which typically converges in ≤ 3 rounds.  Every accepted node
    is still verified to strictly reduce cost(H), so the performance bound
    is unaffected.
    @raise Routing_err.Unroutable if even [H] alone cannot span the net. *)

val steiner_nodes :
  ?batched:bool ->
  ?candidates:int list ->
  heuristic ->
  Fr_graph.Dist_cache.t ->
  terminals:int list ->
  int list
(** The accepted Steiner-node set S (execution-trace hook for Fig 6). *)

val ikmb :
  ?candidates:int list -> Fr_graph.Dist_cache.t -> terminals:int list -> Fr_graph.Tree.t
(** IGMST instantiated with {!Kmb} — the paper's IKMB. *)

val izel :
  ?candidates:int list -> Fr_graph.Dist_cache.t -> terminals:int list -> Fr_graph.Tree.t
(** IGMST instantiated with {!Zel} — the paper's IZEL. *)
