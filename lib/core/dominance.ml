module G = Fr_graph

let tol = 1e-9

let dominates_via ~source_dist ~p_dist ~p ~s =
  let dp = source_dist p and ds = source_dist s and dsp = p_dist s in
  dp < infinity && ds < infinity && dsp < infinity
  && Float.abs (dp -. (ds +. dsp)) <= tol *. (1. +. Float.abs dp) +. tol

let dominates cache ~source ~p ~s =
  let rsrc = G.Dist_cache.result_for cache ~src:source ~targets:[ p; s ] in
  let rp = G.Dist_cache.result_for cache ~src:p ~targets:[ s ] in
  dominates_via ~source_dist:(G.Dijkstra.dist rsrc) ~p_dist:(G.Dijkstra.dist rp) ~p ~s

let max_dom ?(allowed = fun _ -> true) ?candidates cache ~source ~p ~q =
  let g = G.Dist_cache.graph cache in
  (* With an explicit candidate list the scan (and therefore the Dijkstra
     settling) is bounded to those nodes; otherwise every node is examined
     and the per-source results must be complete. *)
  let scan, rsrc, rp, rq =
    match candidates with
    | None ->
        let rsrc = G.Dist_cache.result cache ~src:source in
        let rp = G.Dist_cache.result cache ~src:p in
        let rq = G.Dist_cache.result cache ~src:q in
        (None, rsrc, rp, rq)
    | Some cs ->
        let scan = List.sort_uniq Int.compare (source :: cs) in
        let targets = p :: q :: scan in
        let rsrc = G.Dist_cache.result_for cache ~src:source ~targets in
        let rp = G.Dist_cache.result_for cache ~src:p ~targets in
        let rq = G.Dist_cache.result_for cache ~src:q ~targets in
        (Some scan, rsrc, rp, rq)
  in
  let sd = G.Dijkstra.dist rsrc in
  let pd = G.Dijkstra.dist rp in
  let qd = G.Dijkstra.dist rq in
  let sdp = sd p and sdq = sd q in
  if sdp = infinity || sdq = infinity then None
  else begin
    let best = ref (-1) and best_d = ref neg_infinity in
    let consider m =
      if
        G.Gstate.node_enabled g m && allowed m
        && dominates_via ~source_dist:sd ~p_dist:pd ~p ~s:m
        && dominates_via ~source_dist:sd ~p_dist:qd ~p:q ~s:m
        && sd m > !best_d
      then begin
        best := m;
        best_d := sd m
      end
    in
    (match scan with
    | None ->
        for m = 0 to G.Gstate.num_nodes g - 1 do
          consider m
        done
    | Some ms -> List.iter consider ms);
    if !best < 0 then None else Some (!best, !best_d)
  end

let nearest_dominated cache ~source ~members ~p =
  if p = source then None
  else begin
    let rsrc = G.Dist_cache.result_for cache ~src:source ~targets:(p :: members) in
    let sd = G.Dijkstra.dist rsrc in
    (* Distances between p and candidate parents are served from whichever
       side is memoized, so scanning a *candidate* p (IDOM's Δ-loop) costs
       no Dijkstra from p. *)
    let pd s = G.Dist_cache.dist_sym cache s p in
    let sdp = sd p in
    if sdp = infinity then None
    else begin
      let better (s, d) = function
        | None -> true
        | Some (s', d') ->
            d < d' -. tol || (d <= d' +. tol && (sd s < sd s' -. tol || (sd s <= sd s' +. tol && s < s')))
      in
      List.fold_left
        (fun acc s ->
          if s <> p && dominates_via ~source_dist:sd ~p_dist:pd ~p ~s then begin
            let d = pd s in
            if better (s, d) acc then Some (s, d) else acc
          end
          else acc)
        None members
    end
  end

let fold_tree cache ~source ~members ~keep =
  let g = G.Dist_cache.graph cache in
  let members = List.sort_uniq Int.compare members in
  let rsrc = G.Dist_cache.result_for cache ~src:source ~targets:members in
  List.iter
    (fun m -> if not (G.Dijkstra.reachable rsrc m) then Routing_err.fail "fold_tree")
    members;
  (* Union of the shortest paths from each member to its chosen parent. *)
  let union = Hashtbl.create 256 in
  List.iter
    (fun p ->
      if p <> source then begin
        match nearest_dominated cache ~source ~members ~p with
        | None -> Routing_err.fail "fold_tree"
        | Some (s, _) ->
            List.iter (fun e -> Hashtbl.replace union e ()) (G.Dist_cache.path_edges_sym cache p s)
      end)
    members;
  (* Shortest-paths tree within the union subgraph, then prune. *)
  let spt = G.Dijkstra.run ~edge_ok:(Hashtbl.mem union) g ~src:source in
  List.iter
    (fun m -> if not (G.Dijkstra.reachable spt m) then Routing_err.fail "fold_tree")
    members;
  let tree = G.Tree.of_edges (G.Dijkstra.spt_edges spt) in
  G.Tree.prune g tree ~keep
