(** Shared failure signal for all routing constructions. *)

exception Unroutable of string
(** Raised when a net's terminals cannot all be connected in the (current)
    graph — e.g. after the router has removed resources consumed by
    previously routed nets.  The string names the algorithm that failed. *)

val fail : string -> 'a
