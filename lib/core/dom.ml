module G = Fr_graph

let solve cache ~net =
  let members = Net.terminals net in
  Dominance.fold_tree cache ~source:net.Net.source ~members ~keep:members

let distance_graph_cost cache ~source ~sinks =
  let members = source :: sinks in
  List.fold_left
    (fun acc p ->
      if p = source then acc
      else
        match Dominance.nearest_dominated cache ~source ~members ~p with
        | Some (_, d) -> acc +. d
        | None -> infinity)
    0. sinks
