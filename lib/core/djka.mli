(** DJKA (paper §5): Dijkstra's shortest-paths tree adapted to the GSA
    problem — compute the SPT rooted at the net source, then delete edges
    not on any source-to-sink path.  Pathlengths are optimal by
    construction; wirelength is typically poor (Table 1), which is what the
    paper's arborescence heuristics improve on. *)

val solve : Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t
(** @raise Routing_err.Unroutable when some sink is unreachable. *)
