module G = Fr_graph

type memo = {
  table : (int * int * int, int * float) Hashtbl.t;
  mutable stamp : int;
}

let create_memo () = { table = Hashtbl.create 256; stamp = -1 }

let refresh_memo memo version =
  if memo.stamp <> version then begin
    Hashtbl.reset memo.table;
    memo.stamp <- version
  end

let sorted_triple a b c =
  let l = List.sort Int.compare [ a; b; c ] in
  match l with [ x; y; z ] -> (x, y, z) | _ -> assert false

(* Best Steiner point for a triple: the v minimizing the sum of
   shortest-path distances to the three terminals (Fig 18's dist_z; the
   figure's "maximizes" is a typo for "minimizes" — the win formula only
   makes sense with the minimum).  With a candidate list the scan — and the
   Dijkstra settling behind it — is bounded to those nodes; otherwise all
   nodes are examined from complete per-terminal results. *)
let steiner_point_of_triple cache ~steiner_ok ~candidates a b c =
  let g = G.Dist_cache.graph cache in
  let scan, ra, rb, rc =
    match candidates with
    | None ->
        ( None,
          G.Dist_cache.result cache ~src:a,
          G.Dist_cache.result cache ~src:b,
          G.Dist_cache.result cache ~src:c )
    | Some cs ->
        let scan = List.sort_uniq Int.compare cs in
        ( Some scan,
          G.Dist_cache.result_for cache ~src:a ~targets:scan,
          G.Dist_cache.result_for cache ~src:b ~targets:scan,
          G.Dist_cache.result_for cache ~src:c ~targets:scan )
  in
  let best_v = ref (-1) and best_d = ref infinity in
  let consider v =
    if G.Gstate.node_enabled g v && steiner_ok v then begin
      let d = G.Dijkstra.dist ra v +. G.Dijkstra.dist rb v +. G.Dijkstra.dist rc v in
      if d < !best_d then begin
        best_d := d;
        best_v := v
      end
    end
  in
  (match scan with
  | None ->
      for v = 0 to G.Gstate.num_nodes g - 1 do
        consider v
      done
  | Some vs -> List.iter consider vs);
  (!best_v, !best_d)

let triple_info ?memo cache ~steiner_ok ~candidates a b c =
  let key = sorted_triple a b c in
  match memo with
  | None -> steiner_point_of_triple cache ~steiner_ok ~candidates a b c
  | Some m -> (
      refresh_memo m (G.Gstate.version (G.Dist_cache.graph cache));
      match Hashtbl.find_opt m.table key with
      | Some info -> info
      | None ->
          let info = steiner_point_of_triple cache ~steiner_ok ~candidates a b c in
          Hashtbl.add m.table key info;
          info)

let solve ?memo ?(steiner_ok = fun _ -> true) ?steiner_candidates cache ~terminals =
  let ts = Array.of_list (List.sort_uniq Int.compare terminals) in
  let k = Array.length ts in
  if k <= 2 then Kmb.solve cache ~terminals
  else begin
    (* Distance-graph weight matrix, mutated by contractions. *)
    let w = Array.make_matrix k k 0. in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let d = G.Dist_cache.dist_sym cache ts.(i) ts.(j) in
        w.(i).(j) <- d;
        w.(j).(i) <- d
      done
    done;
    let mst_cost m =
      snd (G.Mst.prim_dense ~n:k ~weight:(fun i j -> m.(i).(j)))
    in
    let base_mst_cost = mst_cost w in
    if base_mst_cost = infinity then Routing_err.fail "ZEL";
    (* Candidate triples as index triples with their Steiner point. *)
    let triples = ref [] in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        for l = j + 1 to k - 1 do
          let v, d =
            triple_info ?memo cache ~steiner_ok ~candidates:steiner_candidates ts.(i) ts.(j)
              ts.(l)
          in
          if v >= 0 && d < infinity then triples := (i, j, l, v, d) :: !triples
        done
      done
    done;
    let contracted_cost (i, j, l) =
      (* MST after zeroing two of the triple's three edges; scratch-restore
         the matrix instead of copying it. *)
      let sij = w.(i).(j) and sjl = w.(j).(l) in
      w.(i).(j) <- 0.;
      w.(j).(i) <- 0.;
      w.(j).(l) <- 0.;
      w.(l).(j) <- 0.;
      let c = mst_cost w in
      w.(i).(j) <- sij;
      w.(j).(i) <- sij;
      w.(j).(l) <- sjl;
      w.(l).(j) <- sjl;
      c
    in
    let steiners = ref [] in
    let continue_loop = ref true in
    while !continue_loop do
      let base = mst_cost w in
      let best = ref None and best_win = ref 0. in
      List.iter
        (fun (i, j, l, v, d) ->
          let win = base -. contracted_cost (i, j, l) -. d in
          if win > !best_win +. 1e-12 then begin
            best_win := win;
            best := Some (i, j, l, v)
          end)
        !triples;
      match !best with
      | None -> continue_loop := false
      | Some (i, j, l, v) ->
          w.(i).(j) <- 0.;
          w.(j).(i) <- 0.;
          w.(j).(l) <- 0.;
          w.(l).(j) <- 0.;
          steiners := v :: !steiners
    done;
    Kmb.solve cache ~terminals:(Array.to_list ts @ !steiners)
  end

let cost ?memo ?steiner_ok ?steiner_candidates cache ~terminals =
  G.Tree.cost (G.Dist_cache.graph cache) (solve ?memo ?steiner_ok ?steiner_candidates cache ~terminals)
