(** The DOM spanning-arborescence heuristic (paper §4.2).

    A restriction of PFA where merge points must come from the net itself:
    each sink is connected by a shortest path to the closest sink/source it
    dominates, and the shortest-paths tree of the union is returned.  DOM is
    the inner construction iterated by {!Idom}. *)

val solve : Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t
(** @raise Routing_err.Unroutable when some sink is unreachable. *)

val distance_graph_cost : Fr_graph.Dist_cache.t -> source:int -> sinks:int list -> float
(** The paper's distance-graph formulation of DOM's cost: the sum, over all
    sinks, of the distance to the chosen (nearest dominated) parent.  This
    is the O(|N|²) objective {!Idom} evaluates in its Δ-scan; [infinity]
    when some sink is unreachable. *)
