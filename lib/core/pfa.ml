module G = Fr_graph

(* One folding pass: returns the accumulated member set M (terminals plus
   MaxDom merge points). *)
let fold_members ?steiner_ok ?steiner_candidates cache ~net =
  let source = net.Net.source in
  let rsrc = G.Dist_cache.result_for cache ~src:source ~targets:net.Net.sinks in
  List.iter
    (fun s -> if not (G.Dijkstra.reachable rsrc s) then Routing_err.fail "PFA")
    net.Net.sinks;
  let allowed =
    match steiner_ok with
    | None -> fun _ -> true
    | Some ok -> fun m -> m = source || ok m
  in
  let active = ref (List.sort_uniq Int.compare (Net.terminals net)) in
  (* [members] keeps the paper's accumulation order (merge points prepended
     to the sorted terminals); [member_set] makes the dedup probe O(1). *)
  let member_set = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace member_set m ()) !active;
  let members = ref !active in
  while List.length !active > 1 do
    (* Find the pair {p,q} whose MaxDom is farthest from the source. *)
    let best = ref None in
    let consider p q =
      match Dominance.max_dom ~allowed ?candidates:steiner_candidates cache ~source ~p ~q with
      | None -> ()
      | Some (m, d) -> (
          match !best with
          | Some (_, _, _, d') when d' >= d -> ()
          | _ -> best := Some (p, q, m, d))
    in
    let rec pairs = function
      | [] -> ()
      | p :: rest ->
          List.iter (fun q -> consider p q) rest;
          pairs rest
    in
    pairs !active;
    match !best with
    | None -> Routing_err.fail "PFA"
    | Some (p, q, m, _) ->
        active := List.sort_uniq Int.compare (m :: List.filter (fun x -> x <> p && x <> q) !active);
        if not (Hashtbl.mem member_set m) then begin
          Hashtbl.replace member_set m ();
          members := m :: !members
        end
  done;
  (* With strictly positive weights the last active node is the source. *)
  !members

let steiner_nodes ?steiner_ok ?steiner_candidates cache ~net =
  let term_set = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace term_set t ()) (Net.terminals net);
  List.filter
    (fun m -> not (Hashtbl.mem term_set m))
    (fold_members ?steiner_ok ?steiner_candidates cache ~net)

let solve ?steiner_ok ?steiner_candidates cache ~net =
  let members = fold_members ?steiner_ok ?steiner_candidates cache ~net in
  Dominance.fold_tree cache ~source:net.Net.source ~members ~keep:(Net.terminals net)
