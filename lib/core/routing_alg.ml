type kind =
  | Steiner
  | Arborescence

type t = {
  name : string;
  kind : kind;
  solve : ?candidates:int list -> Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t;
}

let kmb =
  {
    name = "KMB";
    kind = Steiner;
    solve = (fun ?candidates:_ cache ~net -> Kmb.solve cache ~terminals:(Net.terminals net));
  }

let zel =
  {
    name = "ZEL";
    kind = Steiner;
    solve =
      (fun ?candidates cache ~net ->
        Zel.solve ?steiner_candidates:candidates cache ~terminals:(Net.terminals net));
  }

let ikmb =
  {
    name = "IKMB";
    kind = Steiner;
    solve =
      (fun ?candidates cache ~net ->
        Igmst.solve ?candidates Igmst.kmb cache ~terminals:(Net.terminals net));
  }

let izel =
  {
    name = "IZEL";
    kind = Steiner;
    solve =
      (fun ?candidates cache ~net ->
        Igmst.solve ?candidates (Igmst.zel ()) cache ~terminals:(Net.terminals net));
  }

let djka =
  {
    name = "DJKA";
    kind = Arborescence;
    solve = (fun ?candidates:_ cache ~net -> Djka.solve cache ~net);
  }

let dom =
  {
    name = "DOM";
    kind = Arborescence;
    solve = (fun ?candidates:_ cache ~net -> Dom.solve cache ~net);
  }

let pfa =
  {
    name = "PFA";
    kind = Arborescence;
    solve =
      (fun ?candidates cache ~net -> Pfa.solve ?steiner_candidates:candidates cache ~net);
  }

let idom =
  {
    name = "IDOM";
    kind = Arborescence;
    solve = (fun ?candidates cache ~net -> Idom.solve ?candidates cache ~net);
  }

let all = [ kmb; zel; ikmb; izel; djka; dom; pfa; idom ]

let steiner_algs = List.filter (fun a -> a.kind = Steiner) all

let arborescence_algs = List.filter (fun a -> a.kind = Arborescence) all

let by_name name =
  let up = String.uppercase_ascii name in
  List.find_opt (fun a -> a.name = up) all
