module G = Fr_graph

let solve cache ~terminals =
  let g = G.Dist_cache.graph cache in
  let ts = Array.of_list (List.sort_uniq Int.compare terminals) in
  let k = Array.length ts in
  if k <= 1 then G.Tree.empty
  else begin
    (* 1-2. MST of the distance graph over terminals. *)
    let dist i j = G.Dist_cache.dist_sym cache ts.(i) ts.(j) in
    let mst_edges, mst_cost = G.Mst.prim_dense ~n:k ~weight:dist in
    if mst_cost = infinity then Routing_err.fail "KMB";
    (* 3. Expand each distance-graph edge into a shortest path of G. *)
    let expanded =
      List.concat_map (fun (i, j) -> G.Dist_cache.path_edges_sym cache ts.(i) ts.(j)) mst_edges
      |> List.sort_uniq Int.compare
    in
    (* 4. MST of the expanded subgraph. *)
    let sub_edges =
      List.map
        (fun e ->
          let u, v = G.Gstate.endpoints g e in
          (u, v, G.Gstate.weight g e, e))
        expanded
    in
    let chosen, sub_cost = G.Mst.kruskal ~nodes:(Array.to_list ts) ~edges:sub_edges in
    if sub_cost = infinity then Routing_err.fail "KMB";
    (* 5. Prune non-terminal pendant leaves. *)
    let tree = G.Tree.of_edges (List.map (fun (_, _, _, e) -> e) chosen) in
    G.Tree.prune g tree ~keep:(Array.to_list ts)
  end

let cost cache ~terminals = G.Tree.cost (G.Dist_cache.graph cache) (solve cache ~terminals)
