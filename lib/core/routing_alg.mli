(** Uniform interface over the paper's eight routing constructions
    (Table 1's row set), used by the experiments and the FPGA router.

    [candidates], when given, restricts Steiner-candidate / merge-point
    scans (the router's bounding-box pruning); algorithms that introduce no
    Steiner nodes ignore it. *)

type kind =
  | Steiner  (** minimizes wirelength only (GMST) *)
  | Arborescence  (** optimal pathlengths, wirelength secondary (GSA) *)

type t = {
  name : string;
  kind : kind;
  solve : ?candidates:int list -> Fr_graph.Dist_cache.t -> net:Net.t -> Fr_graph.Tree.t;
}

val kmb : t
val zel : t
val ikmb : t
val izel : t
val djka : t
val dom : t
val pfa : t
val idom : t

val all : t list
(** In the paper's Table 1 order: KMB, ZEL, IKMB, IZEL, DJKA, DOM, PFA,
    IDOM. *)

val steiner_algs : t list
val arborescence_algs : t list

val by_name : string -> t option
(** Case-insensitive lookup. *)
