module G = Fr_graph

type instance = {
  graph : G.Gstate.t;
  net : Net.t;
  reference_cost : float;
  description : string;
}

(* Exact binary fractions keep all path sums exactly representable, so the
   dominance equality tests are never perturbed by rounding. *)
let eps_small = 0.0625
let trunk = 8.

let pfa_graph ~k =
  if k < 2 then invalid_arg "Worst_case.pfa_graph: k >= 2 required";
  let e = eps_small in
  let n0 = 0 and x = 1 in
  let sink i = 2 + i in
  let decoy i = 2 + k + i in
  let g = G.Wgraph.create (2 + k + (k - 1)) in
  let ( += ) (u, v) w = ignore (G.Wgraph.add_edge g u v w) in
  (n0, x) += (trunk -. (2. *. e));
  for i = 0 to k - 1 do
    (x, sink i) += (3. *. e)
  done;
  for i = 0 to k - 2 do
    (n0, decoy i) += (trunk -. e);
    (decoy i, sink i) += (2. *. e);
    (decoy i, sink (i + 1)) += (2. *. e)
  done;
  {
    graph = G.Gstate.of_builder g;
    net = Net.make ~source:n0 ~sinks:(List.init k sink);
    reference_cost = trunk -. (2. *. e) +. (3. *. e *. float_of_int k);
    description =
      Printf.sprintf
        "Fig 10 gadget, %d sinks: shared trunk cost %.4f vs pairwise decoy merge points" k
        (trunk -. (2. *. e));
  }

(* Optimal arborescence for the Fig 11 staircase by interval DP: an optimal
   RSA on an antichain merges contiguous runs of points, so opt(i,j) — the
   optimal subtree for points i..j rooted at their meet — satisfies a
   textbook interval recurrence.  Horizontal unit 1, vertical unit 2. *)
let staircase_opt ~n =
  if n < 1 then invalid_arg "Worst_case.staircase_opt: n >= 1 required";
  let npts = n + 1 in
  (* point i = (i, n - i) *)
  let x i = float_of_int i and y i = float_of_int (n - i) in
  let hdist a b = Float.abs (a -. b) in
  let opt = Array.make_matrix npts npts 0. in
  for len = 2 to npts do
    for i = 0 to npts - len do
      let j = i + len - 1 in
      let best = ref infinity in
      for m = i to j - 1 do
        (* meet(i,m) = (x i, y m) drops vertically to (x i, y j);
           meet(m+1,j) = (x (m+1), y j) runs horizontally to (x i, y j). *)
        let c =
          opt.(i).(m) +. opt.(m + 1).(j)
          +. (2. *. hdist (y m) (y j))
          +. hdist (x (m + 1)) (x i)
        in
        if c < !best then best := c
      done;
      opt.(i).(j) <- !best
    done
  done;
  (* meet(0,n) = (0,0) is the source itself. *)
  opt.(0).(npts - 1)

let pfa_grid ~n =
  if n < 2 then invalid_arg "Worst_case.pfa_grid: n >= 2 required";
  let side = n + 1 in
  let g = G.Wgraph.create (side * side) in
  let id cx cy = (cy * side) + cx in
  for cy = 0 to side - 1 do
    for cx = 0 to side - 1 do
      if cx + 1 < side then ignore (G.Wgraph.add_edge g (id cx cy) (id (cx + 1) cy) 1.);
      if cy + 1 < side then ignore (G.Wgraph.add_edge g (id cx cy) (id cx (cy + 1)) 2.)
    done
  done;
  let sinks = List.init (n + 1) (fun i -> id i (n - i)) in
  let source = id 0 0 in
  {
    graph = G.Gstate.of_builder g;
    net = Net.make ~source ~sinks;
    reference_cost = staircase_opt ~n;
    description =
      Printf.sprintf
        "Fig 11 staircase on a %dx%d grid (horizontal spacing 1, vertical 2), %d pins" side side
        (n + 2);
  }

let eps_tiny = 1. /. 1024.

let idom_graph ~levels =
  if levels < 1 || levels > 16 then invalid_arg "Worst_case.idom_graph: 1 <= levels <= 16";
  let t = levels in
  let block_size i = 1 lsl (t - i + 1) in
  (* blocks i = 1..t *)
  let nsinks = (1 lsl (t + 1)) - 2 in
  let n0 = 0 in
  let center i = i in
  (* 1..t *)
  let good1 = t + 1 and good2 = t + 2 in
  let sink_base = t + 3 in
  let g = G.Wgraph.create (sink_base + nsinks) in
  let ( += ) (u, v) w = ignore (G.Wgraph.add_edge g u v w) in
  (n0, good1) += 1.;
  (n0, good2) += 1.;
  let next_sink = ref sink_base in
  for i = 1 to t do
    (n0, center i) += 1.;
    for j = 0 to block_size i - 1 do
      let s = !next_sink in
      incr next_sink;
      (center i, s) += eps_tiny;
      (* alternate block members between the two good boxes *)
      ( (if j mod 2 = 0 then good1 else good2), s ) += eps_tiny
    done
  done;
  assert (!next_sink = sink_base + nsinks);
  {
    graph = G.Gstate.of_builder g;
    net = Net.make ~source:n0 ~sinks:(List.init nsinks (fun i -> sink_base + i));
    reference_cost = 2. +. (float_of_int nsinks *. eps_tiny);
    description =
      Printf.sprintf
        "Fig 14 set-cover gadget, %d levels, %d sinks: 2 good boxes vs %d shrinking decoys" t
        nsinks t;
  }
