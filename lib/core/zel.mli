(** Zelikovsky's 11/6-approximation graph Steiner tree heuristic
    (paper §8.2, Fig 18; reference [39]).

    Greedily contracts terminal triples whose best Steiner point [v_z]
    yields a positive MST "win", then hands the original terminals plus the
    accumulated Steiner points to {!Kmb}. *)

type memo
(** Cache of per-triple Steiner points [(v_z, dist_z)].  The scan for the
    best [v_z] is O(|V|) per triple; inside {!Igmst}'s Δ-loop the same
    triples recur for every candidate, so memoizing them is the paper's
    "factoring out common computations".  Stamped with the graph version —
    stale entries are discarded automatically.  Entries also bake in
    whatever candidate list produced them, so use one memo per candidate
    set. *)

val create_memo : unit -> memo

val solve :
  ?memo:memo ->
  ?steiner_ok:(int -> bool) ->
  ?steiner_candidates:int list ->
  Fr_graph.Dist_cache.t ->
  terminals:int list ->
  Fr_graph.Tree.t
(** [steiner_ok] restricts which graph nodes may serve as triple Steiner
    points (used with bounding-box pruning on large routing graphs).
    [steiner_candidates] bounds the triple scan to the listed nodes — and,
    through targeted Dijkstra queries, the settling done on their behalf;
    scanning candidates [cs] equals scanning all nodes with [steiner_ok] =
    membership in [cs].
    @raise Routing_err.Unroutable when terminals cannot be spanned. *)

val cost :
  ?memo:memo ->
  ?steiner_ok:(int -> bool) ->
  ?steiner_candidates:int list ->
  Fr_graph.Dist_cache.t ->
  terminals:int list ->
  float
