(** Elmore delay evaluation of routing trees.

    The paper's motivation (§1) is signal propagation delay, and its
    constructions "can be easily tuned to the specific parasitics of the
    underlying technology" (citing the technology-sensitive routing of
    [11, 15]).  This module provides the distributed-RC evaluation those
    works use: each tree edge contributes series resistance and
    distributed capacitance proportional to its length (= weight), sinks
    add load capacitance, and the source drives through a driver
    resistance.  Under this model, the delay to a sink is

      R_driver·C(total) + Σ_{e on path} R(e)·(C(e)/2 + C(subtree below e))

    Pathlength-optimal trees (PFA/IDOM) minimize the dominant path-R term,
    which is why the paper routes critical nets with arborescences. *)

type params = {
  unit_resistance : float;  (** Ω per unit wirelength *)
  unit_capacitance : float;  (** F per unit wirelength *)
  sink_load : float;  (** F per sink pin *)
  driver_resistance : float;  (** Ω at the source *)
}

val default_params : params
(** 1 Ω, 1 F, 1 F, 1 Ω per unit — adequate for relative comparisons. *)

val elmore :
  ?params:params ->
  Fr_graph.Gstate.t ->
  tree:Fr_graph.Tree.t ->
  net:Net.t ->
  (int * float) list
(** Delay to every sink of the net.  The tree must span the net.
    @raise Invalid_argument otherwise. *)

val max_delay :
  ?params:params -> Fr_graph.Gstate.t -> tree:Fr_graph.Tree.t -> net:Net.t -> float
(** The critical-sink delay. *)
