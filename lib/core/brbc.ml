module G = Fr_graph

(* Depth-first terminal order around the backbone tree, with the traversal
   length between consecutive visits (each backbone edge is walked twice in
   a DFS circumnavigation). *)
let dfs_tour g tree ~source =
  let adj = Hashtbl.create 64 in
  let add u x =
    let cur = try Hashtbl.find adj u with Not_found -> [] in
    Hashtbl.replace adj u (x :: cur)
  in
  List.iter
    (fun e ->
      let u, v = G.Gstate.endpoints g e in
      let w = G.Gstate.weight g e in
      add u (v, w);
      add v (u, w))
    tree.G.Tree.edges;
  let visited = Hashtbl.create 64 in
  let tour = ref [] in
  (* (node, accumulated walk length at visit) *)
  let len = ref 0. in
  let rec dfs u =
    Hashtbl.replace visited u ();
    tour := (u, !len) :: !tour;
    List.iter
      (fun (v, w) ->
        if not (Hashtbl.mem visited v) then begin
          len := !len +. w;
          dfs v;
          len := !len +. w
        end)
      (try Hashtbl.find adj u with Not_found -> [])
  in
  dfs source;
  List.rev !tour

let solve ~epsilon cache ~net =
  if epsilon < 0. then invalid_arg "Brbc.solve: epsilon < 0";
  let g = G.Dist_cache.graph cache in
  let source = net.Net.source in
  let terminals = Net.terminals net in
  let rsrc = G.Dist_cache.result cache ~src:source in
  List.iter
    (fun s -> if not (G.Dijkstra.reachable rsrc s) then Routing_err.fail "BRBC")
    net.Net.sinks;
  (* Backbone: the KMB Steiner tree (low cost). *)
  let backbone = Kmb.solve cache ~terminals in
  if backbone.G.Tree.edges = [] then backbone
  else begin
    let tour = dfs_tour g backbone ~source in
    let union = Hashtbl.create 256 in
    List.iter (fun e -> Hashtbl.replace union e ()) backbone.G.Tree.edges;
    let is_sink = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace is_sink s ()) net.Net.sinks;
    (* Walk the tour keeping the last merge point [u_last] (initially the
       source, whose distance is optimal).  A sink reachable through
       [u_last] plus the walked slack within (1+eps) of its shortest
       distance needs no work; otherwise its shortest path is merged in and
       it becomes the new checkpoint.  This enforces the per-sink radius
       bound by construction. *)
    let last_merge_len = ref 0. and last_merge_dist = ref 0. in
    List.iter
      (fun (v, at_len) ->
        if Hashtbl.mem is_sink v then begin
          let slack = at_len -. !last_merge_len in
          let dv = G.Dijkstra.dist rsrc v in
          if !last_merge_dist +. slack > ((1. +. epsilon) *. dv) +. 1e-12 then begin
            List.iter (fun e -> Hashtbl.replace union e ()) (G.Dijkstra.path_edges rsrc v);
            last_merge_len := at_len;
            last_merge_dist := dv
          end
        end)
      tour;
    (* SPT of the union, pruned to the net. *)
    let spt = G.Dijkstra.run ~edge_ok:(Hashtbl.mem union) g ~src:source in
    List.iter
      (fun s -> if not (G.Dijkstra.reachable spt s) then Routing_err.fail "BRBC")
      net.Net.sinks;
    G.Tree.prune g (G.Tree.of_edges (G.Dijkstra.spt_edges spt)) ~keep:terminals
  end

let radius_bound_holds ~epsilon cache ~net ~tree =
  let g = G.Dist_cache.graph cache in
  let rsrc = G.Dist_cache.result cache ~src:net.Net.source in
  let lengths = G.Tree.path_table g tree ~src:net.Net.source in
  List.for_all
    (fun s ->
      match Hashtbl.find_opt lengths s with
      | Some d -> d <= ((1. +. epsilon) *. G.Dijkstra.dist rsrc s) +. 1e-6
      | None -> false)
    net.Net.sinks
