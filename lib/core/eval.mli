(** Shared evaluation of routing solutions — the metrics of the paper's
    Table 1 (total wirelength, maximum source–sink pathlength vs optimal)
    and the validity invariants used by the test suite. *)

type metrics = {
  cost : float;  (** total wirelength, the paper's cost(T) *)
  max_path : float;  (** maximum source–sink pathlength inside the tree *)
  opt_max_path : float;  (** max over sinks of minpath_G(n0, sink) *)
  arborescence : bool;
      (** [minpath_T(n0,s) = minpath_G(n0,s)] for every sink — the defining
          GSA property *)
}

val metrics : Fr_graph.Dist_cache.t -> net:Net.t -> tree:Fr_graph.Tree.t -> metrics
(** @raise Invalid_argument if the tree does not span the net. *)

val is_arborescence : Fr_graph.Dist_cache.t -> net:Net.t -> tree:Fr_graph.Tree.t -> bool

val check : Fr_graph.Dist_cache.t -> net:Net.t -> tree:Fr_graph.Tree.t -> (unit, string) result
(** Structural validation: spans the net, is a tree, uses only enabled
    resources.  Returns a diagnostic message on failure. *)
