(** Random connected weighted graphs.

    Used for the CPU-time benchmarks (the paper reports times on random
    graphs with |V|=50, |E|=1000, |N|=5) and for the qcheck property
    tests. *)

val connected :
  Fr_util.Rng.t -> n:int -> m:int -> wmin:float -> wmax:float -> Gstate.t
(** [connected rng ~n ~m ~wmin ~wmax] builds a connected graph with [n]
    nodes and approximately [m] edges (at least [n-1]): a random spanning
    tree first, then uniformly random extra edges (parallel edges and
    duplicates avoided on a best-effort basis).  Weights uniform in
    [\[wmin, wmax\]]. *)

val random_net : Fr_util.Rng.t -> Gstate.t -> k:int -> int list
(** [k] distinct nodes of the graph; the first is conventionally the net's
    source. *)
