module Vec = Fr_util.Vec

type edge = int

type t = {
  n : int;
  eu : int Vec.t;
  ev : int Vec.t;
  ew : float Vec.t;
  e_on : bool Vec.t;
  n_on : bool array;
  adj : edge Vec.t array; (* incident edge ids per node *)
  mutable ver : int;
}

let create ?edge_capacity:_ n =
  {
    n;
    eu = Vec.create ();
    ev = Vec.create ();
    ew = Vec.create ();
    e_on = Vec.create ();
    n_on = Array.make n true;
    adj = Array.init n (fun _ -> Vec.create ());
    ver = 0;
  }

let num_nodes g = g.n

let num_edges g = Vec.length g.eu

let bump g = g.ver <- g.ver + 1

let version g = g.ver

let add_edge g u v w =
  if u = v then invalid_arg "Wgraph.add_edge: self-loop";
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Wgraph.add_edge: node out of range";
  if w < 0. then invalid_arg "Wgraph.add_edge: negative weight";
  let e = Vec.length g.eu in
  Vec.push g.eu u;
  Vec.push g.ev v;
  Vec.push g.ew w;
  Vec.push g.e_on true;
  Vec.push g.adj.(u) e;
  Vec.push g.adj.(v) e;
  bump g;
  e

let weight g e = Vec.get g.ew e

let set_weight g e w =
  if w < 0. then invalid_arg "Wgraph.set_weight: negative weight";
  Vec.set g.ew e w;
  bump g

let add_weight g e dw = set_weight g e (weight g e +. dw)

let endpoints g e = (Vec.get g.eu e, Vec.get g.ev e)

let other_end g e u =
  let a, b = endpoints g e in
  if u = a then b
  else if u = b then a
  else invalid_arg "Wgraph.other_end: node not an endpoint"

let edge_enabled g e = Vec.get g.e_on e

let disable_edge g e =
  Vec.set g.e_on e false;
  bump g

let enable_edge g e =
  Vec.set g.e_on e true;
  bump g

let node_enabled g u = g.n_on.(u)

let disable_node g u =
  g.n_on.(u) <- false;
  bump g

let enable_node g u =
  g.n_on.(u) <- true;
  bump g

let iter_adj g u f =
  if g.n_on.(u) then
    Vec.iter
      (fun e ->
        if Vec.get g.e_on e then begin
          let v = other_end g e u in
          if g.n_on.(v) then f e v (Vec.get g.ew e)
        end)
      g.adj.(u)

let fold_adj g u f acc =
  let acc = ref acc in
  iter_adj g u (fun e v w -> acc := f !acc e v w);
  !acc

let degree g u = fold_adj g u (fun d _ _ _ -> d + 1) 0

let find_edge g u v =
  fold_adj g u
    (fun best e v' w ->
      if v' <> v then best
      else
        match best with
        | Some (_, bw) when bw <= w -> best
        | _ -> Some (e, w))
    None
  |> Option.map fst

let iter_edges g f =
  for e = 0 to num_edges g - 1 do
    if Vec.get g.e_on e then begin
      let u, v = endpoints g e in
      if g.n_on.(u) && g.n_on.(v) then f e u v (Vec.get g.ew e)
    end
  done

let mean_edge_weight g =
  let total = ref 0. and count = ref 0 in
  iter_edges g (fun _ _ _ w ->
      total := !total +. w;
      incr count);
  if !count = 0 then 0. else !total /. float_of_int !count

let copy g =
  let g' = create g.n in
  for e = 0 to num_edges g - 1 do
    let u, v = endpoints g e in
    let (_ : edge) = add_edge g' u v (weight g e) in
    if not (edge_enabled g e) then disable_edge g' e
  done;
  Array.iteri (fun u on -> if not on then disable_node g' u) g.n_on;
  g'.ver <- 0;
  g'
