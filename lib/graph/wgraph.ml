module Vec = Fr_util.Vec

type edge = int

type t = {
  n : int;
  eu : int Vec.t;
  ev : int Vec.t;
  ew : float Vec.t;
}

let create ?edge_capacity n =
  {
    n;
    eu = Vec.create ?capacity:edge_capacity ();
    ev = Vec.create ?capacity:edge_capacity ();
    ew = Vec.create ?capacity:edge_capacity ();
  }

let num_nodes g = g.n

let num_edges g = Vec.length g.eu

let add_edge g u v w =
  if u = v then invalid_arg "Wgraph.add_edge: self-loop";
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Wgraph.add_edge: node out of range";
  if w < 0. then invalid_arg "Wgraph.add_edge: negative weight";
  let e = Vec.length g.eu in
  Vec.push g.eu u;
  Vec.push g.ev v;
  Vec.push g.ew w;
  e

let freeze g =
  Topology.make ~n:g.n ~eu:(Vec.to_array g.eu) ~ev:(Vec.to_array g.ev)
    ~base:(Vec.to_array g.ew)
