(** Pluggable min-priority queue behind Dijkstra's frontier.

    Two implementations, one contract: entries pop in strict lexicographic
    [(prio, tie, seq)] order, where [seq] is the per-queue push counter
    (FIFO on full ties).  The order is total, so the pop sequence is a
    pure function of the pushed multiset and swapping implementations can
    never change a search result — only its speed.

    - {!Binary} is the classic binary heap ({!Heap}).
    - {!Bucket} is a calendar queue calibrated to Dijkstra's keys:
      priorities quantized to [delta]-wide buckets in a circular ring that
      tracks the in-flight priority span (grown and re-indexed when the
      span outruns it), with an exact min-scan inside the first non-empty
      bucket.  On monotone workloads (Dijkstra under a consistent
      heuristic never pushes below the last pop) the span stays a few
      buckets wide and every operation is O(bucket occupancy).
      Correctness is independent of [delta] — the bucket index is monotone
      in the priority and equal priorities share a bucket — but bucket
      priorities must be finite and non-negative. *)

type impl =
  | Binary
  | Bucket

val impl_name : impl -> string
(** ["binary"] / ["bucket"] — the CLI spelling. *)

val impl_of_string : string -> impl option

type t

val create : ?capacity:int -> ?delta:float -> impl -> t
(** [capacity] sizes the initial arrays (heap slots / ring buckets).
    [delta] (default [0.5], the RRG cost quantum) is the bucket width;
    ignored by {!Binary}.
    @raise Invalid_argument if [delta <= 0]. *)

val impl : t -> impl

val push : t -> prio:float -> tie:float -> int -> unit
(** @raise Invalid_argument on a negative or non-finite [prio] pushed to a
    {!Bucket} queue. *)

val pop_min : t -> (float * int) option
(** Removes and returns the minimum entry by [(prio, tie, seq)]. *)

val is_empty : t -> bool

val size : t -> int

val clear : t -> unit
(** Empties the queue but retains all allocated capacity (both
    implementations), so reuse across searches causes no realloc churn. *)
