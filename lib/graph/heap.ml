(* Entries are ordered by (prio, tie, seq) lexicographically; [seq] is a
   per-heap push counter, so full ties pop in FIFO order.  The total order
   makes the popped sequence a pure function of the pushed multiset — the
   contract {!Pq} relies on to keep its two implementations
   pop-for-pop identical. *)
type t = {
  mutable prio : float array;
  mutable tie : float array;
  mutable seq : int array;
  mutable data : int array;
  mutable len : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  {
    prio = Array.make capacity 0.;
    tie = Array.make capacity 0.;
    seq = Array.make capacity 0;
    data = Array.make capacity 0;
    len = 0;
    next_seq = 0;
  }

let is_empty h = h.len = 0

let size h = h.len

let capacity h = Array.length h.prio

(* Drops the entries but keeps the allocated arrays, so a heap reused
   across many searches (negotiated iterations, resumed frontiers) never
   re-pays allocation churn. *)
let clear h =
  h.len <- 0;
  h.next_seq <- 0

let grow h =
  let cap = Array.length h.prio in
  let ncap = 2 * cap in
  let prio = Array.make ncap 0.
  and tie = Array.make ncap 0.
  and seq = Array.make ncap 0
  and data = Array.make ncap 0 in
  Array.blit h.prio 0 prio 0 h.len;
  Array.blit h.tie 0 tie 0 h.len;
  Array.blit h.seq 0 seq 0 h.len;
  Array.blit h.data 0 data 0 h.len;
  h.prio <- prio;
  h.tie <- tie;
  h.seq <- seq;
  h.data <- data

let swap h i j =
  let p = h.prio.(i) and t = h.tie.(i) and s = h.seq.(i) and d = h.data.(i) in
  h.prio.(i) <- h.prio.(j);
  h.tie.(i) <- h.tie.(j);
  h.seq.(i) <- h.seq.(j);
  h.data.(i) <- h.data.(j);
  h.prio.(j) <- p;
  h.tie.(j) <- t;
  h.seq.(j) <- s;
  h.data.(j) <- d

(* Strict (prio, tie, seq) order, written with [<] only so float NaN never
   reaches a polymorphic comparison. *)
let less h i j =
  let pi = h.prio.(i) and pj = h.prio.(j) in
  if pi < pj then true
  else if pj < pi then false
  else begin
    let ti = h.tie.(i) and tj = h.tie.(j) in
    if ti < tj then true else if tj < ti then false else h.seq.(i) < h.seq.(j)
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h l !smallest then smallest := l;
  if r < h.len && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push ?(tie = 0.) h prio x =
  let cap = Array.length h.prio in
  if h.len = cap then grow h;
  h.prio.(h.len) <- prio;
  h.tie.(h.len) <- tie;
  h.seq.(h.len) <- h.next_seq;
  h.data.(h.len) <- x;
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_min h = if h.len = 0 then None else Some (h.prio.(0), h.data.(0))

let pop_min h =
  if h.len = 0 then None
  else begin
    let p = h.prio.(0) and d = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prio.(0) <- h.prio.(h.len);
      h.tie.(0) <- h.tie.(h.len);
      h.seq.(0) <- h.seq.(h.len);
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (p, d)
  end
