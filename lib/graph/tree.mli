(** Routing trees.

    All routing algorithms return a tree as a set of edge ids of the host
    graph.  This module provides the shared validity checks and metrics the
    paper reports: total wirelength ([cost], §2) and source–sink pathlengths
    (the GSA objective, §2/§4). *)

type t = { edges : Gstate.edge list }

val of_edges : Gstate.edge list -> t
(** Deduplicates edge ids. *)

val empty : t

val cost : Gstate.t -> t -> float
(** Sum of edge weights — the paper's [cost(T)]. *)

val nodes : Gstate.t -> t -> int list
(** Sorted distinct nodes touched by the tree's edges. *)

val mem_node : Gstate.t -> t -> int -> bool

val is_tree : Gstate.t -> t -> bool
(** Connected and acyclic over the induced node set (vacuously true when
    empty). *)

val spans : Gstate.t -> t -> int list -> bool
(** All given terminals appear in the tree (a single terminal with no edges
    counts as spanned). *)

val uses_only_enabled : Gstate.t -> t -> bool

val path_length : Gstate.t -> t -> src:int -> dst:int -> float
(** Length of the unique tree path between two tree nodes.
    @raise Invalid_argument if either node is absent or disconnected. *)

val path_lengths_from : Gstate.t -> t -> src:int -> (int * float) list
(** Distances from [src] to every tree node, by tree traversal. *)

val path_table : Gstate.t -> t -> src:int -> (int, float) Hashtbl.t
(** Hashtable variant of [path_lengths_from] for hot-path per-sink lookups:
    O(1) per probe instead of a linear scan of the association list. *)

val max_path_length : Gstate.t -> t -> src:int -> sinks:int list -> float
(** The paper's "maximum source–sink pathlength" metric. *)

val prune : Gstate.t -> t -> keep:int list -> t
(** Repeatedly removes leaf nodes not in [keep] (KMB's final pendant-edge
    deletion step, Fig 17). *)

val union : t -> t -> t
