(* Pluggable min-priority queue for Dijkstra frontiers.

   Both implementations obey one contract: entries are popped in strict
   lexicographic [(prio, tie, seq)] order, where [seq] is the per-queue
   push counter.  The order is total, so the pop sequence is a pure
   function of the pushed multiset — swapping implementations can never
   change a search result, only its speed.  The property test in
   [test_graph.ml] drives both on random workloads and asserts the
   sequences are identical.

   The bucket queue is a calendar queue calibrated for Dijkstra's keys:
   priorities are quantized to [delta]-wide buckets held in a circular
   ring, the live window [lo, hi) never spans more buckets than the ring
   has slots (the ring is grown and re-indexed when it would), and a pop
   scans only the first non-empty bucket for its exact minimum.  On the
   RRG every edge weight is a multiple of 0.5, so with [delta = 0.5] the
   in-flight priority span of a monotone search covers a handful of
   buckets and each scan is O(bucket occupancy).  Correctness does not
   depend on [delta]: the bucket index is monotone in the priority and
   equal priorities always share a bucket, so the scan's exact
   [(prio, tie, seq)] minimum is the global minimum.  Bucket priorities
   must be finite and non-negative (Dijkstra's always are). *)

type impl =
  | Binary
  | Bucket

let impl_name = function Binary -> "binary" | Bucket -> "bucket"

let impl_of_string = function
  | "binary" -> Some Binary
  | "bucket" -> Some Bucket
  | _ -> None

type bucket = {
  mutable bprio : float array;
  mutable btie : float array;
  mutable bseq : int array;
  mutable bdata : int array;
  mutable blen : int;
}

type bucketq = {
  delta : float;
  mutable ring : bucket array;  (* bucket of absolute index [a] lives at slot [a mod ring length] *)
  mutable lo : int;  (* lowest possibly-occupied absolute bucket index *)
  mutable hi : int;  (* highest occupied absolute bucket index + 1 *)
  mutable count : int;
  mutable next_seq : int;
}

type t =
  | Bin of Heap.t
  | Buck of bucketq

let empty_bucket () =
  { bprio = [||]; btie = [||]; bseq = [||]; bdata = [||]; blen = 0 }

let default_delta = 0.5

let create ?(capacity = 16) ?(delta = default_delta) impl =
  match impl with
  | Binary -> Bin (Heap.create ~capacity ())
  | Bucket ->
      if not (delta > 0.) then invalid_arg "Pq.create: delta must be positive";
      let slots = max 16 capacity in
      Buck
        {
          delta;
          ring = Array.init slots (fun _ -> empty_bucket ());
          lo = 0;
          hi = 0;
          count = 0;
          next_seq = 0;
        }

let impl = function Bin _ -> Binary | Buck _ -> Bucket

(* Re-size the ring so the absolute window [lo, hi) fits, relocating live
   buckets by their absolute index.  The live-window invariant guarantees
   each absolute index in [q.lo, q.hi) owns a distinct old slot, and the
   new length covers the requested window, so no two live buckets collide
   in the new ring.  Buckets move wholesale (array pointers), not entry by
   entry. *)
let grow_ring q lo hi =
  let old = q.ring in
  let oldlen = Array.length old in
  let need = hi - lo in
  let nlen = ref oldlen in
  while !nlen < need do
    nlen := 2 * !nlen
  done;
  let nring = Array.init !nlen (fun _ -> empty_bucket ()) in
  for a = q.lo to q.hi - 1 do
    let b = old.(a mod oldlen) in
    if b.blen > 0 then nring.(a mod !nlen) <- b
  done;
  q.ring <- nring

let bucket_append b ~prio ~tie ~seq x =
  let cap = Array.length b.bprio in
  if b.blen = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let bprio = Array.make ncap 0.
    and btie = Array.make ncap 0.
    and bseq = Array.make ncap 0
    and bdata = Array.make ncap 0 in
    Array.blit b.bprio 0 bprio 0 b.blen;
    Array.blit b.btie 0 btie 0 b.blen;
    Array.blit b.bseq 0 bseq 0 b.blen;
    Array.blit b.bdata 0 bdata 0 b.blen;
    b.bprio <- bprio;
    b.btie <- btie;
    b.bseq <- bseq;
    b.bdata <- bdata
  end;
  b.bprio.(b.blen) <- prio;
  b.btie.(b.blen) <- tie;
  b.bseq.(b.blen) <- seq;
  b.bdata.(b.blen) <- x;
  b.blen <- b.blen + 1

let push t ~prio ~tie x =
  match t with
  | Bin h -> Heap.push ~tie h prio x
  | Buck q ->
      if not (prio >= 0. && prio < infinity) then
        invalid_arg "Pq.push: bucket queue requires a finite non-negative priority";
      let a = int_of_float (prio /. q.delta) in
      if q.count = 0 then begin
        q.lo <- a;
        q.hi <- a + 1
      end
      else begin
        let lo = if a < q.lo then a else q.lo in
        let hi = if a + 1 > q.hi then a + 1 else q.hi in
        if hi - lo > Array.length q.ring then grow_ring q lo hi;
        q.lo <- lo;
        q.hi <- hi
      end;
      bucket_append q.ring.(a mod Array.length q.ring) ~prio ~tie ~seq:q.next_seq x;
      q.next_seq <- q.next_seq + 1;
      q.count <- q.count + 1

(* Strict (prio, tie, seq) order within a bucket, [<]-only like Heap. *)
let entry_less b i j =
  let pi = b.bprio.(i) and pj = b.bprio.(j) in
  if pi < pj then true
  else if pj < pi then false
  else begin
    let ti = b.btie.(i) and tj = b.btie.(j) in
    if ti < tj then true else if tj < ti then false else b.bseq.(i) < b.bseq.(j)
  end

let pop_min t =
  match t with
  | Bin h -> Heap.pop_min h
  | Buck q ->
      if q.count = 0 then None
      else begin
        let len = Array.length q.ring in
        while q.ring.(q.lo mod len).blen = 0 do
          q.lo <- q.lo + 1
        done;
        let b = q.ring.(q.lo mod len) in
        let best = ref 0 in
        for i = 1 to b.blen - 1 do
          if entry_less b i !best then best := i
        done;
        let p = b.bprio.(!best) and x = b.bdata.(!best) in
        let last = b.blen - 1 in
        b.bprio.(!best) <- b.bprio.(last);
        b.btie.(!best) <- b.btie.(last);
        b.bseq.(!best) <- b.bseq.(last);
        b.bdata.(!best) <- b.bdata.(last);
        b.blen <- last;
        q.count <- q.count - 1;
        Some (p, x)
      end

let is_empty = function Bin h -> Heap.is_empty h | Buck q -> q.count = 0

let size = function Bin h -> Heap.size h | Buck q -> q.count

(* Like {!Heap.clear}: drops the entries, keeps every allocated array. *)
let clear = function
  | Bin h -> Heap.clear h
  | Buck q ->
      Array.iter (fun b -> b.blen <- 0) q.ring;
      q.lo <- 0;
      q.hi <- 0;
      q.count <- 0;
      q.next_seq <- 0
