(** Binary min-heap of [(priority, payload)] pairs.

    Supports duplicate payloads; Dijkstra uses lazy deletion (stale entries
    are skipped on pop), which keeps the structure simple and fast.

    Entries are totally ordered by [(priority, tie, seq)] where [seq] is a
    per-heap push counter: equal keys pop in FIFO push order.  The total
    order makes the pop sequence a pure function of the pushed multiset
    (independent of internal array layout), which is what lets {!Pq} keep
    this heap and the bucket queue pop-for-pop interchangeable. *)

type t

val create : ?capacity:int -> unit -> t

val push : ?tie:float -> t -> float -> int -> unit
(** [push h prio x] inserts payload [x] with priority [prio].  [tie]
    (default [0.]) is the secondary sort key; Dijkstra passes the true
    distance [g] so that equal [g+h] frontier keys settle in [g] order. *)

val pop_min : t -> (float * int) option
(** Removes and returns the minimum entry — by [(prio, tie, seq)] — or
    [None] if empty. *)

val peek_min : t -> (float * int) option

val is_empty : t -> bool

val size : t -> int

val capacity : t -> int
(** Allocated slots (>= {!size}).  {!clear} retains it. *)

val clear : t -> unit
(** Empties the heap but keeps its allocated arrays, so reuse across many
    searches causes no reallocation churn. *)
