(** Binary min-heap of [(priority, payload)] pairs.

    Supports duplicate payloads; Dijkstra uses lazy deletion (stale entries
    are skipped on pop), which keeps the structure simple and fast. *)

type t

val create : ?capacity:int -> unit -> t

val push : t -> float -> int -> unit
(** [push h prio x] inserts payload [x] with priority [prio]. *)

val pop_min : t -> (float * int) option
(** Removes and returns the minimum-priority entry, or [None] if empty. *)

val peek_min : t -> (float * int) option

val is_empty : t -> bool

val size : t -> int

val clear : t -> unit
