(** Dijkstra single-source shortest paths (paper reference [16]).

    Used everywhere: distance graphs for KMB/ZEL (§8), dominance tests
    (Def 4.1), the DJKA baseline (§5), and path embedding for all
    constructions. *)

type result = {
  src : int;
  dist : float array;  (** [infinity] where unreachable *)
  parent_edge : int array;  (** [-1] at the source / unreachable nodes *)
  parent_node : int array;  (** [-1] at the source / unreachable nodes *)
}

val run :
  ?restrict:(int -> bool) -> ?edge_ok:(Wgraph.edge -> bool) -> Wgraph.t -> src:int -> result
(** Full single-source shortest paths over enabled nodes/edges.
    [restrict] further limits the explored node set (the router's
    bounding-box pruning); the source is always allowed.  [edge_ok] limits
    the usable edges (used to compute shortest-path trees inside the union
    subgraph of the arborescence constructions). *)

val dist : result -> int -> float

val reachable : result -> int -> bool

val path_edges : result -> int -> Wgraph.edge list
(** Edge ids of the tree path from the source to the given node, in
    source-to-node order.  @raise Invalid_argument if unreachable. *)

val path_nodes : result -> int -> int list
(** Node ids along the same path, starting with the source. *)

val spt_edges : result -> Wgraph.edge list
(** All parent edges of the shortest-paths tree (one per reached non-source
    node). *)
