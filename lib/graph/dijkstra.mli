(** Dijkstra single-source shortest paths (paper reference [16]), with
    target-bounded early termination, transparent resumption, and optional
    A-star goal-direction.

    Used everywhere: distance graphs for KMB/ZEL (§8), dominance tests
    (Def 4.1), the DJKA baseline (§5), and path embedding for all
    constructions.

    A run made with [~targets] settles only as much of the graph as needed
    to finalize those nodes; the returned {!result} keeps its frontier
    (priority queue + settled set) so later queries {e resume} the search
    instead of recomputing it.  All accessor functions ({!dist},
    {!reachable}, {!path_edges}, …) settle on demand, so a targeted result
    answers every query with exactly the values a full run would produce.

    {b Goal-direction.}  With [~future_cost:h] the frontier is ordered by
    [f = g + h(v)] while [dist] keeps the true [g]; ties on [f] break by
    [g], then push order.  When [h] is admissible ([h(v)] never exceeds
    the true remaining distance) {e and} consistent
    ([h(u) <= w(u,v) + h(v)] on every enabled edge, with [h >= 0] and all
    edge weights strictly positive), every settled node's [g] is final at
    settle time — the same settled-prefix-is-final invariant as plain
    Dijkstra, so resumption and all accessors work identically (the
    invariant argument is in DESIGN.md §4.8).  Relaxation canonicalizes
    equal-distance parents to the smallest edge id, which makes the
    shortest-path {e tree} a pure graph property: bit-identical whether or
    not a heuristic is supplied and whichever {!Pq} implementation backs
    the frontier. *)

type heuristic
(** A future-cost lower bound [h : node -> float] tagged with a process-
    unique identity ({!heuristic_id}), so caches can refuse to resume a
    frontier under a different [h]. *)

val heuristic : (int -> float) -> heuristic
(** Wrap a future-cost function, assigning it a fresh identity.  The
    caller promises admissibility and consistency (see above); the search
    does not check them — the property tests in the test tree do. *)

val heuristic_id : heuristic -> int

val heuristic_eval : heuristic -> int -> float
(** Apply the wrapped bound to a node — for the property tests that check
    admissibility and consistency of a producer's heuristic. *)

type state
(** Opaque resumption state (frontier queue, settled set, counters). *)

type result = {
  src : int;
  dist : float array;
      (** True distances [g] ([infinity] where unreachable) — never the
          heuristic-augmented key.  Raw reads are final only for settled
          nodes (see {!is_settled}/{!complete}); use {!dist} or {!extend}
          first when the result may be partial. *)
  parent_edge : int array;  (** [-1] at the source / unreached nodes *)
  parent_node : int array;  (** [-1] at the source / unreached nodes *)
  state : state;
}

val run :
  ?restrict:(int -> bool) ->
  ?edge_ok:(Gstate.edge -> bool) ->
  ?targets:int list ->
  ?future_cost:heuristic ->
  ?heap:Pq.impl ->
  ?delta:float ->
  Gstate.t ->
  src:int ->
  result
(** Single-source shortest paths over enabled nodes/edges.  [restrict]
    further limits the explored node set (the router's bounding-box
    pruning); the source is always allowed.  [edge_ok] limits the usable
    edges (used to compute shortest-path trees inside the union subgraph of
    the arborescence constructions).  [targets], when given, stops the
    search as soon as every listed node is settled (unreachable targets
    exhaust the search); without it the whole graph is settled.
    [future_cost] goal-directs the search (see above).  [heap] selects the
    frontier implementation (default {!Pq.Binary}); [delta] is the
    {!Pq.Bucket} quantum. *)

val extend : result -> targets:int list -> unit
(** Resume a partial run until every listed node is settled (or the search
    is exhausted).  No-op for already-settled targets.
    @raise Invalid_argument if the graph was mutated since [run].  Every
    resuming entry point ([extend], [extend_all], [dist], [reachable],
    [path_edges], [path_nodes]) raises this error under its own name, so a
    cache-staleness bug is attributable to the call that tripped it. *)

val extend_all : result -> unit
(** Resume until the search is exhausted (equivalent to a full run). *)

val settled_count : result -> int
(** Number of nodes settled so far — the unit of Dijkstra work that
    {!Dist_cache} budgets and benchmarks report. *)

val future_cost_evals : result -> int
(** Heuristic evaluations performed by this search so far (0 when no
    [future_cost] was supplied). *)

val is_settled : result -> int -> bool
(** Whether this node's [dist]/parent entries are final. *)

val complete : result -> bool
(** Whether the search is exhausted (every reachable node settled). *)

val dist : result -> int -> float
(** Final distance to the node, resuming the search if needed. *)

val reachable : result -> int -> bool

val path_edges : result -> int -> Gstate.edge list
(** Edge ids of the tree path from the source to the given node, in
    source-to-node order.  @raise Invalid_argument if unreachable. *)

val path_nodes : result -> int -> int list
(** Node ids along the same path, starting with the source. *)

val spt_edges : result -> Gstate.edge list
(** All parent edges of the shortest-paths tree (one per reached non-source
    node).  Forces {!extend_all} so the tree is complete. *)
