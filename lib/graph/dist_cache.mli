(** Memoized per-source Dijkstra results.

    The iterated constructions (IGMST §3, IDOM §4.2) repeatedly need
    distances between terminals, Steiner candidates, and accepted Steiner
    nodes.  Because the graph is undirected, [dist(t, s) = dist(s, t)], so a
    single Dijkstra per terminal answers the Δ-scan for *every* candidate —
    the "factoring out common computations" the paper prescribes.  The cache
    is invalidated automatically when the host graph's version changes. *)

type t

val create : ?restrict:(int -> bool) -> Wgraph.t -> t
(** [restrict] applies to every memoized Dijkstra run (candidate-pruning on
    big routing graphs); callers must ensure all nodes they query satisfy
    it. *)

val graph : t -> Wgraph.t

val result : t -> src:int -> Dijkstra.result
(** The memoized single-source result, recomputed if the graph changed. *)

val dist : t -> src:int -> dst:int -> float

val path_edges : t -> src:int -> dst:int -> Wgraph.edge list

val cached : t -> int -> bool
(** Whether a memoized result for this source is currently valid. *)

val dist_sym : t -> int -> int -> float
(** [dist_sym t a b] = [dist t ~src:a ~dst:b], but served from whichever of
    the two endpoints is already cached (the graph is undirected).  This is
    what makes the Δ-scans of IGMST/IDOM run without any per-candidate
    Dijkstra. *)

val path_edges_sym : t -> int -> int -> Wgraph.edge list
(** Shortest-path edge set between two nodes, served like {!dist_sym}
    (edge sets are orientation-independent). *)

val runs : t -> int
(** Number of actual Dijkstra executions so far (test/benchmark hook). *)
