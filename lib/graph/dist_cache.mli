(** Memoized per-source Dijkstra results — the shared shortest-path
    performance layer.

    The iterated constructions (IGMST §3, IDOM §4.2) repeatedly need
    distances between terminals, Steiner candidates, and accepted Steiner
    nodes.  Because the graph is undirected, [dist(t, s) = dist(s, t)], so a
    single Dijkstra per terminal answers the Δ-scan for *every* candidate —
    the "factoring out common computations" the paper prescribes.

    Three mechanisms keep the layer cheap:

    - {b Target-bounded queries.}  In targeted mode (the default),
      point-to-point queries run Dijkstra only until the requested nodes are
      settled and store the {e partial} result; a later query that needs a
      farther node transparently resumes the same search ({!Dijkstra.extend}).
    - {b Versioned invalidation.}  Every entry is checked against
      {!Gstate.version}; any weight or enable/disable mutation of the host
      graph drops the whole table before the next query (see {!invalidate}
      for the explicit form).
    - {b LRU capacity bound.}  At most [capacity] per-source entries are
      kept; inserting past the bound evicts the least-recently-used source.

    {b Goal-direction.}  A future-cost lower bound installed with
    {!set_future_cost} goal-directs every {e targeted} lookup.  Entries
    are keyed by [(source, heuristic id)], so a frontier opened under one
    heuristic is never resumed under a different one (or under none) —
    only its own [h] keeps the settled prefix an f-order prefix.
    Complete lookups ({!result}, [targets = None]) always run {e plain}
    Dijkstra under a dedicated key: the KMB/ZEL distance-graph and
    full-array consumers read exact distances at every index and gain
    nothing from goal-direction, so they bypass it entirely.

    Hit/miss/eviction/settled-node counters expose the layer's behavior to
    benchmarks and tests.

    {b Thread-safety audit} (for the parallel router).  A cache is {e not}
    thread-safe: lookups mutate the table and recency list, and resuming a
    memoized {!Dijkstra.result} refines its arrays in place.  The parallel
    router therefore gives each worker domain its own cache over a shared
    {!Gstate.read_only_view}; within one cache all mutation is owner-local,
    and the underlying graph is only read, so concurrent waves are race-free.
    Cache state never changes {e results}: a hit resumes the same search a
    miss would start, and settled prefixes of a Dijkstra run are final
    (with or without a heuristic), so per-domain caches with different
    contents still return bit-identical distances and paths. *)

type t

val create :
  ?restrict:(int -> bool) ->
  ?targeted:bool ->
  ?capacity:int ->
  ?heap:Pq.impl ->
  ?delta:float ->
  Gstate.t ->
  t
(** [restrict] applies to every memoized Dijkstra run (candidate-pruning on
    big routing graphs); callers must ensure all nodes they query satisfy
    it.  [targeted] (default [true]) enables target-bounded partial runs;
    [false] forces every run to settle the whole graph (the pre-targeting
    behavior, kept for A/B benchmarking).  [capacity] (default 1024) bounds
    the number of cached sources; the least recently used is evicted.
    [heap] (default {!Pq.Binary}) backs every search's frontier; [delta]
    is the {!Pq.Bucket} quantum. *)

val graph : t -> Gstate.t

val set_future_cost : t -> Dijkstra.heuristic option -> unit
(** Install (or clear) the future-cost bound used by subsequent targeted
    lookups.  The router sets a fresh per-net heuristic before each solve;
    existing entries stay valid under their own keys. *)

val future_cost : t -> Dijkstra.heuristic option

val result : t -> src:int -> Dijkstra.result
(** The memoized single-source result, {e complete} (every reachable node
    settled, so raw [dist] array reads are final), recomputed if the graph
    changed.  Always plain Dijkstra — never goal-directed. *)

val result_for : t -> src:int -> targets:int list -> Dijkstra.result
(** Like {!result} but only guarantees the listed nodes are settled — the
    cheap form for Δ-scans that read the [dist] array at known indices.
    The returned result may be partial; reads beyond [targets] must go
    through {!Dijkstra.dist} (which resumes on demand). *)

val dist : t -> src:int -> dst:int -> float

val path_edges : t -> src:int -> dst:int -> Gstate.edge list

val cached : t -> int -> bool
(** Whether the entry the next targeted lookup for this source would use
    (keyed under the currently installed heuristic, or plain when none) is
    currently valid. *)

val dist_sym : t -> int -> int -> float
(** [dist_sym t a b] = [dist t ~src:a ~dst:b], but served from whichever of
    the two endpoints is already cached (the graph is undirected).  This is
    what makes the Δ-scans of IGMST/IDOM run without any per-candidate
    Dijkstra. *)

val path_edges_sym : t -> int -> int -> Gstate.edge list
(** Shortest-path edge set between two nodes, served like {!dist_sym}
    (edge sets are orientation-independent). *)

val invalidate : t -> unit
(** Drop every entry and re-stamp at the graph's current version.  Version
    checks make this automatic; the router calls it explicitly after
    committing a net so the dependency is visible at the call site. *)

val runs : t -> int
(** Number of Dijkstra searches started (= misses) over the cache's
    lifetime. *)

val hits : t -> int
(** Queries answered from a live entry (possibly after resuming it). *)

val misses : t -> int

val evictions : t -> int
(** Entries dropped by the LRU capacity bound (not by invalidation). *)

val settled_nodes : t -> int
(** Total nodes settled by every search this cache ever ran, including
    entries since evicted or invalidated — the work metric the bench
    compares between targeted and full modes. *)

val future_cost_evals : t -> int
(** Total heuristic evaluations across every search this cache ever ran
    (same lifetime accounting as {!settled_nodes}). *)
