(** Rectilinear grid graphs.

    The paper's Table 1 experiments run on 20×20 weighted grid graphs whose
    initial unit weights are perturbed by congestion (§5); before any net is
    routed, shortest-path distances equal rectilinear distance (Fig 3a). *)

type t = {
  graph : Gstate.t;
  width : int;  (** number of columns (x in [0..width-1]) *)
  height : int;  (** number of rows (y in [0..height-1]) *)
}

val create : ?weight:float -> width:int -> height:int -> unit -> t
(** 4-connected grid; all edges share the initial [weight] (default 1.). *)

val node : t -> x:int -> y:int -> int
(** @raise Invalid_argument when out of range. *)

val coords : t -> int -> int * int

val manhattan : t -> int -> int -> int
(** Rectilinear distance between two grid nodes (in grid steps). *)

val horizontal_edge : t -> x:int -> y:int -> Gstate.edge
(** Edge from (x,y) to (x+1,y).  @raise Invalid_argument when absent. *)

val vertical_edge : t -> x:int -> y:int -> Gstate.edge
(** Edge from (x,y) to (x,y+1).  @raise Invalid_argument when absent. *)
