module Rng = Fr_util.Rng

let connected rng ~n ~m ~wmin ~wmax =
  if n < 1 then invalid_arg "Random_graph.connected: n < 1";
  if wmin < 0. || wmax < wmin then invalid_arg "Random_graph.connected: bad weight range";
  let g = Wgraph.create n in
  let rand_w () = wmin +. Rng.float rng (wmax -. wmin) in
  (* Random spanning tree: attach each node (in shuffled order) to a random
     earlier node. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let seen = Hashtbl.create (4 * n) in
  let edge_key u v = if u < v then (u, v) else (v, u) in
  for i = 1 to n - 1 do
    let u = order.(i) and v = order.(Rng.int rng i) in
    ignore (Wgraph.add_edge g u v (rand_w ()));
    Hashtbl.replace seen (edge_key u v) ()
  done;
  let extra = max 0 (m - (n - 1)) in
  let max_extra = (n * (n - 1) / 2) - (n - 1) in
  let extra = min extra max_extra in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Hashtbl.mem seen (edge_key u v)) then begin
      Hashtbl.replace seen (edge_key u v) ();
      ignore (Wgraph.add_edge g u v (rand_w ()));
      incr added
    end
  done;
  Gstate.of_builder g

let random_net rng g ~k =
  let n = Gstate.num_nodes g in
  if k > n then invalid_arg "Random_graph.random_net: net larger than graph";
  Rng.sample_distinct rng k n
