(* Entries form an intrusive doubly-linked recency list threaded through
   the table's values: the list head is the most recently touched entry,
   the tail the least.  Touch (hit or insert) unlinks the entry and pushes
   it to the head; eviction drops the tail — both O(1), where the previous
   scheme scanned the whole table for the minimum LRU tick on every insert
   at capacity, turning the miss path O(capacity) per miss under ECO
   churn. *)
type entry = {
  key : int * int;
  res : Dijkstra.result;
  mutable prev : entry option;  (* neighbor toward the MRU head *)
  mutable next : entry option;  (* neighbor toward the LRU tail *)
}

(* Entries are keyed by (source, heuristic id): a frontier opened under
   one future-cost function is never resumed under another (or under
   none), because only its own h keeps the settled prefix an f-order
   prefix.  [no_heuristic] keys plain runs — including every complete
   ([targets = None]) lookup, which bypasses the heuristic entirely so
   full-distance-array consumers (ZEL/DJKA/BRBC/dominance/eval) always
   see plain Dijkstra. *)
let no_heuristic = -1

type t = {
  g : Gstate.t;
  restrict : (int -> bool) option;
  targeted : bool;
  heap : Pq.impl;
  delta : float option;
  capacity : int;
  table : (int * int, entry) Hashtbl.t;
  mutable head : entry option;  (* most recently touched *)
  mutable tail : entry option;  (* least recently touched: next eviction *)
  mutable future : Dijkstra.heuristic option;
  mutable stamp : int;
  (* Monotone lifetime counters; survive invalidations and evictions. *)
  mutable runs : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable settled_gone : int;  (* settled nodes of dropped entries *)
  mutable h_evals_gone : int;  (* future-cost evals of dropped entries *)
}

let default_capacity = 1024

let create ?restrict ?(targeted = true) ?(capacity = default_capacity) ?(heap = Pq.Binary)
    ?delta g =
  if capacity < 1 then invalid_arg "Dist_cache.create: capacity must be >= 1";
  {
    g;
    restrict;
    targeted;
    heap;
    delta;
    capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    future = None;
    stamp = Gstate.version g;
    runs = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    settled_gone = 0;
    h_evals_gone = 0;
  }

let graph t = t.g

let set_future_cost t h = t.future <- h

let future_cost t = t.future

(* Recency-list plumbing.  [unlink] is safe on any live entry (head, tail
   or middle); the option patterns decide which neighbor pointers to fix,
   so no identity comparisons are needed. *)
let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  unlink t e;
  push_front t e

let account_drop t e =
  t.settled_gone <- t.settled_gone + Dijkstra.settled_count e.res;
  t.h_evals_gone <- t.h_evals_gone + Dijkstra.future_cost_evals e.res

let drop_all t =
  Hashtbl.iter (fun _ e -> account_drop t e) t.table;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let invalidate t =
  drop_all t;
  t.stamp <- Gstate.version t.g

let refresh t =
  let ver = Gstate.version t.g in
  if ver <> t.stamp then invalidate t

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      account_drop t victim;
      Hashtbl.remove t.table victim.key;
      t.evictions <- t.evictions + 1

(* Look up (or run) the per-source result, bounded to [targets] when the
   cache is in targeted mode.  [targets = None] demands a complete result
   and always runs plain (see [no_heuristic] above); targeted lookups use
   the current future-cost function, whose id extends the key. *)
let lookup t ~src ~targets =
  refresh t;
  let targets = if t.targeted then targets else None in
  let future = match targets with None -> None | Some _ -> t.future in
  let hid = match future with None -> no_heuristic | Some h -> Dijkstra.heuristic_id h in
  let key = (src, hid) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      (match targets with
      | None -> Dijkstra.extend_all e.res
      | Some ts -> Dijkstra.extend e.res ~targets:ts);
      e.res
  | None ->
      t.misses <- t.misses + 1;
      let res =
        Dijkstra.run ?restrict:t.restrict ?targets ?future_cost:future ~heap:t.heap
          ?delta:t.delta t.g ~src
      in
      t.runs <- t.runs + 1;
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let e = { key; res; prev = None; next = None } in
      push_front t e;
      Hashtbl.add t.table key e;
      res

let result t ~src = lookup t ~src ~targets:None

let result_for t ~src ~targets = lookup t ~src ~targets:(Some targets)

let dist t ~src ~dst = Dijkstra.dist (result_for t ~src ~targets:[ dst ]) dst

let path_edges t ~src ~dst = Dijkstra.path_edges (result_for t ~src ~targets:[ dst ]) dst

(* "Cached" means: the entry the next targeted lookup would use — keyed
   under the current heuristic (plain when none is set) — is live. *)
let cached t src =
  refresh t;
  let hid = match t.future with None -> no_heuristic | Some h -> Dijkstra.heuristic_id h in
  Hashtbl.mem t.table (src, hid)

let pick_cached_side t a b = if cached t a then (a, b) else if cached t b then (b, a) else (a, b)

let dist_sym t a b =
  let src, dst = pick_cached_side t a b in
  dist t ~src ~dst

let path_edges_sym t a b =
  let src, dst = pick_cached_side t a b in
  path_edges t ~src ~dst

let runs t = t.runs

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let settled_nodes t =
  Hashtbl.fold (fun _ e acc -> acc + Dijkstra.settled_count e.res) t.table t.settled_gone

let future_cost_evals t =
  Hashtbl.fold (fun _ e acc -> acc + Dijkstra.future_cost_evals e.res) t.table t.h_evals_gone
