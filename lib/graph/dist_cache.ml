type t = {
  g : Wgraph.t;
  restrict : (int -> bool) option;
  table : (int, Dijkstra.result) Hashtbl.t;
  mutable stamp : int;
  mutable count : int;
}

let create ?restrict g =
  { g; restrict; table = Hashtbl.create 64; stamp = Wgraph.version g; count = 0 }

let graph t = t.g

let refresh t =
  let v = Wgraph.version t.g in
  if v <> t.stamp then begin
    Hashtbl.reset t.table;
    t.stamp <- v
  end

let result t ~src =
  refresh t;
  match Hashtbl.find_opt t.table src with
  | Some r -> r
  | None ->
      let r = Dijkstra.run ?restrict:t.restrict t.g ~src in
      Hashtbl.add t.table src r;
      t.count <- t.count + 1;
      r

let dist t ~src ~dst = Dijkstra.dist (result t ~src) dst

let path_edges t ~src ~dst = Dijkstra.path_edges (result t ~src) dst

let cached t src =
  refresh t;
  Hashtbl.mem t.table src

let pick_cached_side t a b = if cached t a then (a, b) else if cached t b then (b, a) else (a, b)

let dist_sym t a b =
  let src, dst = pick_cached_side t a b in
  dist t ~src ~dst

let path_edges_sym t a b =
  let src, dst = pick_cached_side t a b in
  path_edges t ~src ~dst

let runs t = t.count
