module Bitset = Fr_util.Bitset

type edge = Topology.edge

(* One journal entry per *effective* mutation, recording the value to
   restore on rollback. *)
type undo =
  | Weight of int * float
  | Node_on of int * bool
  | Edge_on of int * bool

(* Version counter, journal and lifetime counters live in a [meta] record
   shared between a state and every read-only view of it, so a view sees
   exactly the parent's version history: a Dist_cache built over a view
   goes stale the moment the parent mutates, and vice versa. *)
type meta = {
  mutable ver : int;
  mutable journal : undo array;
  mutable jlen : int;
  mutable mutations : int;
  mutable rollbacks : int;
  mutable undone : int;
  mutable peak_depth : int;
}

type t = {
  topo : Topology.t;
  w : float array;
  n_on : Bitset.t;
  e_on : Bitset.t;
  meta : meta;
  read_only : bool;
}

type checkpoint = int

let fresh_meta () =
  {
    ver = 0;
    journal = [||];
    jlen = 0;
    mutations = 0;
    rollbacks = 0;
    undone = 0;
    peak_depth = 0;
  }

let of_topology topo =
  {
    topo;
    w = Array.copy topo.Topology.base;
    n_on = Bitset.create (Topology.num_nodes topo);
    e_on = Bitset.create (Topology.num_edges topo);
    meta = fresh_meta ();
    read_only = false;
  }

let of_builder b = of_topology (Wgraph.freeze b)

let topology g = g.topo

let num_nodes g = Topology.num_nodes g.topo

let num_edges g = Topology.num_edges g.topo

let version g = g.meta.ver

let read_only_view g = { g with read_only = true }

let is_read_only g = g.read_only

(* Mutators check this first: a view shares the parent's arrays, so writing
   through one would be an unjournaled mutation of the parent — exactly the
   bug class views exist to turn into an exception. *)
let guard g what = if g.read_only then invalid_arg ("Gstate." ^ what ^ ": read-only view")

(* ------------------------------------------------------------------ *)
(* Journaled mutation                                                  *)
(* ------------------------------------------------------------------ *)

let jpush m entry =
  let cap = Array.length m.journal in
  if m.jlen = cap then begin
    let next = Array.make (if cap = 0 then 64 else 2 * cap) entry in
    Array.blit m.journal 0 next 0 m.jlen;
    m.journal <- next
  end;
  m.journal.(m.jlen) <- entry;
  m.jlen <- m.jlen + 1;
  if m.jlen > m.peak_depth then m.peak_depth <- m.jlen

let record g entry =
  let m = g.meta in
  jpush m entry;
  m.ver <- m.ver + 1;
  m.mutations <- m.mutations + 1

let weight g e = g.w.(e)

let set_weight g e w =
  guard g "set_weight";
  if w < 0. then invalid_arg "Gstate.set_weight: negative weight";
  let old = g.w.(e) in
  if old <> w then begin
    record g (Weight (e, old));
    g.w.(e) <- w
  end

let add_weight g e dw = set_weight g e (g.w.(e) +. dw)

let node_enabled g u = Bitset.get g.n_on u

let set_node g u b =
  guard g "set_node";
  if u < 0 || u >= num_nodes g then invalid_arg "Gstate.set_node: node out of range";
  let cur = Bitset.get g.n_on u in
  if cur <> b then begin
    record g (Node_on (u, not b));
    Bitset.set g.n_on u b
  end

let disable_node g u = set_node g u false

let enable_node g u = set_node g u true

let edge_enabled g e = Bitset.get g.e_on e

let set_edge g e b =
  guard g "set_edge";
  if e < 0 || e >= num_edges g then invalid_arg "Gstate.set_edge: edge out of range";
  let cur = Bitset.get g.e_on e in
  if cur <> b then begin
    record g (Edge_on (e, not b));
    Bitset.set g.e_on e b
  end

let disable_edge g e = set_edge g e false

let enable_edge g e = set_edge g e true

(* ------------------------------------------------------------------ *)
(* Checkpoint / rollback                                               *)
(* ------------------------------------------------------------------ *)

let checkpoint g = g.meta.jlen

let journal_depth g = g.meta.jlen

let rollback g cp =
  guard g "rollback";
  let m = g.meta in
  if cp < 0 || cp > m.jlen then invalid_arg "Gstate.rollback: invalid checkpoint";
  let changed = m.jlen > cp in
  while m.jlen > cp do
    m.jlen <- m.jlen - 1;
    (match m.journal.(m.jlen) with
    | Weight (e, w) -> g.w.(e) <- w
    | Node_on (u, b) -> Bitset.set g.n_on u b
    | Edge_on (e, b) -> Bitset.set g.e_on e b);
    m.undone <- m.undone + 1
  done;
  m.rollbacks <- m.rollbacks + 1;
  if changed then m.ver <- m.ver + 1

let commit g cp =
  guard g "commit";
  let m = g.meta in
  if cp < 0 || cp > m.jlen then invalid_arg "Gstate.commit: invalid checkpoint";
  m.jlen <- cp

let mutations g = g.meta.mutations

let rollbacks g = g.meta.rollbacks

let rollback_entries g = g.meta.undone

let peak_journal_depth g = g.meta.peak_depth

(* Per-call stats hygiene: a long-lived state (the serve daemon routes on
   one [Gstate] for its whole life) would otherwise report the lifetime
   high-water mark from every later call. *)
let reset_peak_journal_depth g = g.meta.peak_depth <- g.meta.jlen

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let endpoints g e = Topology.endpoints g.topo e

let other_end g e u =
  let a, b = Topology.endpoints g.topo e in
  if u = a then b
  else if u = b then a
  else invalid_arg "Gstate.other_end: node not an endpoint"

let iter_adj g u f =
  if Bitset.get g.n_on u then begin
    let off = g.topo.Topology.off and pack = g.topo.Topology.pack in
    let k = ref off.(u) in
    let hi = off.(u + 1) in
    while !k < hi do
      let v = pack.(!k) and e = pack.(!k + 1) in
      if Bitset.get g.e_on e && Bitset.get g.n_on v then f e v g.w.(e);
      k := !k + 2
    done
  end

let fold_adj g u f acc =
  let acc = ref acc in
  iter_adj g u (fun e v w -> acc := f !acc e v w);
  !acc

let degree g u = fold_adj g u (fun d _ _ _ -> d + 1) 0

let find_edge g u v =
  fold_adj g u
    (fun best e v' w ->
      if v' <> v then best
      else
        match best with
        | Some (_, bw) when bw <= w -> best
        | _ -> Some (e, w))
    None
  |> Option.map fst

let iter_edges g f =
  for e = 0 to num_edges g - 1 do
    if Bitset.get g.e_on e then begin
      let u, v = Topology.endpoints g.topo e in
      if Bitset.get g.n_on u && Bitset.get g.n_on v then f e u v g.w.(e)
    end
  done

let mean_edge_weight g =
  let total = ref 0. and count = ref 0 in
  iter_edges g (fun _ _ _ w ->
      total := !total +. w;
      incr count);
  if !count = 0 then 0. else !total /. float_of_int !count

let copy g =
  {
    topo = g.topo;
    w = Array.copy g.w;
    n_on = Bitset.copy g.n_on;
    e_on = Bitset.copy g.e_on;
    meta = fresh_meta ();
    read_only = false;
  }

(* Hot-loop escape hatches: Dijkstra reads these arrays directly. *)

let unsafe_weights g = g.w

let unsafe_node_bits g = g.n_on

let unsafe_edge_bits g = g.e_on
