type t = {
  graph : Gstate.t;
  width : int;
  height : int;
}

(* Edge ids are deterministic given the construction order below:
   for each node in row-major order, first the horizontal then the vertical
   outgoing edge (when they exist). *)

let create ?(weight = 1.) ~width ~height () =
  if width < 1 || height < 1 then invalid_arg "Grid.create: empty grid";
  let b = Wgraph.create ~edge_capacity:(2 * width * height) (width * height) in
  let id x y = (y * width) + x in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then ignore (Wgraph.add_edge b (id x y) (id (x + 1) y) weight);
      if y + 1 < height then ignore (Wgraph.add_edge b (id x y) (id x (y + 1)) weight)
    done
  done;
  { graph = Gstate.of_builder b; width; height }

let node t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then invalid_arg "Grid.node: out of range";
  (y * t.width) + x

let coords t v = (v mod t.width, v / t.width)

let manhattan t a b =
  let xa, ya = coords t a and xb, yb = coords t b in
  abs (xa - xb) + abs (ya - yb)

let find_explicit t u v =
  match Gstate.find_edge t.graph u v with
  | Some e -> e
  | None -> invalid_arg "Grid.find_explicit: no such edge"

let horizontal_edge t ~x ~y =
  let u = node t ~x ~y and v = node t ~x:(x + 1) ~y in
  find_explicit t u v

let vertical_edge t ~x ~y =
  let u = node t ~x ~y and v = node t ~x ~y:(y + 1) in
  find_explicit t u v
