(** Negotiated-congestion cost model (PathFinder / Lagrangian pricing).

    The second routing mode prices shared resources instead of scheduling
    around them: every node of the routing graph is a capacity-bounded
    resource that nets may {e over-subscribe} mid-flight, and the per-edge
    effective cost

    {v eff(e) = base(e) x (1 + present(e)) x (1 + history(e)) v}

    rises on contested resources until the cheapest trees of all nets are
    mutually disjoint.  [present] prices the congestion of the current
    iteration's routes (first-order pressure, escalated geometrically each
    iteration); [history] is the Lagrange-multiplier term, raised by a
    sub-gradient step on each resource's overuse and never lowered, so
    persistent conflicts accumulate permanent price and oscillation damps
    out (ParaLarH, arXiv 2010.11893; sub-gradient router, arXiv
    1803.03885).

    Both penalties live on {e nodes} (a wire is the exclusive resource; an
    edge is just a switch between two wires) and an edge pays the mean of
    its endpoints' penalties, so a path through a node pays that node's
    penalty exactly once — half on entry, half on exit.

    {b Epochs and cache validity.}  Prices change only at {!apply}, which
    writes the effective weights into the owning {!Gstate} through the
    journaled mutators: the graph version bumps, every {!Dist_cache} over
    the state (or any read-only view of it) invalidates, and {!epoch}
    advances.  Between two applies the graph is frozen, so all searches of
    one iteration — including searches fanned out over worker domains —
    resume and share results safely: the settled-prefix-is-final invariant
    holds per cost epoch by construction. *)

type params = {
  present_factor : float;
      (** price per unit of prospective overuse on a node, this iteration *)
  present_growth : float;
      (** geometric escalation of [present_factor] per {!escalate} (>= 1) *)
  history_factor : float;
      (** sub-gradient step: history gained per unit of overuse per
          iteration *)
  capacity : int;  (** nets a node can legally carry (1 on an RRG) *)
}

val default_params : params
(** [present_factor = 0.5], [present_growth = 1.3],
    [history_factor = 0.4], [capacity = 1]. *)

type t

val create : ?params:params -> Gstate.t -> t
(** A cost model over the graph's {e current} weights (captured as the base
    costs).  Usage and history start at zero; {!epoch} at 0.  The state
    must be mutable (the model writes prices through it).
    @raise Invalid_argument on a read-only view or invalid params. *)

val params : t -> params

val epoch : t -> int
(** Number of {!apply} calls so far — the cost-epoch counter that names
    which price vector the graph currently carries. *)

val begin_iteration : t -> unit
(** Reset all usage counters to zero (history is untouched), before
    recording the routes of a fresh iteration. *)

val use_nodes : t -> int list -> unit
(** Record one net's resource usage: every listed node's usage rises by
    one.  Callers pass each net's distinct node set ({!Tree.nodes}), so a
    net counts once per node no matter how many tree edges meet there. *)

val release_nodes : t -> int list -> unit
(** Rip-up: remove one net's recorded usage (the inverse of
    {!use_nodes}).  The router releases every conflicted net before
    {!apply}, so re-routing nets are priced against the {e other} nets'
    usage only — the self-exclusion PathFinder's first-order term needs.
    @raise Invalid_argument if some node's usage is already zero. *)

val usage : t -> int -> int
(** Nets recorded on the node this iteration. *)

val history : t -> int -> float
(** Accumulated history price of the node; monotone non-decreasing over
    the model's lifetime. *)

val overuse : t -> int
(** Total overuse this iteration: sum over nodes of
    [max 0 (usage - capacity)].  Zero means the recorded routes are
    mutually disjoint — the convergence criterion. *)

val overused_nodes : t -> int list
(** Sorted nodes with [usage > capacity]. *)

val escalate : t -> unit
(** The per-iteration multiplier update: each node's history rises by
    [history_factor * max 0 (usage - capacity)] (the sub-gradient step on
    its capacity constraint) and [present_factor] grows by
    [present_growth]. *)

val apply : t -> unit
(** Write the effective cost of every edge into the graph —
    [base * (1 + present) * (1 + history)] with the endpoint-mean penalty
    split — and advance {!epoch}.  Bumps the graph version (via the
    journaled mutators) exactly when some price changed, which is what
    invalidates distance caches between epochs. *)

val restore_base : t -> unit
(** Write the captured base weights back (journaled, like {!apply});
    used after convergence so committed trees are measured and re-priced
    in pre-congestion units. *)
