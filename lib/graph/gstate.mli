(** Mutable routing state over a frozen {!Topology}.

    This is the routing substrate of the whole system (paper §2): the
    topology holds nodes, endpoints and adjacency; a [Gstate.t] overlays it
    with everything a routing pass mutates — current edge weights
    (wirelength plus congestion) and node/edge enable flags (the router
    removes the resources consumed by each routed net so that subsequent
    nets stay electrically disjoint).

    Every effective mutation bumps a {!version} counter so shortest-path
    caches ({!Dist_cache}) can detect staleness, and appends an inverse
    entry to an {b undo journal}.  {!checkpoint} marks a journal position;
    {!rollback} restores the state at a mark in time proportional to the
    number of entries written since it — the router's per-pass rip-up no
    longer scans the whole graph.  Mutations that change nothing (setting a
    weight to its current value, disabling a disabled node) are complete
    no-ops: no journal entry, no version bump.

    The reader API mirrors the old mutable [Wgraph] one, so call sites
    migrate by renaming [Wgraph.foo g] to [Gstate.foo g] and freezing
    builders with {!of_builder}.

    {b Read-only views and parallelism.}  {!read_only_view} aliases a
    state — same arrays, same version counter, same journal — but every
    mutator raises.  This is the aliasing contract the parallel router is
    built on: worker domains hold views and can only read, so a routing
    wave whose solves run concurrently over views is free of data races
    {e provided the owning state is not mutated while the wave is in
    flight}.  The version counter is shared, so a {!Dist_cache} built over
    a view still detects the parent's mutations between waves. *)

type t

type edge = Topology.edge

val of_topology : Topology.t -> t
(** Fresh state over a topology: weights at their base values, every node
    and edge enabled, version 0, empty journal.  Any number of states may
    share one topology. *)

val of_builder : Wgraph.t -> t
(** [of_topology (Wgraph.freeze b)] — the usual way to finish building. *)

val topology : t -> Topology.t

val num_nodes : t -> int

val num_edges : t -> int
(** Total number of edges (including currently disabled ones). *)

val weight : t -> edge -> float

val set_weight : t -> edge -> float -> unit

val add_weight : t -> edge -> float -> unit
(** [add_weight g e dw] increments the weight (congestion update). *)

val endpoints : t -> edge -> int * int

val other_end : t -> edge -> int -> int
(** [other_end g e u] is the endpoint of [e] that is not [u].
    @raise Invalid_argument if [u] is not an endpoint of [e]. *)

val edge_enabled : t -> edge -> bool

val disable_edge : t -> edge -> unit

val enable_edge : t -> edge -> unit

val node_enabled : t -> int -> bool

val disable_node : t -> int -> unit
(** Disabling a node hides it and all incident edges from traversals. *)

val enable_node : t -> int -> unit

val version : t -> int
(** Monotone counter bumped by every effective weight or enable/disable
    mutation, and by every non-empty {!rollback}. *)

val iter_adj : t -> int -> (edge -> int -> float -> unit) -> unit
(** [iter_adj g u f] calls [f e v w] for every enabled incident edge [e]
    leading to an enabled neighbor [v] with weight [w].  If [u] itself is
    disabled nothing is visited. *)

val fold_adj : t -> int -> ('a -> edge -> int -> float -> 'a) -> 'a -> 'a

val degree : t -> int -> int
(** Number of enabled incident edges (to enabled neighbors). *)

val find_edge : t -> int -> int -> edge option
(** Some enabled edge between the two nodes, if any (minimum weight one). *)

val iter_edges : t -> (edge -> int -> int -> float -> unit) -> unit
(** Iterates enabled edges with both endpoints enabled. *)

val mean_edge_weight : t -> float
(** Average weight over enabled edges — the paper's congestion statistic
    (w̄). *)

val copy : t -> t
(** Independent state sharing the same topology; version and journal start
    fresh.  Copying a read-only view yields a fresh {e mutable} state. *)

val read_only_view : t -> t
(** A view sharing this state's arrays, version and journal.  Reads through
    the view see the parent's current state; {!set_weight}, {!add_weight},
    {!set_node}, {!set_edge}, the enable/disable wrappers, {!rollback} and
    {!commit} all raise [Invalid_argument].  {!checkpoint} is permitted
    (it only reads the journal position). *)

val is_read_only : t -> bool

(** {2 Checkpoint / rollback} *)

type checkpoint
(** A position in the undo journal.  Checkpoints obey stack discipline:
    nesting is fine, but once an inner span has been {!commit}ted, rolling
    back to a checkpoint taken {e before} that commit is unsound and must
    not be attempted. *)

val checkpoint : t -> checkpoint

val rollback : t -> checkpoint -> unit
(** Restore the exact state (weights and enable flags) at the checkpoint,
    undoing journal entries newest-first — O(entries written since the
    checkpoint).  Bumps {!version} if anything was undone; the checkpoint
    remains valid for further rollbacks.
    @raise Invalid_argument on a checkpoint invalidated by an earlier
    rollback past it. *)

val commit : t -> checkpoint -> unit
(** Accept all mutations since the checkpoint: the journal is truncated to
    the mark without touching the state, so the entries can no longer be
    undone.  The state itself is unchanged (no version bump). *)

val journal_depth : t -> int
(** Current number of live journal entries. *)

(** {2 Counters} (monotone over the state's lifetime) *)

val mutations : t -> int
(** Effective mutations applied (journal entries written). *)

val rollbacks : t -> int
(** Number of {!rollback} calls. *)

val rollback_entries : t -> int
(** Total journal entries undone across all rollbacks — the actual
    restore work, to compare against O(V+E) full-graph scans. *)

val peak_journal_depth : t -> int
(** High-water mark of {!journal_depth} since creation or the last
    {!reset_peak_journal_depth}. *)

val reset_peak_journal_depth : t -> unit
(** Restart the {!peak_journal_depth} high-water mark at the current
    {!journal_depth}.  Callers that report a per-call peak (the router
    resets at every [route] entry; the ECO layer at every request) would
    otherwise re-report the lifetime maximum of a long-lived state. *)

(** {2 Hot-loop accessors}

    Direct views of the internal arrays for traversal inner loops
    ({!Dijkstra}) that cannot afford per-edge closure calls.  Read-only by
    contract: writing through them bypasses the journal and the version
    counter. *)

val unsafe_weights : t -> float array

val unsafe_node_bits : t -> Fr_util.Bitset.t

val unsafe_edge_bits : t -> Fr_util.Bitset.t
