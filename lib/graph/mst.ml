let prim_dense ~n ~weight =
  if n <= 1 then ([], 0.)
  else begin
    let in_tree = Array.make n false in
    let best = Array.make n infinity in
    let best_from = Array.make n (-1) in
    let edges = ref [] in
    let cost = ref 0. in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      best.(j) <- weight 0 j;
      best_from.(j) <- 0
    done;
    for _ = 1 to n - 1 do
      let pick = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!pick = -1 || best.(j) < best.(!pick)) then pick := j
      done;
      let j = !pick in
      in_tree.(j) <- true;
      cost := !cost +. best.(j);
      if best_from.(j) >= 0 then edges := (best_from.(j), j) :: !edges;
      for k = 0 to n - 1 do
        if not in_tree.(k) then begin
          let w = weight j k in
          if w < best.(k) then begin
            best.(k) <- w;
            best_from.(k) <- j
          end
        end
      done
    done;
    (!edges, !cost)
  end

let kruskal ~nodes ~edges =
  (* Compact arbitrary node ids. *)
  let index = Hashtbl.create 64 in
  let count = ref 0 in
  let intern u =
    match Hashtbl.find_opt index u with
    | Some i -> i
    | None ->
        let i = !count in
        Hashtbl.add index u i;
        incr count;
        i
  in
  List.iter (fun u -> ignore (intern u)) nodes;
  List.iter
    (fun (u, v, _, _) ->
      ignore (intern u);
      ignore (intern v))
    edges;
  let n = !count in
  if n <= 1 then ([], 0.)
  else begin
    let sorted =
      List.sort
        (fun (_, _, w1, t1) (_, _, w2, t2) ->
          match Float.compare w1 w2 with 0 -> Int.compare t1 t2 | c -> c)
        edges
    in
    let dsu = Dsu.create n in
    let chosen = ref [] in
    let cost = ref 0. in
    List.iter
      (fun ((u, v, w, _) as e) ->
        let iu = intern u and iv = intern v in
        if iu <> iv && Dsu.union dsu iu iv then begin
          chosen := e :: !chosen;
          cost := !cost +. w
        end)
      sorted;
    let cost = if Dsu.count dsu > 1 then infinity else !cost in
    (List.rev !chosen, cost)
  end
