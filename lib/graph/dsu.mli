(** Union–find with path compression and union by rank (Kruskal substrate). *)

type t

val create : int -> t

val find : t -> int -> int

val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b]; returns [false] when
    they were already in the same class. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint classes currently represented. *)
