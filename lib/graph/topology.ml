type edge = int

type t = {
  n : int;
  m : int;
  off : int array;
  pack : int array;
  eu : int array;
  ev : int array;
  base : float array;
}

(* CSR construction by counting sort.  Each undirected edge contributes one
   (neighbor, edge id) pair to both endpoints; pairs are laid out in
   increasing edge-id order per node, which reproduces the adjacency order
   of the old Vec-of-edges representation bit for bit (Dijkstra's
   equal-distance tie-breaking depends on it). *)
let make ~n ~eu ~ev ~base =
  let m = Array.length eu in
  let mv = Array.length ev and mw = Array.length base in
  if mv <> m || mw <> m then invalid_arg "Topology.make: endpoint/weight arrays disagree";
  let off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    off.(eu.(e)) <- off.(eu.(e)) + 2;
    off.(ev.(e)) <- off.(ev.(e)) + 2
  done;
  let total = ref 0 in
  for u = 0 to n - 1 do
    let c = off.(u) in
    off.(u) <- !total;
    total := !total + c
  done;
  off.(n) <- !total;
  let cur = Array.copy off in
  let pack = Array.make (4 * m) 0 in
  for e = 0 to m - 1 do
    let u = eu.(e) and v = ev.(e) in
    pack.(cur.(u)) <- v;
    pack.(cur.(u) + 1) <- e;
    cur.(u) <- cur.(u) + 2;
    pack.(cur.(v)) <- u;
    pack.(cur.(v) + 1) <- e;
    cur.(v) <- cur.(v) + 2
  done;
  { n; m; off; pack; eu; ev; base }

let num_nodes t = t.n

let num_edges t = t.m

let endpoints t e = (t.eu.(e), t.ev.(e))

let other_end t e u =
  let a = t.eu.(e) and b = t.ev.(e) in
  if u = a then b
  else if u = b then a
  else invalid_arg "Topology.other_end: node not an endpoint"

let base_weight t e = t.base.(e)
