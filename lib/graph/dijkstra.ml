module Bitset = Fr_util.Bitset

(* Resumption state: everything needed to settle more nodes later.  The
   dist/parent arrays of the owning [result] are refined in place, so a
   partial run transparently *extends* into a full one. *)
type state = {
  g : Gstate.t;
  ver : int;  (* Gstate.version at creation; resuming after a mutation is unsound *)
  allowed : int -> bool;
  edge_allowed : Gstate.edge -> bool;
  heap : Heap.t;
  settled : bool array;
  mutable settled_count : int;
  mutable exhausted : bool;
}

type result = {
  src : int;
  dist : float array;
  parent_edge : int array;
  parent_node : int array;
  state : state;
}

let settled_count r = r.state.settled_count

let is_settled r v = r.state.settled.(v)

let complete r = r.state.exhausted

(* Settle nodes in distance order until [stop u] holds for a just-settled
   node [u], or the heap runs dry.  The inner loop walks the CSR arrays of
   the frozen topology directly — no closure per edge, no bounds checks —
   which is the point of the Topology/Gstate split. *)
let drain_until r stop =
  let st = r.state in
  let topo = Gstate.topology st.g in
  let off = topo.Topology.off and pack = topo.Topology.pack in
  let wts = Gstate.unsafe_weights st.g in
  let n_on = Gstate.unsafe_node_bits st.g and e_on = Gstate.unsafe_edge_bits st.g in
  let settled = st.settled in
  let dist = r.dist and parent_edge = r.parent_edge and parent_node = r.parent_node in
  let rec loop () =
    match Heap.pop_min st.heap with
    | None -> st.exhausted <- true
    | Some (d, u) ->
        if Array.unsafe_get settled u then loop ()
        else begin
          Array.unsafe_set settled u true;
          st.settled_count <- st.settled_count + 1;
          (* [d] can be stale only if u was reachable more cheaply, in which
             case settled.(u) was already set.  Here d = dist.(u). *)
          if Bitset.get n_on u then begin
            let k = ref (Array.unsafe_get off u) in
            let hi = Array.unsafe_get off (u + 1) in
            while !k < hi do
              let v = Array.unsafe_get pack !k in
              let e = Array.unsafe_get pack (!k + 1) in
              if
                Bitset.get e_on e
                && Bitset.get n_on v
                && (not (Array.unsafe_get settled v))
                && st.allowed v && st.edge_allowed e
              then begin
                let nd = d +. Array.unsafe_get wts e in
                if nd < Array.unsafe_get dist v then begin
                  Array.unsafe_set dist v nd;
                  Array.unsafe_set parent_edge v e;
                  Array.unsafe_set parent_node v u;
                  Heap.push st.heap nd v
                end
              end;
              k := !k + 2
            done
          end;
          if not (stop u) then loop ()
        end
  in
  if not st.exhausted then loop ()

(* [what] names the public entry point that needed to resume, so a
   staleness error points at the call that actually tripped it. *)
let check_resumable st what =
  let ver = Gstate.version st.g in
  if ver <> st.ver then
    invalid_arg ("Dijkstra." ^ what ^ ": graph mutated since the run started")

let extend_all r =
  if not r.state.exhausted then begin
    check_resumable r.state "extend_all";
    drain_until r (fun _ -> false)
  end

let extend_from r ~what ~targets =
  let st = r.state in
  if not st.exhausted then begin
    let n = Array.length r.dist in
    let pending = Hashtbl.create 8 in
    List.iter
      (fun v ->
        if v < 0 || v >= n then invalid_arg ("Dijkstra." ^ what ^ ": target out of range");
        if not st.settled.(v) then Hashtbl.replace pending v ())
      targets;
    if Hashtbl.length pending > 0 then begin
      check_resumable st what;
      drain_until r (fun u ->
          Hashtbl.remove pending u;
          Hashtbl.length pending = 0)
    end
  end

let extend r ~targets = extend_from r ~what:"extend" ~targets

let run ?restrict ?edge_ok ?targets g ~src =
  let n = Gstate.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  let allowed = match restrict with None -> fun _ -> true | Some p -> fun u -> u = src || p u in
  let edge_allowed = match edge_ok with None -> fun _ -> true | Some p -> p in
  let state =
    {
      g;
      ver = Gstate.version g;
      allowed;
      edge_allowed;
      heap = Heap.create ~capacity:64 ();
      settled = Array.make n false;
      settled_count = 0;
      exhausted = false;
    }
  in
  let r =
    {
      src;
      dist = Array.make n infinity;
      parent_edge = Array.make n (-1);
      parent_node = Array.make n (-1);
      state;
    }
  in
  r.dist.(src) <- 0.;
  Heap.push state.heap 0. src;
  (match targets with
  | None -> extend_all r
  | Some ts -> extend_from r ~what:"run" ~targets:ts);
  r

(* Accessors settle on demand, so a targeted result answers queries beyond
   its original targets exactly like a full run would. *)
let ensure r ~what v =
  let st = r.state in
  if not (st.exhausted || st.settled.(v)) then begin
    check_resumable st what;
    drain_until r (fun u -> u = v)
  end

let dist r v =
  ensure r ~what:"dist" v;
  r.dist.(v)

let reachable r v =
  ensure r ~what:"reachable" v;
  r.dist.(v) < infinity

let path_edges r v =
  ensure r ~what:"path_edges" v;
  if r.dist.(v) = infinity then invalid_arg "Dijkstra.path_edges: unreachable node";
  let rec up v acc = if v = r.src then acc else up r.parent_node.(v) (r.parent_edge.(v) :: acc) in
  up v []

let path_nodes r v =
  ensure r ~what:"path_nodes" v;
  if r.dist.(v) = infinity then invalid_arg "Dijkstra.path_nodes: unreachable node";
  let rec up v acc = if v = r.src then v :: acc else up r.parent_node.(v) (v :: acc) in
  up v []

let spt_edges r =
  extend_all r;
  let acc = ref [] in
  Array.iter (fun e -> if e >= 0 then acc := e :: !acc) r.parent_edge;
  !acc
