module Bitset = Fr_util.Bitset

(* A future-cost lower bound h carries an identity so caches can key
   memoized frontiers on it: a frontier opened under one h must never be
   resumed under another (the settled prefix would no longer be an
   f-order prefix).  Ids come from a global atomic counter — they only
   ever feed cache keys, never search results, so the process-global
   state cannot perturb determinism across domains. *)
type heuristic = {
  hid : int;
  hf : int -> float;
}

let heuristic_ids = Atomic.make 0

let heuristic hf = { hid = Atomic.fetch_and_add heuristic_ids 1; hf }

let heuristic_id h = h.hid

let heuristic_eval h = h.hf

(* Resumption state: everything needed to settle more nodes later.  The
   dist/parent arrays of the owning [result] are refined in place, so a
   partial run transparently *extends* into a full one. *)
type state = {
  g : Gstate.t;
  ver : int;  (* Gstate.version at creation; resuming after a mutation is unsound *)
  allowed : int -> bool;
  edge_allowed : Gstate.edge -> bool;
  pq : Pq.t;
  future : heuristic option;
  mutable h_evals : int;
  settled : bool array;
  mutable settled_count : int;
  mutable exhausted : bool;
}

type result = {
  src : int;
  dist : float array;
  parent_edge : int array;
  parent_node : int array;
  state : state;
}

let settled_count r = r.state.settled_count

let future_cost_evals r = r.state.h_evals

let is_settled r v = r.state.settled.(v)

let complete r = r.state.exhausted

(* Settle nodes in frontier order until [stop u] holds for a just-settled
   node [u], or the queue runs dry.  The inner loop walks the CSR arrays of
   the frozen topology directly — no closure per edge, no bounds checks —
   which is the point of the Topology/Gstate split.

   Frontier keys are f = g + h (plain g when no heuristic), with the true
   distance g as tie and the push sequence breaking full ties, so pops
   follow strict (f, g, seq) order.  Under an admissible *and consistent*
   h every edge satisfies h(u) <= w(u,v) + h(v), hence f never decreases
   along a shortest path and a node's first pop carries its final g — the
   settled-prefix-is-final invariant survives goal-direction unchanged
   (argument in DESIGN.md §4.8).  [dist] always stores g, never f; the
   popped priority is only an ordering key and is re-read from [dist].

   Relaxation is canonical: a strictly shorter path replaces dist and
   parent; an *equally* short path re-points the parent at the smaller
   edge id without re-pushing (same g, same f — the queued entry is still
   correctly keyed).  Every optimal predecessor of v pops before v does
   (its f is <= v's by consistency, and its g is strictly smaller since
   weights are positive, so the (f, g, seq) order places it first), so
   after v settles its parent is the minimum-edge-id optimal predecessor —
   a pure graph property, independent of the queue implementation and of
   whether a heuristic was supplied.  That is what keeps routed trees
   bit-identical across A* on/off and binary/bucket queues. *)
let drain_until r stop =
  let st = r.state in
  let topo = Gstate.topology st.g in
  let off = topo.Topology.off and pack = topo.Topology.pack in
  let wts = Gstate.unsafe_weights st.g in
  let n_on = Gstate.unsafe_node_bits st.g and e_on = Gstate.unsafe_edge_bits st.g in
  let settled = st.settled in
  let dist = r.dist and parent_edge = r.parent_edge and parent_node = r.parent_node in
  let rec loop () =
    match Pq.pop_min st.pq with
    | None -> st.exhausted <- true
    | Some (_, u) ->
        if Array.unsafe_get settled u then loop ()
        else begin
          Array.unsafe_set settled u true;
          st.settled_count <- st.settled_count + 1;
          (* The popped key can be stale only if u was reachable more
             cheaply, in which case settled.(u) was already set.  Here the
             entry is fresh and dist.(u) = g(u) is final. *)
          let d = Array.unsafe_get dist u in
          if Bitset.get n_on u then begin
            let k = ref (Array.unsafe_get off u) in
            let hi = Array.unsafe_get off (u + 1) in
            while !k < hi do
              let v = Array.unsafe_get pack !k in
              let e = Array.unsafe_get pack (!k + 1) in
              if
                Bitset.get e_on e
                && Bitset.get n_on v
                && (not (Array.unsafe_get settled v))
                && st.allowed v && st.edge_allowed e
              then begin
                let nd = d +. Array.unsafe_get wts e in
                let dv = Array.unsafe_get dist v in
                if nd < dv then begin
                  Array.unsafe_set dist v nd;
                  Array.unsafe_set parent_edge v e;
                  Array.unsafe_set parent_node v u;
                  let f =
                    match st.future with
                    | None -> nd
                    | Some h ->
                        st.h_evals <- st.h_evals + 1;
                        nd +. h.hf v
                  in
                  Pq.push st.pq ~prio:f ~tie:nd v
                end
                else if nd <= dv && e < Array.unsafe_get parent_edge v then begin
                  (* nd = dv: same g, same f — canonicalize the parent to
                     the smallest edge id, no re-push needed. *)
                  Array.unsafe_set parent_edge v e;
                  Array.unsafe_set parent_node v u
                end
              end;
              k := !k + 2
            done
          end;
          if not (stop u) then loop ()
        end
  in
  if not st.exhausted then loop ()

(* [what] names the public entry point that needed to resume, so a
   staleness error points at the call that actually tripped it. *)
let check_resumable st what =
  let ver = Gstate.version st.g in
  if ver <> st.ver then
    invalid_arg ("Dijkstra." ^ what ^ ": graph mutated since the run started")

let extend_all r =
  if not r.state.exhausted then begin
    check_resumable r.state "extend_all";
    drain_until r (fun _ -> false)
  end

let extend_from r ~what ~targets =
  let st = r.state in
  if not st.exhausted then begin
    let n = Array.length r.dist in
    let pending = Hashtbl.create 8 in
    List.iter
      (fun v ->
        if v < 0 || v >= n then invalid_arg ("Dijkstra." ^ what ^ ": target out of range");
        if not st.settled.(v) then Hashtbl.replace pending v ())
      targets;
    if Hashtbl.length pending > 0 then begin
      check_resumable st what;
      drain_until r (fun u ->
          Hashtbl.remove pending u;
          Hashtbl.length pending = 0)
    end
  end

let extend r ~targets = extend_from r ~what:"extend" ~targets

let run ?restrict ?edge_ok ?targets ?future_cost ?(heap = Pq.Binary) ?delta g ~src =
  let n = Gstate.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  let allowed = match restrict with None -> fun _ -> true | Some p -> fun u -> u = src || p u in
  let edge_allowed = match edge_ok with None -> fun _ -> true | Some p -> p in
  let state =
    {
      g;
      ver = Gstate.version g;
      allowed;
      edge_allowed;
      pq = Pq.create ~capacity:64 ?delta heap;
      future = future_cost;
      h_evals = 0;
      settled = Array.make n false;
      settled_count = 0;
      exhausted = false;
    }
  in
  let r =
    {
      src;
      dist = Array.make n infinity;
      parent_edge = Array.make n (-1);
      parent_node = Array.make n (-1);
      state;
    }
  in
  r.dist.(src) <- 0.;
  let f0 =
    match future_cost with
    | None -> 0.
    | Some h ->
        state.h_evals <- 1;
        h.hf src
  in
  Pq.push state.pq ~prio:f0 ~tie:0. src;
  (match targets with
  | None -> extend_all r
  | Some ts -> extend_from r ~what:"run" ~targets:ts);
  r

(* Accessors settle on demand, so a targeted result answers queries beyond
   its original targets exactly like a full run would.  This holds under a
   heuristic too: consistency makes every settled node's g exact whatever
   the original target set was — h only shapes the settling *order*. *)
let ensure r ~what v =
  let st = r.state in
  if not (st.exhausted || st.settled.(v)) then begin
    check_resumable st what;
    drain_until r (fun u -> u = v)
  end

let dist r v =
  ensure r ~what:"dist" v;
  r.dist.(v)

let reachable r v =
  ensure r ~what:"reachable" v;
  r.dist.(v) < infinity

let path_edges r v =
  ensure r ~what:"path_edges" v;
  if r.dist.(v) = infinity then invalid_arg "Dijkstra.path_edges: unreachable node";
  let rec up v acc = if v = r.src then acc else up r.parent_node.(v) (r.parent_edge.(v) :: acc) in
  up v []

let path_nodes r v =
  ensure r ~what:"path_nodes" v;
  if r.dist.(v) = infinity then invalid_arg "Dijkstra.path_nodes: unreachable node";
  let rec up v acc = if v = r.src then v :: acc else up r.parent_node.(v) (v :: acc) in
  up v []

let spt_edges r =
  extend_all r;
  let acc = ref [] in
  Array.iter (fun e -> if e >= 0 then acc := e :: !acc) r.parent_edge;
  !acc
