(* Resumption state: everything needed to settle more nodes later.  The
   dist/parent arrays of the owning [result] are refined in place, so a
   partial run transparently *extends* into a full one. *)
type state = {
  g : Wgraph.t;
  ver : int;  (* Wgraph.version at creation; resuming after a mutation is unsound *)
  allowed : int -> bool;
  edge_allowed : Wgraph.edge -> bool;
  heap : Heap.t;
  settled : bool array;
  mutable settled_count : int;
  mutable exhausted : bool;
}

type result = {
  src : int;
  dist : float array;
  parent_edge : int array;
  parent_node : int array;
  state : state;
}

let settled_count r = r.state.settled_count

let is_settled r v = r.state.settled.(v)

let complete r = r.state.exhausted

(* Settle nodes in distance order until [stop u] holds for a just-settled
   node [u], or the heap runs dry. *)
let drain_until r stop =
  let st = r.state in
  let rec loop () =
    match Heap.pop_min st.heap with
    | None -> st.exhausted <- true
    | Some (d, u) ->
        if st.settled.(u) then loop ()
        else begin
          st.settled.(u) <- true;
          st.settled_count <- st.settled_count + 1;
          (* [d] can be stale only if u was reachable more cheaply, in which
             case settled.(u) was already set.  Here d = dist.(u). *)
          Wgraph.iter_adj st.g u (fun e v w ->
              if (not st.settled.(v)) && st.allowed v && st.edge_allowed e then begin
                let nd = d +. w in
                if nd < r.dist.(v) then begin
                  r.dist.(v) <- nd;
                  r.parent_edge.(v) <- e;
                  r.parent_node.(v) <- u;
                  Heap.push st.heap nd v
                end
              end);
          if not (stop u) then loop ()
        end
  in
  if not st.exhausted then loop ()

let check_resumable st what =
  if Wgraph.version st.g <> st.ver then
    invalid_arg ("Dijkstra." ^ what ^ ": graph mutated since the run started")

let extend_all r =
  if not r.state.exhausted then begin
    check_resumable r.state "extend_all";
    drain_until r (fun _ -> false)
  end

let extend r ~targets =
  let st = r.state in
  if not st.exhausted then begin
    let n = Array.length r.dist in
    let pending = Hashtbl.create 8 in
    List.iter
      (fun v ->
        if v < 0 || v >= n then invalid_arg "Dijkstra.extend: target out of range";
        if not st.settled.(v) then Hashtbl.replace pending v ())
      targets;
    if Hashtbl.length pending > 0 then begin
      check_resumable st "extend";
      drain_until r (fun u ->
          Hashtbl.remove pending u;
          Hashtbl.length pending = 0)
    end
  end

let run ?restrict ?edge_ok ?targets g ~src =
  let n = Wgraph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  let allowed = match restrict with None -> fun _ -> true | Some p -> fun u -> u = src || p u in
  let edge_allowed = match edge_ok with None -> fun _ -> true | Some p -> p in
  let state =
    {
      g;
      ver = Wgraph.version g;
      allowed;
      edge_allowed;
      heap = Heap.create ~capacity:64 ();
      settled = Array.make n false;
      settled_count = 0;
      exhausted = false;
    }
  in
  let r =
    {
      src;
      dist = Array.make n infinity;
      parent_edge = Array.make n (-1);
      parent_node = Array.make n (-1);
      state;
    }
  in
  r.dist.(src) <- 0.;
  Heap.push state.heap 0. src;
  (match targets with None -> extend_all r | Some ts -> extend r ~targets:ts);
  r

(* Accessors settle on demand, so a targeted result answers queries beyond
   its original targets exactly like a full run would. *)
let ensure r v =
  let st = r.state in
  if not (st.exhausted || st.settled.(v)) then begin
    check_resumable st "extend";
    drain_until r (fun u -> u = v)
  end

let dist r v =
  ensure r v;
  r.dist.(v)

let reachable r v =
  ensure r v;
  r.dist.(v) < infinity

let path_edges r v =
  if not (reachable r v) then invalid_arg "Dijkstra.path_edges: unreachable node";
  let rec up v acc = if v = r.src then acc else up r.parent_node.(v) (r.parent_edge.(v) :: acc) in
  up v []

let path_nodes r v =
  if not (reachable r v) then invalid_arg "Dijkstra.path_nodes: unreachable node";
  let rec up v acc = if v = r.src then v :: acc else up r.parent_node.(v) (v :: acc) in
  up v []

let spt_edges r =
  extend_all r;
  let acc = ref [] in
  Array.iter (fun e -> if e >= 0 then acc := e :: !acc) r.parent_edge;
  !acc
