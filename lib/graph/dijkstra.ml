type result = {
  src : int;
  dist : float array;
  parent_edge : int array;
  parent_node : int array;
}

let run ?restrict ?edge_ok g ~src =
  let n = Wgraph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  let dist = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let parent_node = Array.make n (-1) in
  let settled = Array.make n false in
  let allowed u = match restrict with None -> true | Some p -> u = src || p u in
  let edge_allowed e = match edge_ok with None -> true | Some p -> p e in
  let heap = Heap.create ~capacity:(2 * n) () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          (* [d] can be stale only if u was reachable more cheaply, in which
             case settled.(u) was already set.  Here d = dist.(u). *)
          Wgraph.iter_adj g u (fun e v w ->
              if (not settled.(v)) && allowed v && edge_allowed e then begin
                let nd = d +. w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent_edge.(v) <- e;
                  parent_node.(v) <- u;
                  Heap.push heap nd v
                end
              end)
        end;
        loop ()
  in
  loop ();
  { src; dist; parent_edge; parent_node }

let dist r v = r.dist.(v)

let reachable r v = r.dist.(v) < infinity

let path_edges r v =
  if not (reachable r v) then invalid_arg "Dijkstra.path_edges: unreachable node";
  let rec up v acc = if v = r.src then acc else up r.parent_node.(v) (r.parent_edge.(v) :: acc) in
  up v []

let path_nodes r v =
  if not (reachable r v) then invalid_arg "Dijkstra.path_nodes: unreachable node";
  let rec up v acc = if v = r.src then v :: acc else up r.parent_node.(v) (v :: acc) in
  up v []

let spt_edges r =
  let acc = ref [] in
  Array.iter (fun e -> if e >= 0 then acc := e :: !acc) r.parent_edge;
  !acc
