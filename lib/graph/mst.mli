(** Minimum spanning trees.

    Two flavours are needed by the paper's constructions:
    - Prim on a dense, implicitly-given complete graph — for the "distance
      graph" over a net (KMB step 2, ZEL's [MST(G')], DOM's distance-graph
      arborescence);
    - Kruskal on an explicit sparse edge list — for [MST(G'')] over the
      union of expanded shortest paths (KMB step 4). *)

val prim_dense : n:int -> weight:(int -> int -> float) -> (int * int) list * float
(** [prim_dense ~n ~weight] computes an MST of the complete graph over
    nodes [0..n-1] with symmetric weight function [weight].  Returns tree
    edges (as index pairs) and total cost.  With [n <= 1] the tree is empty
    with cost 0.  Unconnected pairs may be encoded with [infinity]; if the
    graph is disconnected the returned cost is [infinity]. *)

val kruskal :
  nodes:int list ->
  edges:(int * int * float * int) list ->
  (int * int * float * int) list * float
(** [kruskal ~nodes ~edges] computes an MST (or forest, if disconnected —
    then the cost is [infinity]) of the graph whose node set is [nodes] and
    whose edges are [(u, v, w, tag)] tuples; node ids are arbitrary ints.
    Returns the chosen edges and total cost.  Ties are broken by [tag] so
    results are deterministic. *)
