type t = { edges : Gstate.edge list }

let of_edges edges = { edges = List.sort_uniq compare edges }

let empty = { edges = [] }

let cost g t = List.fold_left (fun acc e -> acc +. Gstate.weight g e) 0. t.edges

let nodes g t =
  List.concat_map
    (fun e ->
      let u, v = Gstate.endpoints g e in
      [ u; v ])
    t.edges
  |> List.sort_uniq compare

let mem_node g t v = List.mem v (nodes g t)

(* Adjacency of the tree as an association table: node -> (edge, nbr, w). *)
let adjacency g t =
  let tbl = Hashtbl.create (2 * List.length t.edges) in
  let add u x =
    let cur = try Hashtbl.find tbl u with Not_found -> [] in
    Hashtbl.replace tbl u (x :: cur)
  in
  List.iter
    (fun e ->
      let u, v = Gstate.endpoints g e in
      let w = Gstate.weight g e in
      add u (e, v, w);
      add v (e, u, w))
    t.edges;
  tbl

let is_tree g t =
  match nodes g t with
  | [] -> true
  | root :: _ as ns ->
      let n = List.length ns and m = List.length t.edges in
      if m <> n - 1 then false
      else begin
        (* Acyclicity follows from |E| = |V|-1 + connectivity; check
           connectivity by traversal. *)
        let adj = adjacency g t in
        let seen = Hashtbl.create n in
        let rec dfs u =
          if not (Hashtbl.mem seen u) then begin
            Hashtbl.add seen u ();
            List.iter (fun (_, v, _) -> dfs v) (try Hashtbl.find adj u with Not_found -> [])
          end
        in
        dfs root;
        Hashtbl.length seen = n
      end

let spans g t terminals =
  match (terminals, t.edges) with
  | [], _ -> true
  | [ _ ], [] -> true
  | _ ->
      let ns = nodes g t in
      List.for_all (fun x -> List.mem x ns) terminals

let uses_only_enabled g t =
  List.for_all
    (fun e ->
      let u, v = Gstate.endpoints g e in
      Gstate.edge_enabled g e && Gstate.node_enabled g u && Gstate.node_enabled g v)
    t.edges

let path_lengths_from g t ~src =
  let adj = adjacency g t in
  if (not (Hashtbl.mem adj src)) && t.edges <> [] then
    invalid_arg "Tree.path_lengths_from: source not in tree";
  let dist = Hashtbl.create 64 in
  let rec dfs u d =
    Hashtbl.replace dist u d;
    List.iter
      (fun (_, v, w) -> if not (Hashtbl.mem dist v) then dfs v (d +. w))
      (try Hashtbl.find adj u with Not_found -> [])
  in
  dfs src 0.;
  Hashtbl.fold (fun v d acc -> (v, d) :: acc) dist []

let path_length g t ~src ~dst =
  let all = path_lengths_from g t ~src in
  match List.assoc_opt dst all with
  | Some d -> d
  | None -> invalid_arg "Tree.path_length: destination not connected to source in tree"

let max_path_length g t ~src ~sinks =
  let all = path_lengths_from g t ~src in
  List.fold_left
    (fun acc s ->
      match List.assoc_opt s all with
      | Some d -> max acc d
      | None -> invalid_arg "Tree.max_path_length: sink not in tree")
    0. sinks

let prune g t ~keep =
  let keep_tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace keep_tbl v ()) keep;
  let rec go edges =
    let deg = Hashtbl.create 64 in
    let bump u = Hashtbl.replace deg u (1 + try Hashtbl.find deg u with Not_found -> 0) in
    List.iter
      (fun e ->
        let u, v = Gstate.endpoints g e in
        bump u;
        bump v)
      edges;
    let is_prunable_leaf u = (not (Hashtbl.mem keep_tbl u)) && Hashtbl.find deg u = 1 in
    let edges' =
      List.filter
        (fun e ->
          let u, v = Gstate.endpoints g e in
          not (is_prunable_leaf u || is_prunable_leaf v))
        edges
    in
    if List.length edges' = List.length edges then edges else go edges'
  in
  { edges = go t.edges }

let union a b = of_edges (a.edges @ b.edges)
