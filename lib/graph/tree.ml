type t = { edges : Gstate.edge list }

let of_edges edges = { edges = List.sort_uniq Int.compare edges }

let empty = { edges = [] }

let cost g t = List.fold_left (fun acc e -> acc +. Gstate.weight g e) 0. t.edges

(* Distinct nodes touched by the tree, as a hash set: O(edges) to build and
   O(1) per membership probe, so callers never pay a linear scan. *)
let node_set g t =
  let tbl = Hashtbl.create ((2 * List.length t.edges) + 1) in
  List.iter
    (fun e ->
      let u, v = Gstate.endpoints g e in
      Hashtbl.replace tbl u ();
      Hashtbl.replace tbl v ())
    t.edges;
  tbl

let nodes g t =
  Hashtbl.fold (fun v () acc -> v :: acc) (node_set g t) [] |> List.sort Int.compare

let mem_node g t v = Hashtbl.mem (node_set g t) v

(* Adjacency of the tree as an association table: node -> (edge, nbr, w). *)
let adjacency g t =
  let tbl = Hashtbl.create (2 * List.length t.edges) in
  let add u x =
    let cur = try Hashtbl.find tbl u with Not_found -> [] in
    Hashtbl.replace tbl u (x :: cur)
  in
  List.iter
    (fun e ->
      let u, v = Gstate.endpoints g e in
      let w = Gstate.weight g e in
      add u (e, v, w);
      add v (e, u, w))
    t.edges;
  tbl

let is_tree g t =
  let ns = node_set g t in
  let n = Hashtbl.length ns in
  if n = 0 then true
  else
    let m = List.length t.edges in
    if m <> n - 1 then false
    else begin
      (* Acyclicity follows from |E| = |V|-1 + connectivity; check
         connectivity by traversal. *)
      let adj = adjacency g t in
      let seen = Hashtbl.create n in
      let rec dfs u =
        if not (Hashtbl.mem seen u) then begin
          Hashtbl.add seen u ();
          List.iter (fun (_, v, _) -> dfs v) (try Hashtbl.find adj u with Not_found -> [])
        end
      in
      (match t.edges with
      | [] -> ()
      | e :: _ ->
          let root, _ = Gstate.endpoints g e in
          dfs root);
      let reached = Hashtbl.length seen in
      reached = n
    end

let spans g t terminals =
  match (terminals, t.edges) with
  | [], _ -> true
  | [ _ ], [] -> true
  | _ ->
      let ns = node_set g t in
      List.for_all (fun x -> Hashtbl.mem ns x) terminals

let uses_only_enabled g t =
  List.for_all
    (fun e ->
      let u, v = Gstate.endpoints g e in
      Gstate.edge_enabled g e && Gstate.node_enabled g u && Gstate.node_enabled g v)
    t.edges

(* Shared traversal behind the pathlength API; [what] names the public
   entry point so a raised Invalid_argument points at the real caller. *)
let path_table_for g t ~src ~what =
  let adj = adjacency g t in
  if (not (Hashtbl.mem adj src)) && t.edges <> [] then
    invalid_arg ("Tree." ^ what ^ ": source not in tree");
  let dist = Hashtbl.create 64 in
  let rec dfs u d =
    Hashtbl.replace dist u d;
    List.iter
      (fun (_, v, w) -> if not (Hashtbl.mem dist v) then dfs v (d +. w))
      (try Hashtbl.find adj u with Not_found -> [])
  in
  dfs src 0.;
  dist

let path_table g t ~src = path_table_for g t ~src ~what:"path_table"

let path_lengths_from g t ~src =
  Hashtbl.fold
    (fun v d acc -> (v, d) :: acc)
    (path_table_for g t ~src ~what:"path_lengths_from")
    []

let path_length g t ~src ~dst =
  let all = path_table_for g t ~src ~what:"path_length" in
  match Hashtbl.find_opt all dst with
  | Some d -> d
  | None -> invalid_arg "Tree.path_length: destination not connected to source in tree"

let max_path_length g t ~src ~sinks =
  let all = path_table_for g t ~src ~what:"max_path_length" in
  List.fold_left
    (fun acc s ->
      match Hashtbl.find_opt all s with
      | Some d -> Float.max acc d
      | None -> invalid_arg "Tree.max_path_length: sink not in tree")
    0. sinks

let prune g t ~keep =
  let keep_tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace keep_tbl v ()) keep;
  let rec go edges =
    let deg = Hashtbl.create 64 in
    let bump u = Hashtbl.replace deg u (1 + try Hashtbl.find deg u with Not_found -> 0) in
    List.iter
      (fun e ->
        let u, v = Gstate.endpoints g e in
        bump u;
        bump v)
      edges;
    let is_prunable_leaf u = (not (Hashtbl.mem keep_tbl u)) && Hashtbl.find deg u = 1 in
    let edges' =
      List.filter
        (fun e ->
          let u, v = Gstate.endpoints g e in
          not (is_prunable_leaf u || is_prunable_leaf v))
        edges
    in
    let kept = List.length edges' and before = List.length edges in
    if kept = before then edges else go edges'
  in
  { edges = go t.edges }

let union a b = of_edges (a.edges @ b.edges)
