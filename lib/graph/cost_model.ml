type params = {
  present_factor : float;
  present_growth : float;
  history_factor : float;
  capacity : int;
}

let default_params =
  { present_factor = 0.5; present_growth = 1.3; history_factor = 0.4; capacity = 1 }

type t = {
  g : Gstate.t;
  params : params;
  base : float array;  (* weights at creation: the pre-congestion costs *)
  usage : int array;  (* nets recorded per node, this iteration *)
  hist : float array;  (* accumulated history price per node *)
  (* Nodes with usage > 0, so per-iteration resets and overuse scans cost
     O(nodes actually routed through), not O(V). *)
  mutable touched : int list;
  mutable present_factor_now : float;
  mutable epoch : int;
}

let create ?(params = default_params) g =
  if Gstate.is_read_only g then invalid_arg "Cost_model.create: read-only view";
  if params.present_factor < 0. || params.history_factor < 0. then
    invalid_arg "Cost_model.create: negative price factor";
  if params.present_growth < 1. then invalid_arg "Cost_model.create: present_growth must be >= 1";
  if params.capacity < 1 then invalid_arg "Cost_model.create: capacity must be >= 1";
  let n = Gstate.num_nodes g in
  {
    g;
    params;
    base = Array.init (Gstate.num_edges g) (Gstate.weight g);
    usage = Array.make n 0;
    hist = Array.make n 0.;
    touched = [];
    present_factor_now = params.present_factor;
    epoch = 0;
  }

let params t = t.params

let epoch t = t.epoch

let begin_iteration t =
  List.iter (fun v -> t.usage.(v) <- 0) t.touched;
  t.touched <- []

let use_nodes t nodes =
  List.iter
    (fun v ->
      if t.usage.(v) = 0 then t.touched <- v :: t.touched;
      t.usage.(v) <- t.usage.(v) + 1)
    nodes

(* Rip-up: remove one net's recorded usage.  The node stays in [touched]
   (resets tolerate zero entries), so this never misses bookkeeping. *)
let release_nodes t nodes =
  List.iter
    (fun v ->
      if t.usage.(v) <= 0 then invalid_arg "Cost_model.release_nodes: node is not in use";
      t.usage.(v) <- t.usage.(v) - 1)
    nodes

let usage t v = t.usage.(v)

let history t v = t.hist.(v)

let over t v = t.usage.(v) - t.params.capacity

let overuse t =
  List.fold_left (fun acc v -> acc + Int.max 0 (over t v)) 0 t.touched

let overused_nodes t =
  List.filter (fun v -> over t v > 0) t.touched |> List.sort Int.compare

let escalate t =
  List.iter
    (fun v ->
      let o = over t v in
      if o > 0 then t.hist.(v) <- t.hist.(v) +. (t.params.history_factor *. float_of_int o))
    t.touched;
  t.present_factor_now <- t.present_factor_now *. t.params.present_growth

(* Prospective present price of a node: what one MORE net would overload it
   by.  The router rips conflicted nets out of [usage] before {!apply}, so
   the remaining usage belongs to nets keeping their routes — a re-routing
   net pays for joining an occupied wire but never for its own (already
   released) footprint.  That self-exclusion is what the PathFinder
   first-order term needs; pricing full usage instead makes every net flee
   its own route and the netlist reshuffles forever. *)
let present t v =
  t.present_factor_now *. float_of_int (Int.max 0 (t.usage.(v) + 1 - t.params.capacity))

let apply t =
  let g = t.g in
  for e = 0 to Array.length t.base - 1 do
    let u, v = Gstate.endpoints g e in
    let pres = 0.5 *. (present t u +. present t v) in
    let hist = 0.5 *. (t.hist.(u) +. t.hist.(v)) in
    Gstate.set_weight g e (t.base.(e) *. (1. +. pres) *. (1. +. hist))
  done;
  t.epoch <- t.epoch + 1

let restore_base t =
  Array.iteri (fun e w -> Gstate.set_weight t.g e w) t.base
