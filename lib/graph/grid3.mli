(** Three-dimensional grid graphs.

    The paper's conclusion notes that all of its constructions generalize
    to three-dimensional FPGAs (references [1, 2]) — they are formulated
    over arbitrary weighted graphs, so the only 3D-specific piece is the
    routing substrate.  This module provides the 6-connected 3D grid
    (intra-layer wiring plus inter-layer vias, typically weighted
    differently). *)

type t = {
  graph : Gstate.t;
  width : int;  (** x extent *)
  height : int;  (** y extent *)
  depth : int;  (** z extent (layers) *)
}

val create :
  ?xy_weight:float -> ?via_weight:float -> width:int -> height:int -> depth:int -> unit -> t
(** 6-connected grid; intra-layer edges weigh [xy_weight] (default 1.),
    inter-layer via edges [via_weight] (default 2. — vias are slower than
    planar wires).  @raise Invalid_argument on empty dimensions. *)

val node : t -> x:int -> y:int -> z:int -> int
(** @raise Invalid_argument when out of range. *)

val coords : t -> int -> int * int * int

val manhattan3 : t -> int -> int -> int
(** |Δx| + |Δy| + |Δz| in grid steps (unweighted). *)
