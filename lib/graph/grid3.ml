type t = {
  graph : Gstate.t;
  width : int;
  height : int;
  depth : int;
}

let create ?(xy_weight = 1.) ?(via_weight = 2.) ~width ~height ~depth () =
  if width < 1 || height < 1 || depth < 1 then invalid_arg "Grid3.create: empty grid";
  let b = Wgraph.create ~edge_capacity:(3 * width * height * depth) (width * height * depth) in
  let id x y z = (((z * height) + y) * width) + x in
  for z = 0 to depth - 1 do
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        if x + 1 < width then ignore (Wgraph.add_edge b (id x y z) (id (x + 1) y z) xy_weight);
        if y + 1 < height then ignore (Wgraph.add_edge b (id x y z) (id x (y + 1) z) xy_weight);
        if z + 1 < depth then ignore (Wgraph.add_edge b (id x y z) (id x y (z + 1)) via_weight)
      done
    done
  done;
  { graph = Gstate.of_builder b; width; height; depth }

let node t ~x ~y ~z =
  if x < 0 || x >= t.width || y < 0 || y >= t.height || z < 0 || z >= t.depth then
    invalid_arg "Grid3.node: out of range";
  (((z * t.height) + y) * t.width) + x

let coords t v =
  let x = v mod t.width in
  let rest = v / t.width in
  (x, rest mod t.height, rest / t.height)

let manhattan3 t a b =
  let xa, ya, za = coords t a and xb, yb, zb = coords t b in
  abs (xa - xb) + abs (ya - yb) + abs (za - zb)
