(** Mutable weighted undirected graph.

    This is the routing substrate of the whole system (paper §2): nodes are
    FPGA routing resources or grid points, edge weights are wirelength plus
    congestion.  Edges and nodes can be disabled — the router removes the
    resources consumed by each routed net so that subsequent nets stay
    electrically disjoint.

    Every mutation bumps a [version] counter so that shortest-path caches
    ({!Dist_cache}) can detect staleness. *)

type t

type edge = int
(** Dense edge identifiers, assigned by {!add_edge} in order from 0. *)

val create : ?edge_capacity:int -> int -> t
(** [create n] is a graph over nodes [0 .. n-1] with no edges. *)

val num_nodes : t -> int

val num_edges : t -> int
(** Total number of edges ever added (including currently disabled ones). *)

val add_edge : t -> int -> int -> float -> edge
(** [add_edge g u v w] adds an undirected edge of weight [w >= 0.] and
    returns its id.  Self-loops are rejected; parallel edges are allowed. *)

val weight : t -> edge -> float

val set_weight : t -> edge -> float -> unit

val add_weight : t -> edge -> float -> unit
(** [add_weight g e dw] increments the weight (congestion update). *)

val endpoints : t -> edge -> int * int

val other_end : t -> edge -> int -> int
(** [other_end g e u] is the endpoint of [e] that is not [u].
    @raise Invalid_argument if [u] is not an endpoint of [e]. *)

val edge_enabled : t -> edge -> bool

val disable_edge : t -> edge -> unit

val enable_edge : t -> edge -> unit

val node_enabled : t -> int -> bool

val disable_node : t -> int -> unit
(** Disabling a node hides it and all incident edges from traversals. *)

val enable_node : t -> int -> unit

val version : t -> int
(** Monotone counter bumped by every weight or enable/disable mutation. *)

val iter_adj : t -> int -> (edge -> int -> float -> unit) -> unit
(** [iter_adj g u f] calls [f e v w] for every enabled incident edge [e]
    leading to an enabled neighbor [v] with weight [w].  If [u] itself is
    disabled nothing is visited. *)

val fold_adj : t -> int -> ('a -> edge -> int -> float -> 'a) -> 'a -> 'a

val degree : t -> int -> int
(** Number of enabled incident edges (to enabled neighbors). *)

val find_edge : t -> int -> int -> edge option
(** Some enabled edge between the two nodes, if any (minimum weight one). *)

val iter_edges : t -> (edge -> int -> int -> float -> unit) -> unit
(** Iterates enabled edges with both endpoints enabled. *)

val mean_edge_weight : t -> float
(** Average weight over enabled edges — the paper's congestion statistic
    (w̄). *)

val copy : t -> t
(** Deep copy; versions start fresh. *)
