(** Graph builder: the append-only construction phase of the routing
    substrate.

    A [Wgraph.t] only accumulates edges; once construction is done,
    {!freeze} packs it into an immutable CSR {!Topology.t}, and all
    traversal and mutation (weights, enable flags) happens on a
    {!Gstate.t} overlay — see {!Gstate.of_builder} for the one-step
    combination. *)

type t

type edge = int
(** Dense edge identifiers, assigned by {!add_edge} in order from 0 and
    stable across {!freeze}. *)

val create : ?edge_capacity:int -> int -> t
(** [create n] is a builder over nodes [0 .. n-1] with no edges.
    [edge_capacity] pre-sizes the edge store so that adding up to that many
    edges never reallocates (the RRG knows its edge count up front). *)

val num_nodes : t -> int

val num_edges : t -> int

val add_edge : t -> int -> int -> float -> edge
(** [add_edge g u v w] adds an undirected edge of weight [w >= 0.] and
    returns its id.  Self-loops are rejected; parallel edges are allowed. *)

val freeze : t -> Topology.t
(** Pack the accumulated edges into an immutable CSR topology.  The builder
    may keep growing afterwards; the frozen topology is unaffected. *)
