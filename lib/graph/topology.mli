(** Frozen graph topology in CSR form.

    The immutable half of the routing substrate: node count, endpoints,
    adjacency, and construction-time base weights, packed into flat int
    arrays.  All per-pass mutable state (current weights, enable flags)
    lives in the {!Gstate} overlay; many overlays can share one topology,
    which is what makes snapshot-free rip-up and (eventually) parallel
    searches possible.

    The record is [private]: fields are readable — traversal hot loops
    ({!Dijkstra}) index [off]/[pack] directly — but values can only be
    built by {!Wgraph.freeze}.  Treat every array as read-only. *)

type edge = int
(** Dense edge identifiers, assigned by {!Wgraph.add_edge} in order from
    0. *)

type t = private {
  n : int;  (** number of nodes *)
  m : int;  (** number of edges *)
  off : int array;
      (** length [n+1]; node [u]'s adjacency occupies [pack] indices
          [off.(u) .. off.(u+1) - 1] *)
  pack : int array;
      (** length [4m]: interleaved (neighbor, edge id) pairs — the
          neighbor at even index [k], the edge at [k+1] — in increasing
          edge-id order per node *)
  eu : int array;  (** first endpoint per edge *)
  ev : int array;  (** second endpoint per edge *)
  base : float array;  (** construction-time weights *)
}

val make : n:int -> eu:int array -> ev:int array -> base:float array -> t
(** Internal constructor used by {!Wgraph.freeze}; the input arrays are
    captured, not copied.  Endpoint validity is the builder's
    responsibility. *)

val num_nodes : t -> int

val num_edges : t -> int

val endpoints : t -> edge -> int * int

val other_end : t -> edge -> int -> int
(** @raise Invalid_argument if the node is not an endpoint of the edge. *)

val base_weight : t -> edge -> float
