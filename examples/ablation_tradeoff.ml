(* Ablation: wirelength-vs-radius tradeoffs (paper §2's related work) and
   the design choices DESIGN.md calls out.

   Three studies on the same congested-grid workload:

   1. BRBC (eps sweep) and AHHK (c sweep) interpolate between minimum
      wirelength and shortest paths — but at the pathlength-optimal end
      they only reproduce Dijkstra's tree, whereas PFA/IDOM give optimal
      paths at far lower wirelength.  This regenerates the paper's §2
      argument for the new arborescence heuristics.

   2. Batched vs sequential IGMST: the paper's "batches" remark — same
      quality, fewer ranking rounds.

   3. Mehlhorn vs KMB: the fast Voronoi-based distance graph is a drop-in
      2-approximation with comparable quality.

   Run with: dune exec examples/ablation_tradeoff.exe *)

module G = Fr_graph
module C = Fr_core
module Rng = Fr_util.Rng
module Tab = Fr_util.Tab

let instances =
  List.map
    (fun seed ->
      let rng = Rng.make seed in
      let grid = Fr_exp.Congestion.congested_grid ~width:16 ~height:16 rng ~k:10 in
      let g = grid.G.Grid.graph in
      let net = C.Net.of_terminals (G.Random_graph.random_net rng g ~k:7) in
      (g, net))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let sweep name solve =
  let wire = ref 0. and radius = ref 0. in
  List.iter
    (fun (g, net) ->
      let cache = G.Dist_cache.create g in
      let tree = solve cache net in
      wire := !wire +. G.Tree.cost g tree;
      radius := !radius +. C.Ahhk.max_radius_ratio cache ~net ~tree)
    instances;
  let n = float_of_int (List.length instances) in
  (name, !wire /. n, !radius /. n)

let () =
  let rows =
    [
      sweep "AHHK c=0.00 (Prim)" (fun cache net -> C.Ahhk.solve ~c:0. cache ~net);
      sweep "AHHK c=0.25" (fun cache net -> C.Ahhk.solve ~c:0.25 cache ~net);
      sweep "AHHK c=0.50" (fun cache net -> C.Ahhk.solve ~c:0.5 cache ~net);
      sweep "AHHK c=1.00 (Dijkstra)" (fun cache net -> C.Ahhk.solve ~c:1. cache ~net);
      sweep "BRBC eps=4.00" (fun cache net -> C.Brbc.solve ~epsilon:4. cache ~net);
      sweep "BRBC eps=1.00" (fun cache net -> C.Brbc.solve ~epsilon:1. cache ~net);
      sweep "BRBC eps=0.25" (fun cache net -> C.Brbc.solve ~epsilon:0.25 cache ~net);
      sweep "BRBC eps=0.00 (SPT)" (fun cache net -> C.Brbc.solve ~epsilon:0. cache ~net);
      sweep "DJKA" (fun cache net -> C.Djka.solve cache ~net);
      sweep "PFA" (fun cache net -> C.Pfa.solve cache ~net);
      sweep "IDOM" (fun cache net -> C.Idom.solve cache ~net);
      sweep "IKMB (no path bound)" (fun cache net ->
          C.Igmst.ikmb cache ~terminals:(C.Net.terminals net));
    ]
  in
  let t =
    Tab.create
      ~title:"Ablation 1: wirelength vs radius dilation (mean over 10 seven-pin nets, k=10)"
      ~header:[ "Method"; "Mean wirelength"; "Mean radius ratio" ]
  in
  List.iter
    (fun (name, w, r) -> Tab.add_row t [ name; Printf.sprintf "%.1f" w; Printf.sprintf "%.3f" r ])
    rows;
  Tab.add_note t
    "BRBC/AHHK trade pathlength for wirelength, but at radius ratio 1.0 they reproduce \
     Dijkstra-quality wirelength; PFA/IDOM reach ratio 1.0 with far less wire (paper §2, §4).";
  Tab.print t;

  (* Study 2: batched vs sequential IGMST. *)
  let t2 =
    Tab.create ~title:"Ablation 2: IGMST batched vs sequential acceptance"
      ~header:[ "Mode"; "Mean wirelength"; "Mean time (ms)" ]
  in
  let run_mode name solve =
    let wire = ref 0. and time = ref 0. in
    List.iter
      (fun (g, net) ->
        let cache = G.Dist_cache.create g in
        let t0 = Unix.gettimeofday () in
        let tree = solve cache (C.Net.terminals net) in
        time := !time +. (Unix.gettimeofday () -. t0);
        wire := !wire +. G.Tree.cost g tree)
      instances;
    let n = float_of_int (List.length instances) in
    Tab.add_row t2 [ name; Printf.sprintf "%.1f" (!wire /. n); Printf.sprintf "%.1f" (1000. *. !time /. n) ]
  in
  run_mode "sequential" (fun cache terminals -> C.Igmst.ikmb cache ~terminals);
  run_mode "batched" (fun cache terminals ->
      C.Igmst.solve ~batched:true C.Igmst.kmb cache ~terminals);
  Tab.print t2;

  (* Study 3: Mehlhorn vs KMB. *)
  let t3 =
    Tab.create ~title:"Ablation 3: KMB (distance graph) vs Mehlhorn (Voronoi) per net"
      ~header:[ "Method"; "Mean wirelength"; "Mean time (ms)" ]
  in
  let run3 name solve =
    let wire = ref 0. and time = ref 0. in
    List.iter
      (fun (g, net) ->
        let t0 = Unix.gettimeofday () in
        let tree = solve g (C.Net.terminals net) in
        time := !time +. (Unix.gettimeofday () -. t0);
        wire := !wire +. G.Tree.cost g tree)
      instances;
    let n = float_of_int (List.length instances) in
    Tab.add_row t3 [ name; Printf.sprintf "%.1f" (!wire /. n); Printf.sprintf "%.1f" (1000. *. !time /. n) ]
  in
  run3 "KMB" (fun g terminals -> C.Kmb.solve (G.Dist_cache.create g) ~terminals);
  run3 "Mehlhorn" (fun g terminals -> C.Mehlhorn.solve g ~terminals);
  Tab.print t3
