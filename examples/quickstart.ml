(* Quickstart: route one multi-pin net on a weighted grid with all eight of
   the paper's constructions and compare wirelength / max pathlength.

   Run with: dune exec examples/quickstart.exe *)

module G = Fr_graph
module C = Fr_core

let () =
  (* A 12x12 grid with mild congestion: the routing substrate of the
     paper's Table 1 experiments. *)
  let rng = Fr_util.Rng.make 2024 in
  let grid = Fr_exp.Congestion.congested_grid ~width:12 ~height:12 rng ~k:6 in
  let g = grid.G.Grid.graph in

  (* A 6-pin net: source at the top-left region, sinks spread out. *)
  let node x y = G.Grid.node grid ~x ~y in
  let net =
    C.Net.make ~source:(node 1 1)
      ~sinks:[ node 10 2; node 3 9; node 8 8; node 10 10; node 5 4 ]
  in

  let cache = G.Dist_cache.create g in
  let t =
    Fr_util.Tab.create ~title:"Quickstart: one 6-pin net, eight algorithms"
      ~header:[ "Algorithm"; "Kind"; "Wirelength"; "Max path"; "Optimal path?" ]
  in
  List.iter
    (fun (alg : C.Routing_alg.t) ->
      let tree = alg.C.Routing_alg.solve cache ~net in
      let m = C.Eval.metrics cache ~net ~tree in
      Fr_util.Tab.add_row t
        [
          alg.C.Routing_alg.name;
          (match alg.C.Routing_alg.kind with
          | C.Routing_alg.Steiner -> "Steiner"
          | C.Routing_alg.Arborescence -> "arborescence");
          Printf.sprintf "%.2f" m.C.Eval.cost;
          Printf.sprintf "%.2f" m.C.Eval.max_path;
          (if m.C.Eval.arborescence then "yes" else "no");
        ])
    C.Routing_alg.all;
  Fr_util.Tab.add_note t
    "Steiner algorithms (KMB..IZEL) minimize wirelength only; arborescence algorithms \
     (DJKA..IDOM) guarantee shortest source-sink paths and fight for wirelength second.";
  Fr_util.Tab.print t;

  (* Optimal Steiner wirelength for reference (Dreyfus-Wagner). *)
  let opt = C.Exact.steiner_cost g ~terminals:(C.Net.terminals net) in
  Printf.printf "Exact minimum Steiner wirelength (Dreyfus-Wagner): %.2f\n" opt
