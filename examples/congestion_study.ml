(* A compact version of the paper's Table 1 congestion study.

   Routes a batch of random nets on congested 20x20 grids at the paper's
   three congestion levels and prints the measured wirelength / pathlength
   table next to the published numbers (use bench/main.exe for the full
   50-net version).

   Run with: dune exec examples/congestion_study.exe *)

let () =
  let sections = Fr_exp.Table1.run ~nets_per_config:12 ~seed:11 () in
  Fr_util.Tab.print (Fr_exp.Table1.to_table sections);
  print_endline
    "(12 nets per configuration for speed; the bench harness runs the paper's 50.)"
