(* The adversarial instances of Figs 10, 11 and 14, live.

   Run with: dune exec examples/worst_cases.exe *)

let () =
  print_endline (Fr_exp.Figures.fig10 ());
  print_endline (Fr_exp.Figures.fig11 ());
  print_endline (Fr_exp.Figures.fig14 ())
