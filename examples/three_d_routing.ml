(* Routing on a three-dimensional FPGA fabric (paper's conclusion:
   "all of our methods generalize to three-dimensional FPGAs").

   A 4-layer 10x10 fabric with expensive vias; one 6-pin net spanning
   three layers is routed with every algorithm, plus Elmore delays under
   the distributed-RC model.

   Run with: dune exec examples/three_d_routing.exe *)

module G = Fr_graph
module C = Fr_core

let () =
  let gr = G.Grid3.create ~via_weight:3. ~width:10 ~height:10 ~depth:4 () in
  let g = gr.G.Grid3.graph in
  let node = G.Grid3.node gr in
  let net =
    C.Net.make
      ~source:(node ~x:1 ~y:1 ~z:0)
      ~sinks:
        [
          node ~x:8 ~y:2 ~z:0;
          node ~x:2 ~y:8 ~z:1;
          node ~x:8 ~y:8 ~z:2;
          node ~x:5 ~y:5 ~z:3;
          node ~x:9 ~y:9 ~z:3;
        ]
  in
  let cache = G.Dist_cache.create g in
  Printf.printf "6-pin net on a 10x10x4 fabric (vias cost 3x a planar wire):\n\n";
  let t =
    Fr_util.Tab.create ~title:"3D routing, all eight algorithms"
      ~header:[ "Algorithm"; "Wirelength"; "Max path"; "Elmore max delay"; "Optimal paths?" ]
  in
  List.iter
    (fun (alg : C.Routing_alg.t) ->
      let tree = alg.C.Routing_alg.solve cache ~net in
      let m = C.Eval.metrics cache ~net ~tree in
      Fr_util.Tab.add_row t
        [
          alg.C.Routing_alg.name;
          Printf.sprintf "%.1f" m.C.Eval.cost;
          Printf.sprintf "%.1f" m.C.Eval.max_path;
          Printf.sprintf "%.0f" (C.Delay.max_delay g ~tree ~net);
          (if m.C.Eval.arborescence then "yes" else "no");
        ])
    C.Routing_alg.all;
  Fr_util.Tab.add_note t
    "The constructions are graph-generic: nothing 3D-specific beyond the fabric generator.";
  Fr_util.Tab.print t
