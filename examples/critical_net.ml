(* Critical-net routing: why arborescences (paper §1).

   A clock-like critical net is routed across a congested grid twice:
   with IKMB (pure wirelength) and with IDOM (shortest paths first).  The
   example prints the source-sink delays of both trees under a simple
   linear-delay model, showing the pathlength win of the arborescence at a
   small wirelength cost.

   Run with: dune exec examples/critical_net.exe *)

module G = Fr_graph
module C = Fr_core

let () =
  let rng = Fr_util.Rng.make 7 in
  let grid = Fr_exp.Congestion.congested_grid ~width:16 ~height:16 rng ~k:14 in
  let g = grid.G.Grid.graph in
  let node x y = G.Grid.node grid ~x ~y in
  (* The critical net: one driver in a corner, five latches far away. *)
  let net =
    C.Net.make ~source:(node 0 0)
      ~sinks:[ node 15 3; node 12 12; node 3 15; node 15 15; node 9 7 ]
  in
  let cache = G.Dist_cache.create g in
  let report name tree =
    let m = C.Eval.metrics cache ~net ~tree in
    Printf.printf
      "%-5s wirelength %6.2f   max pathlength %6.2f (optimal %.2f)   Elmore delay %7.0f%s\n" name
      m.C.Eval.cost m.C.Eval.max_path m.C.Eval.opt_max_path
      (C.Delay.max_delay g ~tree ~net)
      (if m.C.Eval.arborescence then "  <- every sink on a shortest path" else "");
    m
  in
  print_endline "Routing a 6-pin critical net across a congested 16x16 fabric:\n";
  let mk = report "IKMB" (C.Igmst.ikmb cache ~terminals:(C.Net.terminals net)) in
  let mi = report "IDOM" (C.Idom.solve cache ~net) in
  let mp = report "PFA" (C.Pfa.solve cache ~net) in
  Printf.printf
    "\nIDOM shortens the critical path by %.1f%% versus IKMB, paying %.1f%% extra wirelength\n"
    (100. *. (mk.C.Eval.max_path -. mi.C.Eval.max_path) /. mk.C.Eval.max_path)
    (100. *. (mi.C.Eval.cost -. mk.C.Eval.cost) /. mk.C.Eval.cost);
  Printf.printf "PFA achieves the same optimal delay with wirelength %.2f.\n" mp.C.Eval.cost
