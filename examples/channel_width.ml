(* Channel-width minimization on a full FPGA (paper §5, Tables 2-4).

   Generates the synthetic term1 benchmark (88 nets on a 10x9 Xilinx
   4000-series array), finds the minimum channel width our IKMB-based
   router needs, and renders the routed device.

   Run with: dune exec examples/channel_width.exe *)

module F = Fr_fpga

let () =
  let spec = Option.get (F.Circuits.find_spec "term1") in
  let circuit = F.Circuits.generate spec in
  let s, m, l = F.Netlist.pin_histogram circuit in
  Printf.printf "Circuit %s: %dx%d array, %d nets (%d with 2-3 pins, %d with 4-10, %d with >10)\n\n"
    circuit.F.Netlist.circuit_name circuit.F.Netlist.rows circuit.F.Netlist.cols
    (List.length circuit.F.Netlist.nets) s m l;
  let arch_of_width w = F.Circuits.arch_for spec ~channel_width:w in
  match F.Router.min_channel_width ~arch_of_width ~circuit ~start:10 () with
  | None -> print_endline "unroutable in the probed width range"
  | Some (w, stats) ->
      Printf.printf "Minimum channel width: %d (SEGA needed 10, GBP 10, the paper's router 8)\n"
        w;
      Printf.printf "%d passes; wirelength %.0f wire segments; peak occupancy %d/%d\n\n"
        stats.F.Router.passes stats.F.Router.total_wirelength stats.F.Router.peak_occupancy w;
      (* Re-route at the minimal width to leave the RRG in routed state,
         then draw it. *)
      let rrg = F.Rrg.build (arch_of_width w) in
      (match F.Router.route rrg circuit with
      | Ok _ ->
          print_endline "Channel occupancy map (hex digit = wires used per segment):";
          print_endline (F.Render.occupancy_map rrg)
      | Error _ -> ())
