(* Mixed critical / non-critical routing (paper §2).

   "Prior to routing, nets may be classified as either critical or
   non-critical based on timing information" — critical nets want optimal
   source-sink paths (arborescences), the rest want minimum wirelength
   (Steiner trees).  This example routes the synthetic term1 circuit with a
   growing fraction of nets marked critical (largest nets first, a proxy
   for long combinational paths) and reports the wirelength / pathlength /
   channel-pressure tradeoff.

   Run with: dune exec examples/mixed_criticality.exe *)

module F = Fr_fpga
module C = Fr_core

let () =
  let spec = Option.get (F.Circuits.find_spec "term1") in
  let circuit = F.Circuits.generate spec in
  let width = 10 in
  (* Criticality proxy: the k largest nets (by pins, then bbox). *)
  let by_size =
    List.stable_sort
      (fun a b -> compare (F.Netlist.pin_count b) (F.Netlist.pin_count a))
      circuit.F.Netlist.nets
  in
  let t =
    Fr_util.Tab.create
      ~title:(Printf.sprintf "term1 at W=%d: IDOM for critical nets, IKMB for the rest" width)
      ~header:[ "#critical"; "Passes"; "Wirelength"; "Sum max path"; "Peak occupancy" ]
  in
  List.iter
    (fun n_critical ->
      let critical_names =
        List.filteri (fun i _ -> i < n_critical) by_size
        |> List.map (fun n -> n.F.Netlist.net_name)
      in
      let critical net = List.mem net.F.Netlist.net_name critical_names in
      let config =
        { F.Router.default_config with F.Router.critical_strategy = Some critical }
      in
      let rrg = F.Rrg.build (F.Circuits.arch_for spec ~channel_width:width) in
      match F.Router.route ~config rrg circuit with
      | Ok stats ->
          Fr_util.Tab.add_row t
            [
              string_of_int n_critical;
              string_of_int stats.F.Router.passes;
              Printf.sprintf "%.0f" stats.F.Router.total_wirelength;
              Printf.sprintf "%.0f" stats.F.Router.total_max_path;
              Printf.sprintf "%d/%d" stats.F.Router.peak_occupancy width;
            ]
      | Error f ->
          Fr_util.Tab.add_row t
            [ string_of_int n_critical; Printf.sprintf ">%d" f.F.Router.passes_tried; "fail" ])
    [ 0; 5; 15; 30; 88 ];
  Fr_util.Tab.add_note t
    "More critical nets -> shorter worst paths at a wirelength/congestion premium (the paper's \
     Table 5 tradeoff, applied selectively).";
  Fr_util.Tab.print t
