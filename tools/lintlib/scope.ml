(* Path classification: which rule subsets apply to a file.

   The classification is purely component-based so it works identically on
   real sources ([lib/graph/tree.ml]), build-dir paths
   ([../../lib/graph/tree.ml] seen from the @lint rule), and test fixtures
   that mirror the layout ([test/frlint_fixtures/lib/graph/scan.ml]). *)

type t = {
  in_lib : bool;  (** under a [lib/] component: library code *)
  hot : bool;  (** lib/graph, lib/core, lib/fpga: router hot paths *)
  print_exempt : bool;  (** stdout printing is part of this file's job *)
}

let hot_libs = [ "graph"; "core"; "fpga" ]

(* Drop "", "." and ".." components: "../../lib/x.ml" and "lib/x.ml" both
   normalize to "lib/x.ml". *)
let normalize path =
  String.split_on_char '/' path
  |> List.filter (fun c -> c <> "" && c <> "." && c <> "..")
  |> String.concat "/"

let components path = String.split_on_char '/' (normalize path)

let classify path =
  let comps = components path in
  let rec scan in_lib hot experiments = function
    | [] | [ _ ] -> (in_lib, hot, experiments)
    | "lib" :: (next :: _ as rest) ->
        scan true
          (hot || List.mem next hot_libs)
          (experiments || next = "experiments")
          rest
    | _ :: rest -> scan in_lib hot experiments rest
  in
  let in_lib, hot, experiments = scan false false false comps in
  let base = Filename.basename path in
  { in_lib; hot; print_exempt = experiments || base = "render.ml" }

let module_name path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))
