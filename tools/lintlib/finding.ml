(* A single lint diagnostic.  [file] is a normalized, repo-relative path so
   that allowlist entries written as [lib/util/tab.ml] match no matter which
   prefix (./, ../.., absolute) the linter was invoked with. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let make ~file ~line ~col ~rule ~message = { file; line; col; rule; message }

let of_location ~file ~rule ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message;
  }

let order a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare a.rule b.rule

let to_string f = Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.message)
