(* Suppression mechanisms.

   Inline: a comment containing [frlint: allow <rule-id> — reason] on the
   offending line (or on the line directly above it, for sites that do not
   fit on one line) silences that rule for that site only.

   Allowlist: a checked-in file with one entry per line,
   [<rule-id> <repo-relative-path> <reason...>], silences a rule for a whole
   file.  Entries must carry a reason, and unused entries are themselves
   reported (rule [allowlist-unused]) so the burn-down list can only shrink. *)

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Does [line] contain "frlint: allow <rule>" (as a whole token)? *)
let line_allows line rule =
  let marker = "frlint: allow" in
  let mlen = String.length marker and llen = String.length line in
  let rec token_at i =
    (* skip spaces after the marker, then read one rule token *)
    if i < llen && line.[i] = ' ' then token_at (i + 1)
    else
      let j = ref i in
      while !j < llen && is_rule_char line.[!j] do incr j done;
      String.sub line i (!j - i)
  in
  let rec search from =
    if from + mlen > llen then false
    else if String.sub line from mlen = marker then
      token_at (from + mlen) = rule || search (from + 1)
    else search (from + 1)
  in
  search 0

(* Partition [findings] into (kept, inline-suppressed-count) given the
   source split into lines (1-indexed access). *)
let filter_inline ~lines findings =
  let nlines = Array.length lines in
  let get i = if i >= 1 && i <= nlines then lines.(i - 1) else "" in
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        let hit =
          line_allows (get f.Finding.line) f.Finding.rule
          || line_allows (get (f.Finding.line - 1)) f.Finding.rule
        in
        if hit then incr suppressed;
        not hit)
      findings
  in
  (kept, !suppressed)

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)
(* ------------------------------------------------------------------ *)

type entry = {
  rule : string;
  path : string;  (* normalized *)
  reason : string;
  line : int;
  mutable used : bool;
}

type t = { file : string; entries : entry list }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

let load file =
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let errors = ref [] and entries = ref [] in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        match split_ws line with
        | rule :: path :: (_ :: _ as reason) ->
            entries :=
              {
                rule;
                path = Scope.normalize path;
                reason = String.concat " " reason;
                line = lineno;
                used = false;
              }
              :: !entries
        | _ ->
            errors :=
              Finding.make ~file ~line:lineno ~col:0 ~rule:"allowlist-syntax"
                ~message:
                  "malformed entry: expected `<rule-id> <path> <reason...>` \
                   (the reason is mandatory)"
              :: !errors)
    (List.rev !lines);
  ({ file; entries = List.rev !entries }, List.rev !errors)

(* Marks matching entries as used. *)
let suppresses t (f : Finding.t) =
  let file = Scope.normalize f.Finding.file in
  let hit = ref false in
  List.iter
    (fun e ->
      if e.rule = f.Finding.rule && e.path = file then begin
        e.used <- true;
        hit := true
      end)
    t.entries;
  !hit

(* Key-based matching, for checkers whose findings attach to a symbol rather
   than a file (frdomcheck allowlists qualified function names): the entry's
   path slot holds the key verbatim.  Marks matching entries as used. *)
let suppresses_key t ~rule ~key =
  let hit = ref false in
  List.iter
    (fun e ->
      if e.rule = rule && e.path = key then begin
        e.used <- true;
        hit := true
      end)
    t.entries;
  !hit

let unused_findings t =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (Finding.make ~file:t.file ~line:e.line ~col:0 ~rule:"allowlist-unused"
             ~message:
               (Printf.sprintf
                  "entry `%s %s` matched nothing; delete it to keep the burn-down honest"
                  e.rule e.path)))
    t.entries
