(* Effect-analysis domains.

   A [root] answers "what can this value reach?" in the ownership sense:
   [fresh] means only storage allocated by the function under analysis
   (mutating it is benign), [rp] lists the parameters it may alias, [rg]
   the module-level values, and [run] is the conservative top — captured
   at a spawn boundary, produced by an unmodeled external, or otherwise
   untracked.

   A [t] (summary) is one function's interface-level effect contract:
   which parameters it may mutate or invoke, what it returns in root
   terms, its unconditional offenses (writes to globals or unknown roots,
   calls of unknown closures), and its outgoing call-graph edges.  The
   analysis in [Analyze] recomputes summaries from the typed AST until
   they stop changing; [Check] then judges worker entry points against
   them. *)

module SS = Set.Make (String)

type root = {
  rp : SS.t;  (* parameters of the enclosing function this value may alias *)
  rg : SS.t;  (* module-level values it may alias *)
  run : string option;  (* unknown provenance: the conservative top *)
}

let fresh = { rp = SS.empty; rg = SS.empty; run = None }

let of_param p = { fresh with rp = SS.singleton p }

(* Parameter roots carry their owning function's name ("Fn.name#$0") so a
   nested let-bound function mutating a value captured from its encloser
   charges the *encloser's* contract, not its own same-numbered slot. *)
let qualify ~owner key = owner ^ "#" ^ key

let split_qualified q =
  match String.index_opt q '#' with
  | Some i -> (String.sub q 0 i, String.sub q (i + 1) (String.length q - i - 1))
  | None -> ("", q)

let of_global g = { fresh with rg = SS.singleton g }

let unknown why = { fresh with run = Some why }

let is_fresh r = SS.is_empty r.rp && SS.is_empty r.rg && r.run = None

let join a b =
  {
    rp = SS.union a.rp b.rp;
    rg = SS.union a.rg b.rg;
    run = (match a.run with Some _ -> a.run | None -> b.run);
  }

let joins rs = List.fold_left join fresh rs

let root_desc r =
  if is_fresh r then "fresh"
  else
    String.concat " "
      ((List.map (fun p -> "param " ^ p) (SS.elements r.rp))
      @ List.map (fun g -> "global " ^ g) (SS.elements r.rg)
      @ match r.run with Some why -> [ "unknown (" ^ why ^ ")" ] | None -> [])

(* Offense rules: the two finding kinds frdomcheck can emit against a
   worker-reachable function (plus allowlist hygiene from Lintlib). *)
let rule_mutation = "worker-shared-mutation"

let rule_unknown_call = "worker-unknown-call"

type offense = {
  rule : string;
  oloc : Location.t;
  odesc : string;
}

(* Provenance of a parameter-level effect: where it bottoms out, for
   messages ("mutates param t: Hashtbl.replace at lib/...:97"). *)
type prov = {
  ploc : Location.t;
  pdesc : string;
}

type t = {
  sname : string;
  sloc : Location.t;
  sfile : string;
  mutable params : string list;  (* interface keys in order: "$0", "~net", "?memo" *)
  is_fn : bool;
  mutable offenses : offense list;
  mutable mutp : (string * prov) list;  (* parameters possibly mutated *)
  mutable callp : (string * prov) list;  (* parameters possibly invoked *)
  mutable edges : (string * Location.t) list;  (* call-graph out-edges *)
  mutable reads : bool;  (* reads mutable state (refs, arrays, mutable fields) *)
  mutable ret : root;  (* return value's root, in [params] namespace *)
}

let create ~name ~loc ~file ~params ~is_fn =
  {
    sname = name;
    sloc = loc;
    sfile = file;
    params;
    is_fn;
    offenses = [];
    mutp = [];
    callp = [];
    edges = [];
    reads = false;
    ret = fresh;
  }

(* Provenance strings nest one level per call hop; recursive cycles would
   otherwise grow them (and the digest) forever, so clip at a fixed width.
   Clipping is prefix-stable, which is what makes the fixpoint terminate in
   the presence of recursion. *)
let clip desc =
  if String.length desc > 240 then String.sub desc 0 240 ^ "..." else desc

let add_offense s ~rule ~loc ~desc =
  let desc = clip desc in
  if not (List.exists (fun o -> o.rule = rule && o.odesc = desc && o.oloc = loc) s.offenses)
  then s.offenses <- { rule; oloc = loc; odesc = desc } :: s.offenses

let add_mutp s p ~loc ~desc =
  let desc = clip desc in
  if not (List.mem_assoc p s.mutp) then s.mutp <- (p, { ploc = loc; pdesc = desc }) :: s.mutp

let add_callp s p ~loc ~desc =
  let desc = clip desc in
  if not (List.mem_assoc p s.callp) then s.callp <- (p, { ploc = loc; pdesc = desc }) :: s.callp

let add_edge s callee ~loc =
  if not (List.exists (fun (c, _) -> String.equal c callee) s.edges) then
    s.edges <- (callee, loc) :: s.edges

(* Structural fingerprint for the fixpoint's convergence test: everything a
   caller's re-analysis can observe about this summary. *)
let digest s =
  let offs =
    List.sort compare (List.map (fun o -> (o.rule, o.odesc)) s.offenses)
  in
  let mutp = List.sort compare (List.map fst s.mutp) in
  let callp = List.sort compare (List.map fst s.callp) in
  let edges = List.sort compare (List.map fst s.edges) in
  (offs, mutp, callp, edges, s.reads, (SS.elements s.ret.rp, SS.elements s.ret.rg, s.ret.run = None))

(* The manifest's three-point lattice (DESIGN.md §7): [Mutates] covers any
   write the function may perform on storage it does not own — including
   its own arguments; whether a given *call* of it is benign is the
   caller-context question the worker check answers separately. *)
type classification =
  | Pure
  | Read_only
  | Mutates of (string * Location.t) list  (* site descriptions *)

let classify s =
  let sites =
    List.map (fun o -> (o.odesc, o.oloc)) s.offenses
    @ List.map (fun (p, pr) -> (Printf.sprintf "mutates argument %s: %s" p pr.pdesc, pr.ploc)) s.mutp
  in
  if sites <> [] then Mutates (List.rev sites)
  else if s.reads || s.callp <> [] then Read_only
  else Pure

let class_name = function Pure -> "pure" | Read_only -> "read_only" | Mutates _ -> "mutates"
