(* frdomcheck — typed effect analysis over the build's cmt files, proving
   the parallel router's worker jobs free of shared mutation.

   Usage: frdomcheck [--json] [--allowlist FILE] [--out FILE]
                     [--report-unmodeled] DIR...

   DIRs are searched recursively for .cmt files (point it at _build
   trees, e.g. _build/default/lib).  Exit 0 on a clean tree, 1 when
   there are findings, 2 on usage errors. *)

open Frdomcheck_lib
open Lintlib

let usage () =
  prerr_endline
    "usage: frdomcheck [--json] [--allowlist FILE] [--out FILE] [--report-unmodeled] DIR...";
  exit 2

let () =
  let json = ref false in
  let allowlist = ref None in
  let out = ref None in
  let report_unmodeled = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--allowlist" :: path :: rest ->
        allowlist := Some path;
        parse rest
    | "--out" :: path :: rest ->
        out := Some path;
        parse rest
    | "--report-unmodeled" :: rest ->
        report_unmodeled := true;
        parse rest
    | ("--allowlist" | "--out") :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !dirs = [] then usage ();
  let report =
    Check.run ?allowlist_path:!allowlist ?out_path:!out ~dirs:(List.rev !dirs) ()
  in
  if !json then begin
    print_string "[";
    List.iteri
      (fun i f ->
        if i > 0 then print_string ",";
        print_string ("\n  " ^ Finding.to_json f))
      report.Check.findings;
    print_string "\n]\n"
  end
  else begin
    List.iter (fun f -> print_endline (Finding.to_string f)) report.Check.findings;
    if !report_unmodeled && report.Check.unmodeled <> [] then begin
      prerr_endline "unmodeled externals:";
      List.iter (fun n -> prerr_endline ("  " ^ n)) report.Check.unmodeled
    end;
    Printf.printf
      "frdomcheck: %d unit(s), %d function(s), %d worker root(s), %d round(s), %d \
       finding(s), %d allowlisted\n"
      report.Check.units report.Check.functions report.Check.roots report.Check.rounds
      (List.length report.Check.findings)
      report.Check.allowlisted
  end;
  exit (if report.Check.findings = [] then 0 else 1)
