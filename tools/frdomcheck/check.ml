(* The frdomcheck driver: load cmts, run the interprocedural fixpoint,
   judge worker roots, and emit findings plus the effects.json manifest.

   The safety property checked: every function reachable from a worker
   root (a closure handed to Fr_util.Pool.run/map or Domain.spawn, or a
   function carrying [@frdomcheck.worker]) is at most ReadOnly — it may
   allocate and mutate its own fresh storage, but any write to a global,
   to a spawn-shared argument, or through an unknown-rooted value is a
   finding, as is any call whose effects cannot be bounded.  Escapes go
   through the checked-in allowlist, keyed by qualified function name,
   with mandatory reasons; unused entries are themselves findings. *)

open Lintlib
module S = Summary
module A = Analyze

type report = {
  findings : Finding.t list;
  units : int;
  functions : int;
  roots : int;
  rounds : int;
  allowlisted : int;
  unmodeled : string list;
}

(* ------------------------------------------------------------------ *)
(* cmt discovery                                                       *)
(* ------------------------------------------------------------------ *)

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then find_cmts acc path
          else if Filename.check_suffix name ".cmt" then path :: acc
          else acc)
        acc entries

let load_units st dirs =
  let cmts = List.sort compare (List.fold_left find_cmts [] dirs) in
  List.filter_map
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception _ -> None
      | cmt -> A.load_unit st cmt)
    cmts

(* ------------------------------------------------------------------ *)
(* Worker reachability                                                 *)
(* ------------------------------------------------------------------ *)

(* BFS from one root over summary call edges, recording a parent pointer
   per function so findings can print the full call chain. *)
let reach st root =
  let parents = Hashtbl.create 64 in
  let q = Queue.create () in
  Hashtbl.replace parents root None;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let name = Queue.pop q in
    match Hashtbl.find_opt st.A.summaries name with
    | None -> ()
    | Some sum ->
        List.iter
          (fun (callee, _) ->
            if
              (not (Hashtbl.mem parents callee))
              && Hashtbl.mem st.A.summaries callee
            then begin
              Hashtbl.replace parents callee (Some name);
              Queue.add callee q
            end)
          sum.S.edges
  done;
  parents

let chain parents name =
  let rec up acc n =
    match Hashtbl.find_opt parents n with
    | Some (Some p) -> up (n :: acc) p
    | _ -> n :: acc
  in
  String.concat " -> " (up [] name)

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

let finding_of ~loc ~rule ~message =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  Finding.of_location ~file ~rule ~message loc

let root_kind_name = function
  | A.Root_named _ -> "named"
  | A.Root_opaque _ -> "opaque"

let collect_findings st allow =
  let allowlisted = ref 0 in
  let out = ref [] in
  let reported = Hashtbl.create 64 in
  let suppressed ~rule ~key =
    match allow with
    | Some t when Suppress.suppresses_key t ~rule ~key ->
        incr allowlisted;
        true
    | _ -> false
  in
  let add ~key ~rule ~loc msg =
    if not (suppressed ~rule ~key) then out := finding_of ~loc ~rule ~message:msg :: !out
  in
  let roots = List.sort compare !(st.A.roots) in
  List.iter
    (fun (rname, (info : A.root_info)) ->
      match info.A.rk with
      | A.Root_opaque why ->
          add ~key:rname ~rule:S.rule_unknown_call ~loc:info.A.r_loc
            (Printf.sprintf "worker root %s: %s" rname why)
      | A.Root_named name -> (
          match Hashtbl.find_opt st.A.summaries name with
          | None ->
              add ~key:rname ~rule:S.rule_unknown_call ~loc:info.A.r_loc
                (Printf.sprintf "worker root %s has no analyzed body" name)
          | Some rsum ->
              (* Effects on the root's own parameters: at a spawn site the
                 applied arguments are shared across every domain. *)
              List.iter
                (fun (p, (prov : S.prov)) ->
                  if not (Hashtbl.mem reported (S.rule_mutation, name, p)) then begin
                    Hashtbl.replace reported (S.rule_mutation, name, p) ();
                    add ~key:name ~rule:S.rule_mutation ~loc:prov.S.ploc
                      (Printf.sprintf
                         "worker %s may mutate its argument %s, which is shared across \
                          domains at the spawn site: %s"
                         name p prov.S.pdesc)
                  end)
                rsum.S.mutp;
              List.iter
                (fun (p, (prov : S.prov)) ->
                  if not (Hashtbl.mem reported (S.rule_unknown_call, name, p)) then begin
                    Hashtbl.replace reported (S.rule_unknown_call, name, p) ();
                    add ~key:name ~rule:S.rule_unknown_call ~loc:prov.S.ploc
                      (Printf.sprintf
                         "worker %s may invoke its argument %s, whose effects are \
                          unknown: %s"
                         name p prov.S.pdesc)
                  end)
                rsum.S.callp;
              (* Offenses anywhere in the worker-reachable region. *)
              let parents = reach st name in
              let members =
                Hashtbl.fold (fun f _ acc -> f :: acc) parents [] |> List.sort compare
              in
              List.iter
                (fun f ->
                  match Hashtbl.find_opt st.A.summaries f with
                  | None -> ()
                  | Some fsum ->
                      List.iter
                        (fun (o : S.offense) ->
                          let dk = (o.S.rule, o.S.odesc, f) in
                          if not (Hashtbl.mem reported dk) then begin
                            Hashtbl.replace reported dk ();
                            add ~key:f ~rule:o.S.rule ~loc:o.S.oloc
                              (Printf.sprintf "%s [call chain: %s]" o.S.odesc
                                 (chain parents f))
                          end)
                        fsum.S.offenses)
                members))
    roots;
  (List.rev !out, !allowlisted)

(* ------------------------------------------------------------------ *)
(* effects.json                                                        *)
(* ------------------------------------------------------------------ *)

let manifest st buf =
  let esc = Finding.json_escape in
  let reachable = Hashtbl.create 256 in
  List.iter
    (fun (rname, (info : A.root_info)) ->
      let seed = match info.A.rk with A.Root_named n -> n | A.Root_opaque _ -> rname in
      let parents = reach st seed in
      Hashtbl.iter (fun f _ -> Hashtbl.replace reachable f ()) parents)
    !(st.A.roots);
  Buffer.add_string buf "{\n  \"roots\": [";
  let roots = List.sort compare !(st.A.roots) in
  List.iteri
    (fun i (rname, (info : A.root_info)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"name\": \"%s\", \"kind\": \"%s\", \"file\": \"%s\", \"line\": %d}"
           (esc rname)
           (root_kind_name info.A.rk)
           (esc info.A.r_loc.Location.loc_start.Lexing.pos_fname)
           info.A.r_loc.Location.loc_start.Lexing.pos_lnum))
    roots;
  Buffer.add_string buf "\n  ],\n  \"functions\": [";
  let names =
    Hashtbl.fold (fun n _ acc -> n :: acc) st.A.summaries [] |> List.sort compare
  in
  List.iteri
    (fun i name ->
      let sum = Hashtbl.find st.A.summaries name in
      let cls = S.classify sum in
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"file\": \"%s\", \"line\": %d, \"class\": \"%s\", \
            \"worker_reachable\": %b"
           (esc name) (esc sum.S.sfile)
           sum.S.sloc.Location.loc_start.Lexing.pos_lnum
           (S.class_name cls) (Hashtbl.mem reachable name));
      (match cls with
      | S.Mutates sites ->
          Buffer.add_string buf ", \"sites\": [";
          List.iteri
            (fun j (desc, loc) ->
              if j > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "{\"desc\": \"%s\", \"file\": \"%s\", \"line\": %d}"
                   (esc desc)
                   (esc loc.Location.loc_start.Lexing.pos_fname)
                   loc.Location.loc_start.Lexing.pos_lnum))
            sites;
          Buffer.add_char buf ']'
      | S.Pure | S.Read_only -> ());
      Buffer.add_char buf '}')
    names;
  Buffer.add_string buf "\n  ]\n}\n"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let max_rounds = 50

let run ?allowlist_path ?out_path ~dirs () =
  let st = A.create_state () in
  let units = load_units st dirs in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    if Sys.getenv_opt "FRDOMCHECK_DEBUG" <> None then
      Printf.eprintf "--- round %d\n%!" !rounds;
    A.analyze_round st units;
    if not st.A.changed then continue_ := false
  done;
  let allow, allow_errors =
    match allowlist_path with
    | None -> (None, [])
    | Some path ->
        if Sys.file_exists path then
          let t, errs = Suppress.load path in
          (Some t, errs)
        else (None, [])
  in
  let findings, allowlisted = collect_findings st allow in
  let unused = match allow with Some t -> Suppress.unused_findings t | None -> [] in
  let findings = List.sort Finding.order (allow_errors @ findings @ unused) in
  (match out_path with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 65536 in
      manifest st buf;
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc);
  {
    findings;
    units = List.length units;
    functions = Hashtbl.length st.A.summaries;
    roots = List.length !(st.A.roots);
    rounds = !rounds;
    allowlisted;
    unmodeled =
      Hashtbl.fold (fun n () acc -> n :: acc) st.A.unmodeled [] |> List.sort compare;
  }
