(* The cmt effect analysis.

   One [state] holds the whole-project view: summaries by qualified name,
   module-level values, the record-field implementation registry, and the
   worker roots discovered at Fr_util.Pool.run/map (and Domain.spawn)
   call sites.  [Check] loads every cmt once, then calls [analyze_round]
   until no summary digest changes — an optimistic interprocedural
   fixpoint: a call to a not-yet-stable function uses last round's
   summary, and the next round repairs any optimism.

   The value domain is [Summary.root]; the walk is flow-insensitive and
   accumulates effects per enclosing function.  Three kinds of closures
   get their own standalone summaries: module-level and let-bound named
   functions (captures resolve through the shared environment), closures
   stored into record fields (also shared: a captured local is storage
   made at the construction site, a captured parameter charges the
   enclosing function's contract — attribution is at construction even if
   the record outlives the activation), and worker closures at spawn
   sites (fresh environment: capture *is* the sharing we check). *)

open Typedtree
module S = Summary

type fnval =
  | Fn of string  (* a named function: project summary or externals-table key *)
  | Partial of string * arg list  (* named target plus the arguments already applied *)
  | Inline  (* a closure whose body effects were already folded right here *)

and vinfo = {
  vroot : S.root;
  vfn : fnval option;
}

and arg =
  | Aval of string * vinfo
  | Afun of string * expression  (* syntactic closure argument, not yet folded *)
  | Aomit of string

type field_impls = {
  mutable known : string list;  (* summary names implementing this field *)
  mutable opaque : bool;  (* some store site was not a trackable function *)
}

type root_kind =
  | Root_named of string  (* worker is a named project function *)
  | Root_opaque of string  (* spawn argument we cannot analyze: description *)

type root_info = {
  rk : root_kind;
  r_loc : Location.t;
  r_file : string;
}

type state = {
  summaries : (string, S.t) Hashtbl.t;
  globals : (string, unit) Hashtbl.t;  (* module-level non-function values *)
  registry : (string, field_impls) Hashtbl.t;  (* "Type.t.field" -> impls *)
  roots : (string * root_info) list ref;  (* spawn-site discoveries *)
  units : (string, unit) Hashtbl.t;  (* unit prefixes, for project-name tests *)
  bnames : (string, string) Hashtbl.t;
      (* "<prefix>/<Ident.unique_name>" -> summary name.  Ident stamps are
         only unique within one compilation unit, so the key carries the
         binding's module prefix. *)
  val_fns : (string, string) Hashtbl.t;  (* module-level aliases: name -> target fn *)
  unmodeled : (string, unit) Hashtbl.t;  (* externals missing from Tables *)
  mutable changed : bool;
}

let create_state () =
  {
    summaries = Hashtbl.create 512;
    globals = Hashtbl.create 64;
    registry = Hashtbl.create 64;
    roots = ref [];
    units = Hashtbl.create 32;
    bnames = Hashtbl.create 512;
    val_fns = Hashtbl.create 16;
    unmodeled = Hashtbl.create 32;
    changed = false;
  }

(* Per-unit walking context.  [menv] maps the unit's module-level idents and
   persists; [venv] maps locals of the analysis in progress.  A fresh [venv]
   (worker closures, field-store closures) makes every captured local
   resolve to unknown — the conservative reading of a spawn or escape
   boundary. *)
type ctx = {
  st : state;
  prefix : string;  (* qualified prefix for bindings in this unit *)
  file : string;
  aliases : Names.aliases;
  menv : (string, vinfo) Hashtbl.t;
  venv : (string, vinfo) Hashtbl.t;
  fresh_env : bool;
  outer : S.t list;  (* lexically enclosing in-progress summaries, innermost first *)
}

let is_project st name =
  Hashtbl.fold (fun u () acc -> acc || Names.is_within ~prefix:u name) st.units false

let in_pool_unit ctx = Names.is_within ~prefix:"Fr_util.Pool" ctx.prefix

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

let register_root ctx name info =
  if not (List.mem_assoc name !(ctx.st.roots)) then begin
    ctx.st.roots := (name, info) :: !(ctx.st.roots);
    ctx.st.changed <- true
  end

let registry_find ctx key = Hashtbl.find_opt ctx.st.registry key

let registry_known ctx key name =
  let impls =
    match registry_find ctx key with
    | Some i -> i
    | None ->
        let i = { known = []; opaque = false } in
        Hashtbl.replace ctx.st.registry key i;
        i
  in
  if not (List.mem name impls.known) then begin
    impls.known <- name :: impls.known;
    ctx.st.changed <- true
  end

let registry_opaque ctx key =
  let impls =
    match registry_find ctx key with
    | Some i -> i
    | None ->
        let i = { known = []; opaque = false } in
        Hashtbl.replace ctx.st.registry key i;
        i
  in
  if not impls.opaque then begin
    impls.opaque <- true;
    ctx.st.changed <- true
  end

(* ------------------------------------------------------------------ *)
(* Types and names                                                     *)
(* ------------------------------------------------------------------ *)

(* The registry key for a record field: the record type's qualified name
   plus the label.  A [Pident] type path is local to the defining unit, so
   it is qualified with the current prefix to meet uses from other units,
   which arrive as full [Pdot] chains. *)
let type_key ctx (ty : Types.type_expr) lbl =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      let n = Names.of_path ~aliases:ctx.aliases p in
      let n = match p with Path.Pident _ -> ctx.prefix ^ "." ^ n | _ -> n in
      Some (n ^ "." ^ lbl)
  | _ -> None

let rec is_function_type ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_function_type t
  | Types.Tconstr (p, [ t ], _) when Path.name p = "option" -> is_function_type t
  | _ -> false

(* Strict arrow test (no option-of-arrow): an application whose result type
   is still an arrow is a partial application. *)
let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow t
  | _ -> false

(* A value of a deeply-immutable type cannot transmit mutation, so reading
   one — even a module-level one — yields a fresh root instead of a taint.
   This is what keeps a global scalar default ([?(delta = Pq.default_delta)])
   from marking every structure it is stored into as globally shared. *)
let rec immutable_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
      match Path.name p with
      | "int" | "float" | "bool" | "char" | "unit" | "string" | "nativeint"
      | "int32" | "int64" ->
          true
      | "option" | "list" -> List.for_all immutable_type args
      | _ -> false)
  | Types.Ttuple ts -> List.for_all immutable_type ts
  | Types.Tpoly (t, _) -> immutable_type t
  | _ -> false

let is_syntactic_fn e =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* The typechecker eta-fills omitted optional arguments with a literal
   [None]; as an argument that is an omission, not a value to track. *)
let is_none_literal e =
  match e.exp_desc with
  | Texp_construct (_, c, []) -> c.Types.cstr_name = "None"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Environment binding                                                 *)
(* ------------------------------------------------------------------ *)

let bind_ident ctx id info = Hashtbl.replace ctx.venv (Ident.unique_name id) info

let rec bind_pattern : type k. ctx -> k general_pattern -> S.root -> unit =
 fun ctx p root ->
  match p.pat_desc with
  | Tpat_var (id, _) -> bind_ident ctx id { vroot = root; vfn = None }
  | Tpat_alias (sub, id, _) ->
      bind_ident ctx id { vroot = root; vfn = None };
      bind_pattern ctx sub root
  | Tpat_tuple ps -> List.iter (fun sub -> bind_pattern ctx sub root) ps
  | Tpat_construct (_, _, ps, _) -> List.iter (fun sub -> bind_pattern ctx sub root) ps
  | Tpat_variant (_, Some sub, _) -> bind_pattern ctx sub root
  | Tpat_variant (_, None, _) -> ()
  | Tpat_record (fields, _) -> List.iter (fun (_, _, sub) -> bind_pattern ctx sub root) fields
  | Tpat_array ps -> List.iter (fun sub -> bind_pattern ctx sub root) ps
  | Tpat_lazy sub -> bind_pattern ctx sub root
  | Tpat_or (a, b, _) ->
      bind_pattern ctx a root;
      bind_pattern ctx b root
  | Tpat_value arg -> bind_pattern ctx (arg :> value general_pattern) root
  | Tpat_exception sub -> bind_pattern ctx sub (S.unknown "caught exception")
  | Tpat_any | Tpat_constant _ -> ()

let lookup_ident ctx id =
  let key = Ident.unique_name id in
  match Hashtbl.find_opt ctx.venv key with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt ctx.menv key with
      | Some v -> v
      | None ->
          let why =
            if ctx.fresh_env then "captured across a closure/spawn boundary"
            else "untracked local " ^ Ident.name id
          in
          { vroot = S.unknown why; vfn = None })

let resolve_path ctx (p : Path.t) : vinfo =
  match p with
  | Path.Pident id -> lookup_ident ctx id
  | _ ->
      let name = Names.of_path ~aliases:ctx.aliases p in
      if is_project ctx.st name then
        if Hashtbl.mem ctx.st.globals name then
          match Hashtbl.find_opt ctx.st.val_fns name with
          | Some target -> { vroot = S.of_global name; vfn = Some (Fn target) }
          | None -> { vroot = S.of_global name; vfn = None }
        else { vroot = S.fresh; vfn = Some (Fn name) }
      else
        let vroot =
          if Tables.find name <> None then S.fresh else S.unknown ("external " ^ name)
        in
        { vroot; vfn = Some (Fn name) }

(* ------------------------------------------------------------------ *)
(* Effect discharge                                                    *)
(* ------------------------------------------------------------------ *)

(* Parameter roots are owner-qualified ("Fn#$0"): a hit on the summary that
   owns the parameter lands in *that* summary's contract — the current one,
   or a lexical encloser when a nested function touches a captured value. *)
let owner_summary stack owner =
  List.find_opt (fun (s : S.t) -> String.equal s.S.sname owner) stack

(* A mutation lands according to the target's root: fresh is benign, a
   parameter becomes part of its owner's contract, anything else is an
   offense recorded in place. *)
let charge_mut ctx sum (root : S.root) ~loc ~desc =
  S.SS.iter
    (fun q ->
      let owner, p = S.split_qualified q in
      match owner_summary (sum :: ctx.outer) owner with
      | Some s -> S.add_mutp s p ~loc ~desc
      | None ->
          S.add_offense sum ~rule:S.rule_mutation ~loc
            ~desc:(desc ^ " on a value that escaped from " ^ owner))
    root.S.rp;
  S.SS.iter
    (fun g ->
      S.add_offense sum ~rule:S.rule_mutation ~loc ~desc:(desc ^ " on global " ^ g))
    root.S.rg;
  match root.S.run with
  | Some why ->
      S.add_offense sum ~rule:S.rule_mutation ~loc
        ~desc:(desc ^ " on a value of unknown ownership (" ^ why ^ ")")
  | None -> ()

(* Invoking a closure value we have no summary for. *)
let charge_callv ctx sum (root : S.root) ~loc ~desc =
  if S.is_fresh root then
    S.add_offense sum ~rule:S.rule_unknown_call ~loc ~desc:(desc ^ " (untracked closure)")
  else begin
    S.SS.iter
      (fun q ->
        let owner, p = S.split_qualified q in
        match owner_summary (sum :: ctx.outer) owner with
        | Some s -> S.add_callp s p ~loc ~desc
        | None ->
            S.add_offense sum ~rule:S.rule_unknown_call ~loc
              ~desc:(desc ^ " (closure that escaped from " ^ owner ^ ")"))
      root.S.rp;
    S.SS.iter
      (fun g ->
        S.add_offense sum ~rule:S.rule_unknown_call ~loc
          ~desc:(desc ^ " (closure held in global " ^ g ^ ")"))
      root.S.rg;
    match root.S.run with
    | Some why ->
        S.add_offense sum ~rule:S.rule_unknown_call ~loc
          ~desc:(desc ^ " (closure of unknown origin: " ^ why ^ ")")
    | None -> ()
  end

let arg_key = function Aval (k, _) | Afun (k, _) | Aomit k -> k

let arg_find args k = List.find_opt (fun a -> String.equal (arg_key a) k) args

let arg_root = function
  | Aval (_, v) -> v.vroot
  | Afun _ | Aomit _ -> S.fresh

(* Substitute a callee-namespace root into the caller's, through the
   argument matching.  Only parameters the callee itself owns substitute;
   keys owned by the callee's lexical enclosers pass through unchanged
   (they stay meaningful while the encloser's activation is live, and the
   charge helpers flag them if they truly escaped). *)
let subst_root ~callee args (root : S.root) =
  let keep = ref S.SS.empty in
  let from_params =
    S.SS.fold
      (fun q acc ->
        let owner, p = S.split_qualified q in
        if String.equal owner callee then
          match arg_find args p with
          | Some a -> S.join acc (arg_root a)
          | None -> acc
        else begin
          keep := S.SS.add q !keep;
          acc
        end)
      root.S.rp S.fresh
  in
  {
    S.rp = S.SS.union from_params.S.rp !keep;
    S.rg = S.SS.union from_params.S.rg root.S.rg;
    S.run = (match from_params.S.run with Some _ as s -> s | None -> root.S.run);
  }

(* Package the surviving argument list of a partial application: closure
   literals were already folded at this site, so they ride along as inert
   [Inline] slots instead of being folded a second time at completion. *)
let partial_args eargs =
  List.map
    (function
      | Afun (k, _) -> Aval (k, { vroot = S.fresh; vfn = Some Inline })
      | a -> a)
    eargs

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let rec eval ctx sum (e : expression) : vinfo =
  let fresh = { vroot = S.fresh; vfn = None } in
  let of_root r = { vroot = r; vfn = None } in
  match e.exp_desc with
  | Texp_constant _ | Texp_unreachable | Texp_extension_constructor _ -> fresh
  | Texp_ident (p, _, _) ->
      let v = resolve_path ctx p in
      if v.vfn = None && immutable_type e.exp_type then { v with vroot = S.fresh }
      else v
  | Texp_function _ ->
      (* A closure in generic position escapes: fold its body here, with
         parameters of unknown ownership (its eventual caller's data). *)
      fold_lambda ctx sum ~param_root:(S.unknown "parameter of an escaping closure") e;
      { vroot = S.fresh; vfn = Some Inline }
  | Texp_apply (f, args) -> eval_apply ctx sum ~rty:(Some e.exp_type) e.exp_loc f args
  | Texp_field (obj, _, lbl) ->
      let o = eval ctx sum obj in
      if lbl.Types.lbl_mut = Asttypes.Mutable then sum.S.reads <- true;
      of_root o.vroot
  | Texp_setfield (obj, _, lbl, v) ->
      let o = eval ctx sum obj in
      let handled = field_store ctx sum ~rty:obj.exp_type lbl v ~loc:e.exp_loc in
      if not handled then ignore (eval ctx sum v);
      charge_mut ctx sum o.vroot ~loc:e.exp_loc
        ~desc:("writes field " ^ lbl.Types.lbl_name);
      fresh
  | Texp_record { fields; extended_expression; _ } ->
      let base =
        match extended_expression with
        | Some b -> (eval ctx sum b).vroot
        | None -> S.fresh
      in
      let root = ref base in
      Array.iter
        (fun (lbl, def) ->
          match def with
          | Kept _ -> ()
          | Overridden (_, fe) ->
              let handled = field_store ctx sum ~rty:e.exp_type lbl fe ~loc:fe.exp_loc in
              if not handled then root := S.join !root (eval ctx sum fe).vroot)
        fields;
      of_root !root
  | Texp_let (_, vbs, body) ->
      List.iter (eval_binding ctx sum) vbs;
      eval ctx sum body
  | Texp_match (scrut, cases, _) ->
      let sroot = (eval ctx sum scrut).vroot in
      let rets =
        List.map
          (fun { c_lhs; c_guard; c_rhs } ->
            bind_pattern ctx c_lhs sroot;
            Option.iter (fun g -> ignore (eval ctx sum g)) c_guard;
            eval ctx sum c_rhs)
          cases
      in
      (* A join of closures whose bodies were all folded in place stays
         [Inline]: invoking the joined value adds no unseen effect. *)
      let vfn =
        if rets <> [] && List.for_all (fun v -> v.vfn = Some Inline) rets then
          Some Inline
        else None
      in
      { vroot = S.joins (List.map (fun v -> v.vroot) rets); vfn }
  | Texp_try (body, cases) ->
      let b = (eval ctx sum body).vroot in
      let rets =
        List.map
          (fun { c_lhs; c_guard; c_rhs } ->
            bind_pattern ctx c_lhs (S.unknown "caught exception");
            Option.iter (fun g -> ignore (eval ctx sum g)) c_guard;
            (eval ctx sum c_rhs).vroot)
          cases
      in
      of_root (S.joins (b :: rets))
  | Texp_ifthenelse (c, t, eo) ->
      ignore (eval ctx sum c);
      let vt = eval ctx sum t in
      let ve =
        match eo with
        | Some el -> eval ctx sum el
        | None -> fresh
      in
      let vfn =
        if eo <> None && vt.vfn = Some Inline && ve.vfn = Some Inline then
          Some Inline
        else None
      in
      { vroot = S.join vt.vroot ve.vroot; vfn }
  | Texp_sequence (a, b) ->
      ignore (eval ctx sum a);
      eval ctx sum b
  | Texp_while (c, body) ->
      ignore (eval ctx sum c);
      ignore (eval ctx sum body);
      fresh
  | Texp_for (id, _, lo, hi, _, body) ->
      ignore (eval ctx sum lo);
      ignore (eval ctx sum hi);
      bind_ident ctx id { vroot = S.fresh; vfn = None };
      ignore (eval ctx sum body);
      fresh
  | Texp_tuple es | Texp_array es ->
      of_root (S.joins (List.map (fun x -> (eval ctx sum x).vroot) es))
  | Texp_construct (_, _, es) ->
      of_root (S.joins (List.map (fun x -> (eval ctx sum x).vroot) es))
  | Texp_variant (_, eo) ->
      of_root (match eo with Some x -> (eval ctx sum x).vroot | None -> S.fresh)
  | Texp_assert (e1, _) ->
      ignore (eval ctx sum e1);
      fresh
  | Texp_lazy e1 ->
      (* folded eagerly: a conservative over-approximation of forcing *)
      eval ctx sum e1
  | Texp_open (_, body) -> eval ctx sum body
  | Texp_letexception (_, body) -> eval ctx sum body
  | Texp_letmodule (_, _, _, _, body) ->
      (* local module bodies are not analyzed; their exports resolve to
         unknown, which keeps any use conservative *)
      eval ctx sum body
  | Texp_letop { let_; ands; body; _ } ->
      ignore (eval ctx sum let_.bop_exp);
      List.iter (fun a -> ignore (eval ctx sum a.bop_exp)) ands;
      bind_pattern ctx body.c_lhs (S.unknown "binding-operator result");
      ignore (eval ctx sum body.c_rhs);
      of_root (S.unknown "binding-operator result")
  | Texp_new _ | Texp_instvar _ | Texp_setinstvar _ | Texp_override _ | Texp_send _
  | Texp_object _ | Texp_pack _ ->
      S.add_offense sum ~rule:S.rule_unknown_call ~loc:e.exp_loc
        ~desc:"object/first-class-module construct is not modeled";
      of_root (S.unknown "unmodeled construct")

and eval_binding ctx sum vb =
  match (vb.vb_pat.pat_desc, is_syntactic_fn vb.vb_expr) with
  | Tpat_var (id, _), true | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, _), true ->
      (* A named local function gets its own summary so call sites can
         discharge against the actual arguments (shared environment: its
         captures resolve to whatever they are here). *)
      let name = sum.S.sname ^ "." ^ Ident.name id in
      bind_ident ctx id { vroot = S.fresh; vfn = Some (Fn name) };
      let fsum =
        analyze_fn
          { ctx with outer = sum :: ctx.outer }
          ~name ~loc:vb.vb_loc ~shared:true vb.vb_expr
      in
      replace_summary ctx name fsum;
      S.add_edge sum name ~loc:vb.vb_loc
  | _, _ ->
      let v = eval ctx sum vb.vb_expr in
      (match vb.vb_pat.pat_desc with
      | Tpat_var (id, _) -> bind_ident ctx id v
      | p ->
          ignore p;
          bind_pattern ctx vb.vb_pat v.vroot)

(* Fold a closure's body into [sum] right now, binding every parameter of
   every layer to [param_root]. *)
and fold_lambda ctx sum ~param_root e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun { c_lhs; c_guard; c_rhs } ->
          bind_pattern ctx c_lhs param_root;
          Option.iter (fun g -> ignore (eval ctx sum g)) c_guard;
          fold_lambda ctx sum ~param_root c_rhs)
        cases
  | _ -> ignore (eval ctx sum e)

(* Build a standalone summary for a function expression.  [shared] keeps
   the current local environment (named let-bound functions); otherwise a
   fresh one makes captures unknown (field-store and worker closures). *)
and analyze_fn ctx ~name ~loc ~shared e =
  let ctx =
    if shared then ctx
    else { ctx with venv = Hashtbl.create 16; fresh_env = true; outer = [] }
  in
  let sum = S.create ~name ~loc ~file:ctx.file ~params:[] ~is_fn:true in
  peel ctx sum e;
  sum

(* Does this expression still contribute parameters?  Optional arguments
   with defaults desugar to a [let] between the curried [Texp_function]
   layers, so the walk must look through binding chains. *)
and continues_fn e =
  match e.exp_desc with
  | Texp_function _ -> true
  | Texp_let (_, _, body) -> continues_fn body
  | _ -> false

and peel_body ctx sum e =
  match e.exp_desc with
  | Texp_function _ -> peel ctx sum e
  | Texp_let (_, vbs, body) ->
      List.iter (eval_binding ctx sum) vbs;
      peel_body ctx sum body
  | _ -> sum.S.ret <- (eval ctx sum e).vroot

and peel ctx sum e =
  match e.exp_desc with
  | Texp_function { arg_label; cases; _ } -> (
      let key =
        match arg_label with
        | Asttypes.Nolabel ->
            let c =
              List.length (List.filter (fun k -> String.length k > 0 && k.[0] = '$') sum.S.params)
            in
            "$" ^ string_of_int c
        | Asttypes.Labelled l -> "~" ^ l
        | Asttypes.Optional l -> "?" ^ l
      in
      sum.S.params <- sum.S.params @ [ key ];
      let root = S.of_param (S.qualify ~owner:sum.S.sname key) in
      match cases with
      | [ { c_lhs; c_guard; c_rhs } ] when continues_fn c_rhs ->
          bind_pattern ctx c_lhs root;
          Option.iter (fun g -> ignore (eval ctx sum g)) c_guard;
          peel_body ctx sum c_rhs
      | cases ->
          let rets =
            List.map
              (fun { c_lhs; c_guard; c_rhs } ->
                bind_pattern ctx c_lhs root;
                Option.iter (fun g -> ignore (eval ctx sum g)) c_guard;
                (eval ctx sum c_rhs).vroot)
              cases
          in
          sum.S.ret <- S.joins rets)
  | _ -> sum.S.ret <- (eval ctx sum e).vroot

(* Record a function-typed store into a record field.  Returns true when the
   store was a closure literal that got its own summary (so the caller must
   not fold it a second time). *)
and field_store ctx sum ~rty lbl fe ~loc =
  if not (is_function_type lbl.Types.lbl_arg) then false
  else
    match type_key ctx rty lbl.Types.lbl_name with
    | None -> false
    | Some key -> (
        let stored =
          match fe.exp_desc with
          | Texp_construct (_, c, [ inner ]) when c.Types.cstr_name = "Some" -> inner
          | _ -> fe
        in
        match stored.exp_desc with
        | Texp_construct (_, c, []) when c.Types.cstr_name = "None" -> false
        | Texp_function _ ->
            (* Analyzed with the shared environment: a capture of a local is
               fresh storage made where the record was built, and a capture
               of a parameter charges the enclosing function's contract.
               (If the record outlives that activation the attribution is at
               the construction site — documented approximation.) *)
            let name =
              Printf.sprintf "%s.<%s:%d>" ctx.prefix lbl.Types.lbl_name
                (loc_line stored.exp_loc)
            in
            let fsum =
              analyze_fn
                { ctx with outer = sum :: ctx.outer }
                ~name ~loc:stored.exp_loc ~shared:true stored
            in
            replace_summary ctx name fsum;
            registry_known ctx key name;
            S.add_edge sum name ~loc;
            true
        | Texp_ident (p, _, _) -> (
            match (resolve_path ctx p).vfn with
            | Some (Fn n) when Hashtbl.mem ctx.st.summaries n || is_project ctx.st n ->
                registry_known ctx key n;
                S.add_edge sum n ~loc;
                false
            | _ ->
                registry_opaque ctx key;
                false)
        | _ ->
            registry_opaque ctx key;
            false)

and fold_afuns ctx sum eargs ~why =
  List.iter
    (function
      | Afun (_, e) -> fold_lambda ctx sum ~param_root:(S.unknown why) e
      | _ -> ())
    eargs

and eval_apply ctx sum ~rty loc f args =
  match f.exp_desc with
  | Texp_apply (f', args') ->
      (* flatten curried applications so one dispatch sees all arguments *)
      eval_apply ctx sum ~rty loc f' (args' @ args)
  | Texp_ident ((Path.Pdot _ as p), _, _)
    when (match Names.of_path ~aliases:ctx.aliases p with
         | "@@" | "|>" -> true
         | _ -> false) -> (
      match (Names.of_path ~aliases:ctx.aliases p, args) with
      | "@@", [ (Asttypes.Nolabel, Some fe); (Asttypes.Nolabel, Some ae) ] ->
          eval_apply ctx sum ~rty loc fe [ (Asttypes.Nolabel, Some ae) ]
      | "|>", [ (Asttypes.Nolabel, Some ae); (Asttypes.Nolabel, Some fe) ] ->
          eval_apply ctx sum ~rty loc fe [ (Asttypes.Nolabel, Some ae) ]
      | _ ->
          List.iter (fun (_, eo) -> Option.iter (fun a -> ignore (eval ctx sum a)) eo) args;
          { vroot = S.unknown "partial pipeline operator"; vfn = None })
  | Texp_ident ((Path.Pdot _ as p), _, _)
    when (not (in_pool_unit ctx))
         && (match Names.of_path ~aliases:ctx.aliases p with
            | "Fr_util.Pool.run" | "Fr_util.Pool.map" | "Domain.spawn" -> true
            | _ -> false) ->
      handle_spawn ctx sum ~loc (Names.of_path ~aliases:ctx.aliases p) args
  | _ ->
      let n = ref 0 in
      let eargs =
        List.map
          (fun (lbl, eo) ->
            let key =
              match lbl with
              | Asttypes.Nolabel ->
                  let k = "$" ^ string_of_int !n in
                  incr n;
                  k
              | Asttypes.Labelled l -> "~" ^ l
              | Asttypes.Optional l -> "?" ^ l
            in
            match eo with
            | None -> Aomit key
            | Some a ->
                (* [~label:v] against an optional parameter arrives wrapped
                   in [Some]; track the payload so a closure keeps its
                   identity through the wrap. *)
                let a =
                  match (lbl, a.exp_desc) with
                  | Asttypes.Optional _, Texp_construct (_, c, [ inner ])
                    when c.Types.cstr_name = "Some" ->
                      inner
                  | _ -> a
                in
                if is_none_literal a then Aomit key
                else if is_syntactic_fn a then Afun (key, a)
                else Aval (key, eval ctx sum a))
          args
      in
      (match f.exp_desc with
      | Texp_field (obj, _, lbl) -> (
          let o = eval ctx sum obj in
          if lbl.Types.lbl_mut = Asttypes.Mutable then sum.S.reads <- true;
          let impls =
            match type_key ctx obj.exp_type lbl.Types.lbl_name with
            | Some key -> registry_find ctx key
            | None -> None
          in
          match impls with
          | Some { known = _ :: _ as cands; opaque = false } ->
              let results =
                List.map
                  (fun cand ->
                    if Hashtbl.mem ctx.st.summaries cand then
                      (charge_named_call ctx sum ~loc cand eargs).vroot
                    else begin
                      S.add_offense sum ~rule:S.rule_unknown_call ~loc
                        ~desc:
                          ("call through field " ^ lbl.Types.lbl_name
                         ^ " reaches unanalyzed " ^ cand);
                      S.unknown cand
                    end)
                  cands
              in
              { vroot = S.joins results; vfn = None }
          | _ ->
              charge_callv ctx sum o.vroot ~loc
                ~desc:("call through record field " ^ lbl.Types.lbl_name);
              fold_afuns ctx sum eargs
                ~why:("argument of a call through field " ^ lbl.Types.lbl_name);
              { vroot = S.unknown ("result of field call " ^ lbl.Types.lbl_name); vfn = None })
      | _ -> dispatch_call ctx sum ~rty ~loc (eval ctx sum f) eargs)

and dispatch_call ctx sum ?(rty = None) ~loc (v : vinfo) eargs =
  match v.vfn with
  | Some Inline ->
      (* effects were folded where the closure literal appeared *)
      { vroot = S.fresh; vfn = None }
  | Some (Partial (name, stored)) ->
      (* completing (or extending) a partial application: renumber the new
         positional arguments past the stored ones and re-dispatch *)
      let offset =
        List.length
          (List.filter
             (fun a ->
               let k = arg_key a in
               String.length k > 0 && k.[0] = '$')
             stored)
      in
      let rekey k =
        if String.length k > 1 && k.[0] = '$' then
          match int_of_string_opt (String.sub k 1 (String.length k - 1)) with
          | Some i -> "$" ^ string_of_int (i + offset)
          | None -> k
        else k
      in
      let renumber = function
        | Aval (k, v) -> Aval (rekey k, v)
        | Afun (k, e) -> Afun (rekey k, e)
        | Aomit k -> Aomit (rekey k)
      in
      dispatch_call ctx sum ~rty ~loc
        { vroot = S.fresh; vfn = Some (Fn name) }
        (stored @ List.map renumber eargs)
  | Some (Fn name0) ->
      (* a module-level [let f = Other.g] redirects to its target *)
      let rec redirect fuel n =
        match Hashtbl.find_opt ctx.st.val_fns n with
        | Some t when fuel > 0 && t <> n -> redirect (fuel - 1) t
        | _ -> n
      in
      let name = redirect 5 name0 in
      (match Hashtbl.find_opt ctx.st.summaries name with
      | Some callee when callee.S.is_fn -> charge_named_call ctx sum ~loc name eargs
      | Some _ ->
          (* calling a module-level value we have no function body for *)
          S.add_offense sum ~rule:S.rule_unknown_call ~loc
            ~desc:("call of module-level value " ^ name ^ " with no function summary");
          fold_afuns ctx sum eargs ~why:("closure passed to " ^ name);
          { vroot = S.unknown ("result of " ^ name); vfn = None }
      | None -> (
        match Tables.find name with
        | Some entry -> charge_external ctx sum ~rty ~loc name entry eargs
        | None ->
            if is_project ctx.st name then
              S.add_offense sum ~rule:S.rule_unknown_call ~loc
                ~desc:("call of unanalyzed project value " ^ name)
            else begin
              Hashtbl.replace ctx.st.unmodeled name ();
              S.add_offense sum ~rule:S.rule_unknown_call ~loc
                ~desc:("call of unmodeled external " ^ name)
            end;
            fold_afuns ctx sum eargs ~why:("closure passed to " ^ name);
            { vroot = S.unknown ("result of " ^ name); vfn = None }))
  | None ->
      charge_callv ctx sum v.vroot ~loc ~desc:"call of a computed function value";
      fold_afuns ctx sum eargs ~why:"closure passed to a computed function";
      { vroot = S.unknown "result of an untracked call"; vfn = None }

and charge_named_call ctx sum ~loc name eargs =
  let callee = Hashtbl.find ctx.st.summaries name in
  S.add_edge sum name ~loc;
  let total =
    List.for_all
      (fun p -> (String.length p > 0 && p.[0] = '?') || arg_find eargs p <> None)
      callee.S.params
  in
  fold_afuns ctx sum eargs ~why:("closure passed to " ^ name);
  List.iter
    (fun (p, (prov : S.prov)) ->
      match arg_find eargs p with
      | Some a ->
          charge_mut ctx sum (arg_root a) ~loc
            ~desc:(name ^ " mutates its argument " ^ p ^ " (" ^ prov.S.pdesc ^ ")")
      | None -> ())
    callee.S.mutp;
  List.iter
    (fun (p, (prov : S.prov)) ->
      match arg_find eargs p with
      | Some (Afun _) | Some (Aomit _) | None -> ()
      | Some (Aval (_, av)) -> (
          match av.vfn with
          | Some Inline -> ()
          | Some (Fn n) ->
              charge_passed_fn ctx sum ~loc n
                ~argroot:(S.unknown ("argument of " ^ n ^ " when invoked by " ^ name))
          | Some (Partial (n, stored)) ->
              charge_partial ctx sum ~loc n stored
                ~argroot:(S.unknown ("argument of " ^ n ^ " when invoked by " ^ name))
          | None ->
              charge_callv ctx sum av.vroot ~loc
                ~desc:(name ^ " invokes its argument " ^ p ^ " (" ^ prov.S.pdesc ^ ")")))
    callee.S.callp;
  if total then { vroot = subst_root ~callee:name eargs callee.S.ret; vfn = None }
  else
    (* Partial application: parameter-level effects on the matched prefix
       were charged above (a conservative double-count against completion);
       the closure result aliases the applied arguments and remembers the
       target so a later full application discharges precisely. *)
    let vroot =
      S.joins
        (List.filter_map (function Aval (_, v) -> Some v.vroot | _ -> None) eargs)
    in
    { vroot; vfn = Some (Partial (name, partial_args eargs)) }

(* A partially applied named function invoked by someone else: parameters
   matched at the partial-application site discharge against their actual
   roots; the rest were supplied by the unseen caller and get [argroot]. *)
and charge_partial ctx sum ~loc n stored ~argroot =
  match Hashtbl.find_opt ctx.st.summaries n with
  | Some callee when callee.S.is_fn ->
      S.add_edge sum n ~loc;
      List.iter
        (fun (p, (prov : S.prov)) ->
          let root = match arg_find stored p with Some a -> arg_root a | None -> argroot in
          charge_mut ctx sum root ~loc
            ~desc:(n ^ " mutates its argument " ^ p ^ " (" ^ prov.S.pdesc ^ ")"))
        callee.S.mutp;
      List.iter
        (fun (p, (prov : S.prov)) ->
          match arg_find stored p with
          | Some (Aval (_, av)) -> (
              match av.vfn with
              | Some Inline -> ()
              | Some (Fn m) ->
                  charge_passed_fn ctx sum ~loc m
                    ~argroot:(S.unknown ("argument of " ^ m ^ " when invoked by " ^ n))
              | Some (Partial (m, st2)) ->
                  charge_partial ctx sum ~loc m st2
                    ~argroot:(S.unknown ("argument of " ^ m ^ " when invoked by " ^ n))
              | None ->
                  charge_callv ctx sum av.vroot ~loc
                    ~desc:(n ^ " invokes its argument " ^ p ^ " (" ^ prov.S.pdesc ^ ")"))
          | _ ->
              charge_callv ctx sum argroot ~loc
                ~desc:(n ^ " invokes its argument " ^ p ^ " (" ^ prov.S.pdesc ^ ")"))
        callee.S.callp
  | _ -> charge_passed_fn ctx sum ~loc n ~argroot

(* A named function passed as a higher-order argument: it will be invoked
   with arguments we cannot see, so its parameter-level effects are charged
   against [argroot]. *)
and charge_passed_fn ctx sum ~loc n ~argroot =
  match Hashtbl.find_opt ctx.st.summaries n with
  | Some callee ->
      S.add_edge sum n ~loc;
      List.iter
        (fun (p, (prov : S.prov)) ->
          charge_mut ctx sum argroot ~loc
            ~desc:(n ^ " mutates its argument " ^ p ^ " (" ^ prov.S.pdesc ^ ")"))
        callee.S.mutp;
      List.iter
        (fun (p, _) ->
          charge_callv ctx sum argroot ~loc ~desc:(n ^ " invokes its argument " ^ p))
        callee.S.callp
  | None -> (
      match Tables.find n with
      | Some entry ->
          if entry.Tables.e_reads then sum.S.reads <- true;
          if entry.Tables.e_mut <> [] then
            charge_mut ctx sum argroot ~loc ~desc:(n ^ " mutates its argument");
          (match entry.Tables.e_global with
          | Some what ->
              S.add_offense sum ~rule:S.rule_mutation ~loc
                ~desc:(n ^ " mutates ambient state (" ^ what ^ ")")
          | None -> ())
      | None ->
          if is_project ctx.st n then
            (* not yet analyzed this round — a later round repairs this *)
            S.add_offense sum ~rule:S.rule_unknown_call ~loc
              ~desc:("project function " ^ n ^ " used before analysis")
          else begin
            Hashtbl.replace ctx.st.unmodeled n ();
            S.add_offense sum ~rule:S.rule_unknown_call ~loc
              ~desc:("unmodeled external " ^ n ^ " passed as a function argument")
          end)

and charge_external ctx sum ~rty ~loc name (entry : Tables.entry) eargs =
  if entry.Tables.e_reads then sum.S.reads <- true;
  (match entry.Tables.e_global with
  | Some what ->
      S.add_offense sum ~rule:S.rule_mutation ~loc
        ~desc:(name ^ " mutates ambient state (" ^ what ^ ")")
  | None -> ());
  List.iter
    (fun k ->
      match arg_find eargs k with
      | Some a -> charge_mut ctx sum (arg_root a) ~loc ~desc:(name ^ " on argument " ^ k)
      | None -> ())
    entry.Tables.e_mut;
  List.iter
    (fun (fk, datas) ->
      match arg_find eargs fk with
      | None | Some (Aomit _) -> ()
      | Some farg -> (
          let droot =
            S.joins
              (List.filter_map (fun dk -> Option.map arg_root (arg_find eargs dk)) datas)
          in
          match farg with
          | Afun (_, e) -> fold_lambda ctx sum ~param_root:droot e
          | Aval (_, av) -> (
              match av.vfn with
              | Some Inline -> ()
              | Some (Fn n) -> charge_passed_fn ctx sum ~loc n ~argroot:droot
              | Some (Partial (n, stored)) ->
                  charge_partial ctx sum ~loc n stored ~argroot:droot
              | None ->
                  charge_callv ctx sum av.vroot ~loc
                    ~desc:(name ^ " invokes its argument " ^ fk))
          | Aomit _ -> ()))
    entry.Tables.e_calls;
  (* An arrow-typed result is a partial application of the external: keep
     the target so completion re-dispatches against the full argument list. *)
  if (match rty with Some t -> is_arrow t | None -> false) then
    let vroot =
      S.joins
        (List.filter_map (function Aval (_, v) -> Some v.vroot | _ -> None) eargs)
    in
    { vroot; vfn = Some (Partial (name, partial_args eargs)) }
  else
    let vroot =
      match entry.Tables.e_res with
      | Tables.R_fresh -> S.fresh
      | Tables.R_args ks ->
          S.joins (List.filter_map (fun k -> Option.map arg_root (arg_find eargs k)) ks)
      | Tables.R_unknown -> S.unknown ("result of " ^ name)
    in
    { vroot; vfn = None }

(* A spawn site (Fr_util.Pool.run/map, Domain.spawn) outside the Pool unit
   itself: the job argument is not folded into the caller — it becomes a
   worker root, checked independently by [Check].  The Pool implementation
   is trusted runtime: inside it, run/map calls analyze normally. *)
and handle_spawn ctx sum ~loc fname args =
  let rec split acc = function
    | [] -> (List.rev acc, None)
    | [ (Asttypes.Nolabel, Some fe) ] -> (List.rev acc, Some fe)
    | a :: tl -> split (a :: acc) tl
  in
  let others, fn = split [] args in
  List.iter (fun (_, eo) -> Option.iter (fun a -> ignore (eval ctx sum a)) eo) others;
  (match fn with
  | None ->
      S.add_offense sum ~rule:S.rule_unknown_call ~loc
        ~desc:("partial application of " ^ fname ^ " hides the worker body")
  | Some fe -> (
      let info kind = { rk = kind; r_loc = fe.exp_loc; r_file = ctx.file } in
      let opaque why =
        register_root ctx
          (Printf.sprintf "%s.<worker-opaque:%d>" ctx.prefix (loc_line fe.exp_loc))
          (info (Root_opaque why))
      in
      match fe.exp_desc with
      | Texp_function _ ->
          let name = Printf.sprintf "%s.<worker:%d>" ctx.prefix (loc_line fe.exp_loc) in
          let fsum = analyze_fn ctx ~name ~loc:fe.exp_loc ~shared:false fe in
          replace_summary ctx name fsum;
          register_root ctx name (info (Root_named name))
      | Texp_ident (p, _, _) -> (
          match (resolve_path ctx p).vfn with
          | Some (Fn n) when Hashtbl.mem ctx.st.summaries n ->
              register_root ctx n (info (Root_named n))
          | _ -> opaque "worker is not a known project function")
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, pargs) -> (
          List.iter (fun (_, eo) -> Option.iter (fun a -> ignore (eval ctx sum a)) eo) pargs;
          match (resolve_path ctx p).vfn with
          | Some (Fn n) when Hashtbl.mem ctx.st.summaries n ->
              register_root ctx n (info (Root_named n))
          | _ -> opaque "worker is a partial application of an unknown function")
      | _ -> opaque "unanalyzable worker argument"));
  { vroot = S.fresh; vfn = None }

and replace_summary ctx name sum =
  (match Hashtbl.find_opt ctx.st.summaries name with
  | Some old when S.digest old = S.digest sum -> ()
  | _ ->
      if Sys.getenv_opt "FRDOMCHECK_DEBUG" <> None then begin
        Printf.eprintf "  changed: %s (h=%d)\n%!" name (Hashtbl.hash (S.digest sum));
        if Sys.getenv_opt "FRDOMCHECK_DEBUG_VERBOSE" <> None then begin
          List.iter (fun (o : S.offense) -> Printf.eprintf "    off[%s] %s\n" o.S.rule o.S.odesc) sum.S.offenses;
          List.iter (fun (p, (pr : S.prov)) -> Printf.eprintf "    mutp %s: %s\n" p pr.S.pdesc) sum.S.mutp;
          List.iter (fun (p, (pr : S.prov)) -> Printf.eprintf "    callp %s: %s\n" p pr.S.pdesc) sum.S.callp
        end
      end;
      ctx.st.changed <- true);
  Hashtbl.replace ctx.st.summaries name sum

(* ------------------------------------------------------------------ *)
(* Structures, units and rounds                                        *)
(* ------------------------------------------------------------------ *)

let rec pat_vars : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (sub, id, _) -> id :: pat_vars sub
  | Tpat_tuple ps | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_variant (_, Some sub, _) | Tpat_lazy sub -> pat_vars sub
  | Tpat_record (fields, _) -> List.concat_map (fun (_, _, sub) -> pat_vars sub) fields
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Tpat_value arg -> pat_vars (arg :> value general_pattern)
  | Tpat_exception sub -> pat_vars sub
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> []

let has_worker_attr vb =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = "frdomcheck.worker")
    vb.vb_attributes

let rec walk_structure ctx str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (module_binding ctx) vbs
      | Tstr_module mb -> walk_module ctx mb
      | Tstr_recmodule mbs -> List.iter (walk_module ctx) mbs
      | Tstr_eval (e, _) ->
          let name = Printf.sprintf "%s.<init:%d>" ctx.prefix (loc_line e.exp_loc) in
          let sum =
            S.create ~name ~loc:e.exp_loc ~file:ctx.file ~params:[] ~is_fn:false
          in
          ignore (eval ctx sum e);
          replace_summary ctx name sum
      | _ -> ())
    str.str_items

and walk_module ctx mb =
  match mb.mb_id with
  | None -> ()
  | Some id ->
      let sub = { ctx with prefix = ctx.prefix ^ "." ^ Ident.name id } in
      let rec go me =
        match me.mod_desc with
        | Tmod_structure s -> walk_structure sub s
        | Tmod_constraint (inner, _, _, _) -> go inner
        | Tmod_ident _ | Tmod_apply _ | Tmod_functor _ | Tmod_unpack _
        | Tmod_apply_unit _ ->
            ()
      in
      go mb.mb_expr

and module_binding ctx vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) ->
      let qualified =
        match Hashtbl.find_opt ctx.st.bnames (ctx.prefix ^ "/" ^ Ident.unique_name id) with
        | Some n -> n
        | None -> ctx.prefix ^ "." ^ Ident.name id
      in
      if is_syntactic_fn vb.vb_expr then begin
        let sum = analyze_fn ctx ~name:qualified ~loc:vb.vb_loc ~shared:true vb.vb_expr in
        replace_summary ctx qualified sum
      end
      else begin
        let sum =
          S.create ~name:qualified ~loc:vb.vb_loc ~file:ctx.file ~params:[] ~is_fn:false
        in
        let v = eval ctx sum vb.vb_expr in
        sum.S.ret <- v.vroot;
        replace_summary ctx qualified sum;
        match v.vfn with
        | Some (Fn n) when not (Hashtbl.mem ctx.st.val_fns qualified && Hashtbl.find ctx.st.val_fns qualified = n) ->
            Hashtbl.replace ctx.st.val_fns qualified n;
            ctx.st.changed <- true
        | _ -> ()
      end;
      if has_worker_attr vb then
        register_root ctx qualified
          { rk = Root_named qualified; r_loc = vb.vb_loc; r_file = ctx.file }
  | _ ->
      (* pattern bindings at module level: analyze for effects only *)
      let name = Printf.sprintf "%s.<init:%d>" ctx.prefix (loc_line vb.vb_loc) in
      let sum = S.create ~name ~loc:vb.vb_loc ~file:ctx.file ~params:[] ~is_fn:false in
      ignore (eval ctx sum vb.vb_expr);
      replace_summary ctx name sum

(* ------------------------------------------------------------------ *)
(* Sweep A: load a unit — aliases, module-level names, worker attrs    *)
(* ------------------------------------------------------------------ *)

type unit_info = {
  u_prefix : string;
  u_file : string;
  u_aliases : Names.aliases;
  u_menv : (string, vinfo) Hashtbl.t;
  u_str : structure;
}

(* Claim a module-level binding's summary name.  Shadowed bindings (two
   [let voronoi] at the same level) would otherwise share one qualified
   name and flip its summary every round, breaking convergence; the *last*
   binding keeps the plain name (it is what Pdot references from other
   units resolve to) and each earlier one moves to a line-suffixed name,
   with its menv entry rewritten to match. *)
let claim_name st ~claimed ~prefix ~menv ~qualified ~line id =
  (match Hashtbl.find_opt claimed qualified with
  | Some (old_uid, old_line) ->
      let old_name = Printf.sprintf "%s:%d" qualified old_line in
      Hashtbl.replace st.bnames (prefix ^ "/" ^ old_uid) old_name;
      (match Hashtbl.find_opt menv old_uid with
      | Some v ->
          let vroot = if S.is_fresh v.vroot then v.vroot else S.of_global old_name in
          if not (S.is_fresh v.vroot) then Hashtbl.replace st.globals old_name ();
          Hashtbl.replace menv old_uid
            { vroot; vfn = (match v.vfn with Some (Fn _) -> Some (Fn old_name) | f -> f) }
      | None -> ())
  | None -> ());
  Hashtbl.replace claimed qualified (Ident.unique_name id, line);
  Hashtbl.replace st.bnames (prefix ^ "/" ^ Ident.unique_name id) qualified

let rec register_structure st ~prefix ~aliases ~menv ~claimed str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_module mb -> register_module st ~prefix ~aliases ~menv ~claimed mb
      | Tstr_recmodule mbs ->
          List.iter (register_module st ~prefix ~aliases ~menv ~claimed) mbs
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) ->
                  let qualified = prefix ^ "." ^ Ident.name id in
                  claim_name st ~claimed ~prefix ~menv ~qualified
                    ~line:(loc_line vb.vb_loc) id;
                  if is_syntactic_fn vb.vb_expr then
                    Hashtbl.replace menv (Ident.unique_name id)
                      { vroot = S.fresh; vfn = Some (Fn qualified) }
                  else begin
                    Hashtbl.replace st.globals qualified ();
                    Hashtbl.replace menv (Ident.unique_name id)
                      { vroot = S.of_global qualified; vfn = Some (Fn qualified) }
                  end
              | p ->
                  List.iter
                    (fun id ->
                      let qualified = prefix ^ "." ^ Ident.name id in
                      Hashtbl.replace st.globals qualified ();
                      Hashtbl.replace menv (Ident.unique_name id)
                        { vroot = S.of_global qualified; vfn = None })
                    (pat_vars vb.vb_pat)
                  |> fun () -> ignore p)
            vbs
      | _ -> ())
    str.str_items

and register_module st ~prefix ~aliases ~menv ~claimed mb =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
      let rec go me =
        match me.mod_desc with
        | Tmod_structure s ->
            register_structure st ~prefix:(prefix ^ "." ^ Ident.name id) ~aliases ~menv
              ~claimed s
        | Tmod_constraint (inner, _, _, _) -> go inner
        | Tmod_ident (p, _) ->
            (* [module G = Fr_graph]: references through G resolve via this
               alias during name normalization *)
            Hashtbl.replace aliases (Ident.name id)
              (String.split_on_char '.' (Names.of_path ~aliases p))
        | Tmod_apply ({ mod_desc = Tmod_ident (p, _); _ }, _, _) ->
            (* [module M = Map.Make (K)]: map M.* onto the functor's name so
               the externals table can model persistent Map/Set operations *)
            Hashtbl.replace aliases (Ident.name id)
              (String.split_on_char '.' (Names.of_path ~aliases p))
        | Tmod_apply _ | Tmod_functor _ | Tmod_unpack _ | Tmod_apply_unit _ -> ()
      in
      go mb.mb_expr)

let load_unit st (cmt : Cmt_format.cmt_infos) =
  match cmt.cmt_annots with
  | Cmt_format.Implementation str ->
      let prefix = Names.unit_prefix cmt.cmt_modname in
      let file =
        match cmt.cmt_sourcefile with Some f -> f | None -> cmt.cmt_modname
      in
      let aliases : Names.aliases = Hashtbl.create 8 in
      let menv = Hashtbl.create 64 in
      Hashtbl.replace st.units prefix ();
      let claimed = Hashtbl.create 64 in
      register_structure st ~prefix ~aliases ~menv ~claimed str;
      Some { u_prefix = prefix; u_file = file; u_aliases = aliases; u_menv = menv; u_str = str }
  | _ -> None

(* One fixpoint round over every unit.  Summaries are replaced only after a
   binding's walk completes, so recursive and not-yet-visited references see
   last round's result; [st.changed] reports whether anything moved. *)
let analyze_round st units =
  st.changed <- false;
  (* re-collected every round: early rounds misreport not-yet-analyzed
     project functions, the final round's content is what's accurate *)
  Hashtbl.reset st.unmodeled;
  List.iter
    (fun u ->
      let ctx =
        {
          st;
          prefix = u.u_prefix;
          file = u.u_file;
          aliases = u.u_aliases;
          menv = u.u_menv;
          venv = Hashtbl.create 256;
          fresh_env = false;
          outer = [];
        }
      in
      walk_structure ctx u.u_str)
    units
