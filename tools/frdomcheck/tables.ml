(* Models of external (stdlib) functions.

   frdomcheck assumes a closed world over the project's cmt files plus
   this table; any external call not described here is conservatively an
   unknown effect.  Each entry says what the function mutates, whether it
   reads mutable state, which arguments it invokes (higher-order), and
   what its result can alias.

   Argument selectors use the same keys as function interfaces: "$n" is
   the n-th positional (unlabeled) argument, "~l" / "?l" a labeled one. *)

type result_shape =
  | R_fresh  (* result aliases nothing the caller knows: allocators, scalars *)
  | R_args of string list  (* result may alias these arguments: projections *)
  | R_unknown  (* no claim: folds, Fun.protect, ... *)

type entry = {
  e_mut : string list;  (* arguments mutated in place *)
  e_reads : bool;  (* reads mutable state *)
  e_global : string option;  (* mutates ambient state (global PRNG, stdout, GC) *)
  e_calls : (string * string list) list;
      (* higher-order: (function argument, data arguments whose roots flow
         into that function's parameters) *)
  e_res : result_shape;
}

let pure = { e_mut = []; e_reads = false; e_global = None; e_calls = []; e_res = R_fresh }

let proj args = { pure with e_res = R_args args }

let reads = { pure with e_reads = true }

let reads_proj args = { pure with e_reads = true; e_res = R_args args }

let mutates targets = { pure with e_mut = targets; e_reads = true }

let global what = { pure with e_global = Some what; e_reads = true; e_res = R_unknown }

let table : (string, entry) Hashtbl.t = Hashtbl.create 512

let reg names entry = List.iter (fun n -> Hashtbl.replace table n entry) names

let reg_mod m names entry = reg (List.map (fun n -> m ^ "." ^ n) names) entry

(* Operators and single-ident builtins: pure scalar arithmetic, comparisons,
   conversions.  Polymorphic compare reads no mutable state in this model —
   frlint separately polices its use on hot paths. *)
let () =
  reg
    [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr"; "~-"; "~+";
      "+."; "-."; "*."; "/."; "**"; "~-."; "~+."; "="; "<>"; "<"; ">"; "<="; ">="; "==";
      "!="; "&&"; "||"; "&"; "or"; "not"; "^"; "compare"; "min"; "max"; "abs"; "abs_float";
      "succ"; "pred"; "sqrt"; "exp"; "log"; "log10"; "floor"; "ceil"; "mod_float";
      "truncate"; "float"; "float_of_int"; "int_of_float"; "int_of_char"; "char_of_int";
      "int_of_string"; "int_of_string_opt"; "string_of_int"; "string_of_float";
      "string_of_bool"; "bool_of_string"; "float_of_string"; "float_of_string_opt";
      "infinity"; "neg_infinity"; "nan"; "max_int"; "min_int"; "max_float"; "min_float";
      "epsilon_float"; "lnot"; "ignore"; "raise"; "raise_notrace"; "failwith";
      "invalid_arg"; "exit"; "classify_float" ]
    pure

let () =
  reg [ "fst"; "snd"; "Fun.id"; "Lazy.force"; "Option.get"; "Option.value"; "Result.get_ok" ]
    (proj [ "$0"; "$1" ])

(* References: [ref x] allocates a fresh cell but the *contents* alias the
   argument, so the cell's root joins it — assigning the cell then charges
   at worst the original root (conservative, never unsound). *)
let () =
  reg [ "ref" ] (proj [ "$0" ]);
  reg [ "!" ] (reads_proj [ "$0" ]);
  reg [ ":=" ] (mutates [ "$0" ]);
  reg [ "incr"; "decr" ] (mutates [ "$0" ])

let () =
  reg_mod "Atomic" [ "make" ] pure;
  reg_mod "Atomic" [ "get" ] (reads_proj [ "$0" ]);
  reg_mod "Atomic"
    [ "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr"; "decr" ]
    (mutates [ "$0" ])

let () =
  reg_mod "Array" [ "length" ] pure;
  reg_mod "Array" [ "get"; "unsafe_get" ] (reads_proj [ "$0" ]);
  reg_mod "Array" [ "make"; "create_float"; "init_unsafe" ] pure;
  reg_mod "Array" [ "make_matrix" ] pure;
  (* copy/sub/append/concat allocate a fresh spine, but elements are shared
     with the source: result joins the source roots. *)
  reg_mod "Array" [ "copy"; "sub"; "append"; "concat"; "of_list"; "to_list" ]
    (reads_proj [ "$0"; "$1" ]);
  reg_mod "Array" [ "set"; "unsafe_set"; "fill" ] (mutates [ "$0" ]);
  reg_mod "Array" [ "blit" ] (mutates [ "$2" ]);
  reg_mod "Array" [ "mem"; "memq" ] reads;
  reg_mod "Array" [ "init" ]
    { pure with e_calls = [ ("$1", []) ]; e_res = R_fresh };
  reg_mod "Array"
    [ "iter"; "iteri"; "map"; "mapi"; "exists"; "for_all"; "find_opt"; "find_index" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1" ]) ]; e_res = R_unknown };
  reg_mod "Array" [ "fold_left" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_unknown };
  reg_mod "Array" [ "fold_right" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_unknown };
  reg_mod "Array" [ "iter2"; "map2" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_unknown };
  reg_mod "Array" [ "sort"; "stable_sort"; "fast_sort" ]
    { pure with e_mut = [ "$1" ]; e_reads = true; e_calls = [ ("$0", [ "$1" ]) ] }

let () =
  reg_mod "List"
    [ "length"; "compare_lengths"; "compare_length_with"; "is_empty" ]
    pure;
  reg_mod "List"
    [ "hd"; "tl"; "nth"; "nth_opt"; "rev"; "append"; "rev_append"; "concat"; "flatten";
      "split"; "combine" ]
    (proj [ "$0"; "$1" ]);
  reg [ "@" ] (proj [ "$0"; "$1" ]);
  reg_mod "List" [ "init" ] { pure with e_calls = [ ("$1", []) ]; e_res = R_fresh };
  reg_mod "List"
    [ "iter"; "iteri"; "map"; "mapi"; "rev_map"; "filter"; "filteri"; "filter_map";
      "concat_map"; "find"; "find_opt"; "find_map"; "find_index"; "for_all"; "exists";
      "partition"; "partition_map"; "sort"; "stable_sort"; "sort_uniq"; "fast_sort";
      "merge"; "remove_assoc" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_args [ "$1"; "$2" ] };
  reg_mod "List" [ "fold_left" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_unknown };
  reg_mod "List" [ "fold_right" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_unknown };
  reg_mod "List" [ "iter2"; "for_all2"; "exists2"; "map2" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_args [ "$1"; "$2" ] };
  reg_mod "List" [ "mem"; "memq"; "mem_assoc"; "assoc"; "assoc_opt" ] (reads_proj [ "$0"; "$1" ])

let () =
  reg_mod "Hashtbl" [ "create" ] pure;
  reg_mod "Hashtbl" [ "length"; "mem"; "hash"; "stats" ] reads;
  reg_mod "Hashtbl" [ "find"; "find_opt"; "find_all"; "copy" ] (reads_proj [ "$0" ]);
  reg_mod "Hashtbl" [ "add"; "replace"; "remove"; "reset"; "clear" ] (mutates [ "$0" ]);
  reg_mod "Hashtbl" [ "iter" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1" ]) ]; e_res = R_fresh };
  reg_mod "Hashtbl" [ "fold" ]
    { pure with e_reads = true; e_calls = [ ("$0", [ "$1"; "$2" ]) ]; e_res = R_unknown };
  reg_mod "Hashtbl" [ "filter_map_inplace" ]
    { pure with e_mut = [ "$1" ]; e_reads = true; e_calls = [ ("$0", [ "$1" ]) ] }

let () =
  reg_mod "Bytes" [ "create"; "make"; "init"; "copy"; "of_string"; "to_string"; "sub_string" ] pure;
  reg_mod "Bytes" [ "length"; "get"; "unsafe_get" ] reads;
  reg_mod "Bytes" [ "set"; "unsafe_set"; "fill" ] (mutates [ "$0" ]);
  reg_mod "Bytes" [ "blit"; "blit_string" ] (mutates [ "$2" ])

let () =
  reg_mod "Buffer" [ "create" ] pure;
  reg_mod "Buffer" [ "contents"; "length"; "to_bytes"; "nth"; "sub" ] reads;
  reg_mod "Buffer"
    [ "add_char"; "add_string"; "add_bytes"; "add_substring"; "add_buffer"; "clear";
      "reset"; "truncate" ]
    (mutates [ "$0" ])

let () =
  reg_mod "Queue" [ "create" ] pure;
  reg_mod "Queue" [ "length"; "is_empty"; "peek"; "peek_opt"; "top" ] (reads_proj [ "$0" ]);
  reg_mod "Queue"
    [ "add"; "push"; "pop"; "take"; "take_opt"; "clear"; "transfer" ]
    (mutates [ "$0"; "$1" ]);
  reg_mod "Stack" [ "create" ] pure;
  reg_mod "Stack" [ "length"; "is_empty"; "top"; "top_opt" ] (reads_proj [ "$0" ]);
  reg_mod "Stack" [ "push"; "pop"; "pop_opt"; "clear" ] (mutates [ "$0"; "$1" ])

let () =
  reg_mod "String"
    [ "length"; "get"; "unsafe_get"; "sub"; "concat"; "make"; "init"; "equal"; "compare";
      "uppercase_ascii"; "lowercase_ascii"; "capitalize_ascii"; "uncapitalize_ascii";
      "index"; "index_opt"; "rindex"; "rindex_opt"; "contains"; "split_on_char"; "trim";
      "starts_with"; "ends_with"; "cat"; "escaped"; "map"; "iter"; "exists"; "for_all";
      "to_seq" ]
    pure;
  reg_mod "Char" [ "code"; "chr"; "escaped"; "lowercase_ascii"; "uppercase_ascii"; "equal"; "compare" ] pure;
  reg_mod "Int" [ "compare"; "equal"; "max"; "min"; "abs"; "to_float"; "to_string"; "max_int"; "min_int" ] pure;
  reg_mod "Float"
    [ "compare"; "equal"; "max"; "min"; "abs"; "of_int"; "to_int"; "is_nan"; "is_finite";
      "infinity"; "neg_infinity"; "nan"; "max_float"; "min_float"; "epsilon"; "round"; "to_string" ]
    pure;
  reg_mod "Bool" [ "compare"; "equal"; "not"; "to_string" ] pure;
  reg_mod "Filename"
    [ "concat"; "basename"; "dirname"; "check_suffix"; "chop_suffix"; "chop_extension";
      "extension"; "remove_extension"; "quote" ]
    pure

let () =
  reg_mod "Option" [ "is_some"; "is_none"; "equal"; "compare" ] pure;
  reg_mod "Option" [ "to_list"; "join" ] (proj [ "$0" ]);
  reg_mod "Option" [ "map"; "iter"; "bind"; "fold" ]
    { pure with e_calls = [ ("$0", [ "$1" ]); ("~some", [ "$0" ]); ("~none", []) ]; e_res = R_unknown };
  reg_mod "Result" [ "is_ok"; "is_error" ] pure;
  reg_mod "Result" [ "to_option" ] (proj [ "$0" ]);
  reg_mod "Result" [ "map"; "iter"; "bind"; "map_error" ]
    { pure with e_calls = [ ("$0", [ "$1" ]) ]; e_res = R_unknown }

(* Fun.protect invokes both the body and ~finally; its result is the
   body's, which we cannot name — R_unknown. *)
let () =
  reg [ "Fun.protect" ]
    { pure with e_calls = [ ("$0", []); ("~finally", []) ]; e_res = R_unknown };
  reg [ "Fun.negate"; "Fun.flip" ] (proj [ "$0" ])

(* Ambient-state effects.  IO and the global PRNG classify as Mutates; any
   worker-reachable use is a real finding (frlint already bans most of
   these in lib/). *)
let () =
  reg
    [ "print_endline"; "print_string"; "print_newline"; "print_int"; "print_char";
      "print_float"; "prerr_endline"; "prerr_string"; "prerr_newline"; "Printf.printf";
      "Printf.eprintf"; "Format.printf"; "Format.eprintf"; "Format.print_flush";
      "output_string"; "output_char"; "output_value"; "flush"; "read_line"; "open_out";
      "close_out"; "open_in"; "close_in"; "input_line"; "really_input_string";
      "At_exit.register"; "at_exit" ]
    (global "io");
  reg_mod "Random" [ "int"; "full_int"; "float"; "bool"; "bits"; "self_init"; "init" ]
    (global "global PRNG state");
  reg_mod "Random.State" [ "make"; "copy"; "split" ] pure;
  reg_mod "Random.State" [ "int"; "full_int"; "float"; "bool"; "bits" ] (mutates [ "$0" ]);
  reg_mod "Gc" [ "compact"; "full_major"; "major"; "minor"; "set" ] (global "GC");
  reg_mod "Gc" [ "stat"; "quick_stat"; "minor_words" ] reads;
  reg_mod "Sys" [ "time"; "getenv"; "getenv_opt"; "file_exists"; "argv"; "word_size" ] reads;
  reg_mod "Printexc"
    [ "to_string"; "get_backtrace"; "get_raw_backtrace"; "raw_backtrace_to_string";
      "record_backtrace" ]
    reads;
  reg [ "Printexc.raise_with_backtrace" ] pure

(* Formatted-output builders that only allocate. *)
let () =
  reg [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf"; "Scanf.sscanf" ] pure

(* Domain-level synchronization: mutating the lock itself is charged to its
   root like any other in-place write. *)
let () =
  reg_mod "Mutex" [ "create" ] pure;
  reg_mod "Mutex" [ "lock"; "unlock"; "try_lock" ] (mutates [ "$0" ]);
  reg_mod "Condition" [ "create" ] pure;
  reg_mod "Condition" [ "wait"; "signal"; "broadcast" ] (mutates [ "$0"; "$1" ]);
  reg_mod "Domain" [ "cpu_count"; "recommended_domain_count"; "self" ] reads;
  reg_mod "Domain" [ "join" ] (mutates [ "$0" ]);
  (* Inside the trusted Pool unit a spawn analyzes like a plain call of the
     job thunk (outside it, Analyze intercepts spawns as worker roots). *)
  reg [ "Domain.spawn" ] { pure with e_calls = [ ("$0", []) ]; e_res = R_unknown }

let find name = Hashtbl.find_opt table name
