(* Qualified-name normalization.

   The analysis keys everything — summaries, call edges, externals tables,
   allowlist entries — by a flat dotted name ("Fr_graph.Gstate.set_weight",
   "Hashtbl.replace").  Typedtree paths arrive in several spellings of the
   same thing: dune's wrapped-library mangling ("Fr_graph__Gstate"), local
   module aliases ("G.Gstate.set_weight" after [module G = Fr_graph]),
   explicit "Stdlib." prefixes, and dune's executable-module prefix
   ("Dune__exe__Fpga_route").  [normalize] folds them all to one canonical
   form so cross-unit references meet the definitions they name. *)

(* Split a dune-mangled component on "__": "Fr_graph__Gstate" becomes
   ["Fr_graph"; "Gstate"].  Single underscores are untouched. *)
let split_mangled s =
  let n = String.length s in
  let out = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '_' && s.[!i + 1] = '_' && !i > !start then begin
      out := String.sub s !start (!i - !start) :: !out;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  List.rev (String.sub s !start (n - !start) :: !out)

(* Per-unit alias table: local alias ident name -> normalized replacement
   components.  Filled from [module G = Fr_graph] bindings; everything
   else in a Typedtree path is already fully resolved through opens. *)
type aliases = (string, string list) Hashtbl.t

let no_aliases : aliases = Hashtbl.create 1

let rec expand_head aliases parts fuel =
  match parts with
  | head :: rest when fuel > 0 -> (
      match Hashtbl.find_opt aliases head with
      | Some repl -> expand_head aliases (repl @ rest) (fuel - 1)
      | None -> parts)
  | _ -> parts

let normalize ~aliases name =
  let parts = String.split_on_char '.' name in
  let parts = expand_head aliases parts 10 in
  let parts = List.concat_map split_mangled parts in
  let parts =
    match parts with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | "Dune" :: "exe" :: (_ :: _ as rest) -> rest
    | l -> l
  in
  String.concat "." parts

let of_path ~aliases p = normalize ~aliases (Path.name p)

(* The unit prefix under which a cmt's module-level bindings are
   registered: "Fr_graph__Gstate" -> "Fr_graph.Gstate". *)
let unit_prefix modname = normalize ~aliases:no_aliases modname

let is_within ~prefix name =
  String.equal name prefix
  || String.length name > String.length prefix
     && String.sub name 0 (String.length prefix + 1) = prefix ^ "."
