(* File discovery, parsing, and rule/suppression orchestration. *)

open Lintlib

type summary = {
  findings : Finding.t list;  (* unsuppressed, sorted *)
  files : int;
  inline_suppressed : int;
  allowlisted : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else walk acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
    path :: acc
  else acc

(* Parse + AST rules + inline suppression for one file.  Returns
   (kept findings, inline-suppressed count). *)
let lint_file path =
  let source = read_file path in
  let file = Scope.normalize path in
  let scope = Scope.classify path in
  let module_name = Scope.module_name path in
  let findings =
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    match
      if Filename.check_suffix path ".mli" then begin
        (* interfaces carry no expressions; parse purely as a syntax check *)
        ignore (Parse.interface lexbuf);
        []
      end
      else Rules.lint_structure ~scope ~module_name ~file (Parse.implementation lexbuf)
    with
    | fs -> fs
    | exception exn ->
        [
          Finding.make ~file ~line:1 ~col:0 ~rule:"syntax-error"
            ~message:("file does not parse: " ^ Printexc.to_string exn);
        ]
  in
  let lines = Array.of_list (String.split_on_char '\n' source) in
  Suppress.filter_inline ~lines findings

(* Filesystem rule: every .ml under lib/ ships a sibling .mli. *)
let mli_required path =
  let scope = Scope.classify path in
  if
    scope.Scope.in_lib
    && Filename.check_suffix path ".ml"
    && not (Sys.file_exists (path ^ "i"))
  then
    Some
      (Finding.make ~file:(Scope.normalize path) ~line:1 ~col:0 ~rule:"mli-required"
         ~message:
           "library module has no interface file; add a sibling .mli to pin the public \
            surface")
  else None

let run ?allowlist_path ~roots () =
  let allow, allow_errors =
    match allowlist_path with
    | None -> (None, [])
    | Some p ->
        let a, errs = Suppress.load p in
        (Some a, errs)
  in
  let files = List.fold_left walk [] roots |> List.sort_uniq compare in
  let inline = ref 0 in
  let raw =
    List.concat_map
      (fun path ->
        let kept, n = lint_file path in
        inline := !inline + n;
        match mli_required path with Some f -> f :: kept | None -> kept)
      files
  in
  let allowlisted = ref 0 in
  let kept =
    match allow with
    | None -> raw
    | Some a ->
        List.filter
          (fun f ->
            let hit = Suppress.suppresses a f in
            if hit then incr allowlisted;
            not hit)
          raw
  in
  let unused = match allow with None -> [] | Some a -> Suppress.unused_findings a in
  {
    findings = List.sort Finding.order (allow_errors @ kept @ unused);
    files = List.length files;
    inline_suppressed = !inline;
    allowlisted = !allowlisted;
  }
