(* The AST rule registry.

   Every rule is a check over Parsetree expressions driven by one
   [Ast_iterator] pass.  Rules are deliberately syntactic (we lint the
   Parsetree, not the Typedtree), so each one trades a little recall for
   zero build-dependency on type information; the heuristics are documented
   in DESIGN.md §"Static analysis" and each false positive can be silenced
   per-site with an inline [frlint: allow <rule-id> — reason] comment. *)

open Lintlib
open Parsetree

type ctx = {
  scope : Scope.t;
  module_name : string;
  file : string;
  mutable findings : Finding.t list;
  (* innermost-first stack of enclosing let-binding names *)
  mutable bindings : string list;
  (* innermost-first stack of enclosing (structure-defining) module names *)
  mutable modules : string list;
}

let add ctx loc rule message =
  ctx.findings <- Finding.of_location ~file:ctx.file ~rule ~message loc :: ctx.findings

(* ------------------------------------------------------------------ *)
(* no-linear-scan / no-obj-magic / no-print-in-lib: ident rules        *)
(* ------------------------------------------------------------------ *)

let linear_scan_fns =
  [ "mem"; "memq"; "assoc"; "assoc_opt"; "assq"; "assq_opt"; "mem_assoc"; "mem_assq" ]

let print_idents =
  [ "print_endline"; "print_string"; "print_newline"; "print_int"; "print_char"; "print_float" ]

let check_ident ctx loc (lid : Longident.t) =
  match lid with
  | Ldot (Lident "List", f) | Ldot (Ldot (Lident "Stdlib", "List"), f)
    when List.mem f linear_scan_fns ->
      if ctx.scope.Scope.hot then
        add ctx loc "no-linear-scan"
          (Printf.sprintf
             "List.%s is an O(n) scan per call on a router hot path; index with a \
              Hashtbl/Bitset instead"
             f)
  | Ldot (Lident "Obj", "magic") | Ldot (Ldot (Lident "Stdlib", "Obj"), "magic") ->
      add ctx loc "no-obj-magic" "Obj.magic defeats the type system; find a typed encoding"
  | Lident p when List.mem p print_idents ->
      if ctx.scope.Scope.in_lib && not ctx.scope.Scope.print_exempt then
        add ctx loc "no-print-in-lib"
          (p ^ " writes to stdout from library code; return data and print in bin/ or bench/")
  | Ldot (Lident ("Printf" | "Format"), "printf") ->
      if ctx.scope.Scope.in_lib && not ctx.scope.Scope.print_exempt then
        add ctx loc "no-print-in-lib"
          "printf writes to stdout from library code; return data and print in bin/ or bench/"
  | Lident (("==" | "!=") as op) | Ldot (Lident "Stdlib", (("==" | "!=") as op)) ->
      (* Physical equality on immutable data is representation-dependent:
         unboxing, sharing and copying all change the answer without
         changing the value.  Where identity of a mutable structure is the
         actual intent, say so with a suppression. *)
      if ctx.scope.Scope.hot then
        add ctx loc "no-physical-equality"
          (Printf.sprintf
             "physical equality (%s) in a hot library is representation-dependent; use \
              structural (%s) or a typed equality, or suppress where identity of a mutable \
              value is the intent"
             op
             (if op = "==" then "=" else "<>"))
  | Ldot (Lident "Random", fn) | Ldot (Ldot (Lident "Stdlib", "Random"), fn) ->
      (* Random.State.* arrives as Ldot (Ldot (Lident "Random", "State"), _)
         and so never matches here — explicit-state randomness is exactly
         what this rule steers code toward. *)
      if ctx.scope.Scope.hot then
        add ctx loc "no-global-mutable-random"
          (Printf.sprintf
             "Random.%s uses the global PRNG state, which is shared across domains and \
              breaks seeded reproducibility; thread a Random.State (Fr_util.Rng) instead"
             fn)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* no-polymorphic-compare                                              *)
(* ------------------------------------------------------------------ *)

(* "Trivial" operands — plain variables, constants, projections — keep the
   comparison out of scope: comparing two scalars by ident is idiomatic and
   cheap.  Structured literals and the results of function calls are where
   polymorphic compare both costs (caml_compare on boxed data) and bites
   (NaN, cyclic values, physical-vs-structural surprises). *)
let rec is_trivial e =
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_field (e, _) -> is_trivial e
  | Pexp_constraint (e, _) -> is_trivial e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match txt with
      | Ldot (Lident ("Array" | "String" | "Bytes"), ("get" | "unsafe_get"))
      | Ldot (Ldot (Lident "Stdlib", ("Array" | "String" | "Bytes")), ("get" | "unsafe_get"))
      | Lident
          ( "!" | "~-" | "~-." | "fst" | "snd" | "+" | "-" | "*" | "/" | "mod" | "land"
          | "lor" | "lxor" | "lsl" | "lsr" | "asr" | "+." | "-." | "*." | "/." | "**"
          | "abs" | "abs_float" | "succ" | "pred" | "float_of_int" | "int_of_float" ) ->
          List.for_all (fun (_, a) -> is_trivial a) args
      | _ -> false)
  | _ -> false

let is_constant e = match e.pexp_desc with Pexp_constant _ -> true | _ -> false

let poly_op (lid : Longident.t) =
  match lid with
  | Lident (("=" | "<>" | "compare" | "min" | "max") as op) -> Some op
  | Ldot (Lident "Stdlib", (("=" | "<>" | "compare" | "min" | "max") as op)) -> Some op
  | Ldot (Lident "Hashtbl", "hash") | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), "hash") ->
      Some "Hashtbl.hash"
  | _ -> None

(* Unapplied [compare] handed to a higher-order function ([List.sort_uniq
   compare ...]): the callee calls caml_compare per element pair, which the
   applied-operand check above never sees. *)
let bare_compare_ident (lid : Longident.t) =
  match lid with
  | Lident "compare" | Ldot (Lident "Stdlib", "compare") -> true
  | _ -> false

let check_poly_compare ctx loc fn args =
  if ctx.scope.Scope.hot then begin
    (match fn.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match poly_op txt with
        | Some op ->
            let exprs = List.map snd args in
            (* A literal operand pins the type to a scalar; skip those. *)
            if
              List.length exprs >= 1
              && List.exists (fun e -> not (is_trivial e)) exprs
              && not (List.exists is_constant exprs)
            then
              add ctx loc "no-polymorphic-compare"
                (Printf.sprintf
                   "polymorphic %s on a computed operand in a hot library; bind operands \
                    to scalars first, or use a typed comparison (Int.equal, Float.compare, ...)"
                   op)
        | None -> ())
    | _ -> ());
    List.iter
      (fun (_, a) ->
        match a.pexp_desc with
        | Pexp_ident { txt; _ } when bare_compare_ident txt ->
            add ctx a.pexp_loc "no-polymorphic-compare"
              "bare polymorphic compare passed as a function argument in a hot library; \
               pass a typed comparator (Int.compare, Float.compare, ...) instead"
        | _ -> ())
      args
  end

(* ------------------------------------------------------------------ *)
(* error-names-entry-point                                             *)
(* ------------------------------------------------------------------ *)

let string_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Accepted prefixes for a message raised here: [Mod.f] where [f] is any
   enclosing binding (inner helpers inherit their caller's public name) and
   [Mod] is the file module, optionally extended with the nested-module
   chain. *)
let message_prefix_ok ctx msg =
  match String.index_opt msg ':' with
  | None -> false
  | Some i ->
      let prefix = String.sub msg 0 i in
      let flat b = ctx.module_name ^ "." ^ b in
      let nested b =
        String.concat "." ((ctx.module_name :: List.rev ctx.modules) @ [ b ])
      in
      (match ctx.bindings with
      | [] ->
          (* toplevel effectful code: only require the module to be right *)
          String.length prefix > String.length ctx.module_name
          && String.sub prefix 0 (String.length ctx.module_name + 1) = ctx.module_name ^ "."
      | bs -> List.exists (fun b -> prefix = flat b || prefix = nested b) bs)

let check_error_message ctx loc msg =
  if ctx.scope.Scope.in_lib && not (message_prefix_ok ctx msg) then
    let expected =
      match ctx.bindings with
      | [] -> ctx.module_name ^ ".<fn>"
      | b :: _ -> ctx.module_name ^ "." ^ b
    in
    add ctx loc "error-names-entry-point"
      (Printf.sprintf
         "error message %S must begin with \"%s: \" (an enclosing binding of this site) so \
          the raised exception names its real entry point"
         msg expected)

let check_raise_site ctx loc fn args =
  match (fn.pexp_desc, args) with
  | Pexp_ident { txt = Lident ("failwith" | "invalid_arg"); _ }, [ (_, arg) ]
  | ( Pexp_ident { txt = Ldot (Lident "Stdlib", ("failwith" | "invalid_arg")); _ },
      [ (_, arg) ] ) -> (
      match string_literal arg with
      | Some msg -> check_error_message ctx loc msg
      | None -> ())
  | Pexp_ident { txt = Lident "raise"; _ }, [ (_, arg) ]
  | Pexp_ident { txt = Ldot (Lident "Stdlib", "raise"); _ }, [ (_, arg) ] -> (
      match arg.pexp_desc with
      | Pexp_construct
          ({ txt = Lident ("Invalid_argument" | "Failure"); _ }, Some payload) -> (
          match string_literal payload with
          | Some msg -> check_error_message ctx loc msg
          | None -> ())
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* no-silent-catch-all                                                 *)
(* ------------------------------------------------------------------ *)

let check_try ctx cases =
  List.iter
    (fun c ->
      match c.pc_lhs.ppat_desc with
      | Ppat_any ->
          add ctx c.pc_lhs.ppat_loc "no-silent-catch-all"
            "catch-all `with _ ->` discards the exception (including Out_of_memory and \
             Stack_overflow); match the exceptions you mean, or bind and re-raise"
      | _ -> ())
    cases

(* ------------------------------------------------------------------ *)
(* The iterator                                                        *)
(* ------------------------------------------------------------------ *)

let binding_name vb =
  match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> Some txt | _ -> None

let iterator ctx =
  let default = Ast_iterator.default_iterator in
  {
    default with
    expr =
      (fun self e ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> check_ident ctx e.pexp_loc txt
        | Pexp_apply (fn, args) ->
            check_poly_compare ctx e.pexp_loc fn args;
            check_raise_site ctx e.pexp_loc fn args
        | Pexp_try (_, cases) -> check_try ctx cases
        | _ -> ());
        default.expr self e);
    value_binding =
      (fun self vb ->
        match binding_name vb with
        | Some name ->
            ctx.bindings <- name :: ctx.bindings;
            default.value_binding self vb;
            ctx.bindings <- List.tl ctx.bindings
        | None -> default.value_binding self vb);
    module_binding =
      (fun self mb ->
        match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
        | Some name, (Pmod_structure _ | Pmod_constraint _) ->
            ctx.modules <- name :: ctx.modules;
            default.module_binding self mb;
            ctx.modules <- List.tl ctx.modules
        | _ -> default.module_binding self mb);
  }

let lint_structure ~scope ~module_name ~file ast =
  let ctx = { scope; module_name; file; findings = []; bindings = []; modules = [] } in
  let it = iterator ctx in
  it.Ast_iterator.structure it ast;
  List.rev ctx.findings
