(* frlint — project linter for the fpgaroute tree.

   Usage: frlint [--json] [--allowlist FILE] PATH...

   PATHs are files or directories; directories are walked recursively for
   .ml/.mli sources.  Exit status: 0 when clean, 1 with findings, 2 on
   usage errors. *)

open Frlint_lib
open Lintlib

let usage () =
  prerr_endline "usage: frlint [--json] [--allowlist FILE] PATH...";
  exit 2

let () =
  let json = ref false in
  let allowlist = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--allowlist" :: file :: rest ->
        allowlist := Some file;
        parse rest
    | "--allowlist" :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | p :: _ when String.length p > 0 && p.[0] = '-' ->
        Printf.eprintf "frlint: unknown option %s\n" p;
        usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let missing = List.filter (fun p -> not (Sys.file_exists p)) !paths in
  if missing <> [] then begin
    List.iter (Printf.eprintf "frlint: no such path: %s\n") missing;
    exit 2
  end;
  let summary = Engine.run ?allowlist_path:!allowlist ~roots:(List.rev !paths) () in
  List.iter
    (fun f ->
      print_endline (if !json then Finding.to_json f else Finding.to_string f))
    summary.Engine.findings;
  Printf.eprintf "frlint: %d file(s) scanned, %d finding(s), %d inline-suppressed, %d allowlisted\n"
    summary.Engine.files
    (List.length summary.Engine.findings)
    summary.Engine.inline_suppressed summary.Engine.allowlisted;
  exit (if summary.Engine.findings = [] then 0 else 1)
