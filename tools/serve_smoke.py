#!/usr/bin/env python3
"""End-to-end smoke test for the `fpga_route serve` daemon.

Boots the real binary, routes a benchmark circuit over the Unix socket,
drives checkpoint / ECO / restore requests, and checks the differential
contract through the canonical routing digests the protocol exposes:
after an ECO round-trip back to the original netlist, the digest must
equal the initial route's, from every vantage point (the eco response,
a stats call on a second connection, and a from-scratch re-route).

Usage: serve_smoke.py BINARY CIRCUIT_FILE [WIDTH]
Exits non-zero (with a message) on any violation.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time


def die(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.buf = b""

    def request(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                die("connection closed mid-response")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        resp = json.loads(line)
        if not resp.get("ok"):
            die(f"request {obj.get('cmd')} failed: {resp.get('error')}")
        return resp

    def close(self):
        self.sock.close()


def main():
    if len(sys.argv) < 3:
        die("usage: serve_smoke.py BINARY CIRCUIT_FILE [WIDTH]")
    binary, circuit_file = sys.argv[1], sys.argv[2]
    width = int(sys.argv[3]) if len(sys.argv) > 3 else 14
    circuit = open(circuit_file).read()
    sock_path = os.path.join(tempfile.mkdtemp(), "fr_serve_smoke.sock")

    daemon = subprocess.Popen([binary, "serve", "--socket", sock_path])
    try:
        for _ in range(200):
            if os.path.exists(sock_path):
                break
            if daemon.poll() is not None:
                die(f"daemon exited early with {daemon.returncode}")
            time.sleep(0.05)
        else:
            die("daemon never created its socket")

        c = Client(sock_path)
        routed = c.request(
            {"cmd": "route", "circuit": circuit, "width": width, "domains": 2}
        )
        if routed.get("status") != "routed":
            die(f"initial route not routed: {routed}")
        d0 = routed["digest"]
        nets_total = routed["nets_total"]

        cp = c.request({"cmd": "checkpoint"})["id"]

        # Edit: remove the last net in the file (lowest scheduling impact),
        # then restore the checkpoint — an ECO back to the original netlist.
        last_net = [l for l in circuit.splitlines() if l.startswith("net ")][-1]
        name = last_net.split()[1]
        eco = c.request(
            {"cmd": "eco", "deltas": [{"op": "remove", "name": name}]}
        )
        if eco["nets_total"] != nets_total - 1:
            die(f"eco net accounting wrong: {eco['nets_total']}")
        if eco["nets_ripped"] >= nets_total:
            die("eco ripped every net: the incremental path never engaged")
        restored = c.request({"cmd": "checkpoint", "restore": cp})
        if restored["digest"] != d0:
            die("restore digest differs from the initial route")

        # A second connection sees the same session and the same digest.
        c2 = Client(sock_path)
        stats = c2.request({"cmd": "stats"})
        if stats.get("digest") != d0:
            die("stats digest differs across connections")
        c2.close()

        # A from-scratch re-route of the same circuit must agree too.
        rerouted = c.request(
            {"cmd": "route", "circuit": circuit, "width": width, "domains": 2}
        )
        if rerouted["digest"] != d0:
            die("from-scratch re-route digest differs (ECO was inexact)")

        c.request({"cmd": "shutdown"})
        c.close()
        if daemon.wait(timeout=30) != 0:
            die(f"daemon exited with {daemon.returncode}")
        if os.path.exists(sock_path):
            die("daemon left its socket file behind")
    finally:
        if daemon.poll() is None:
            daemon.kill()

    print(f"serve_smoke: OK (digest {d0}, {nets_total} nets at W={width})")


if __name__ == "__main__":
    main()
